"""Shared fixtures for the figure benches.

Scales are deliberately tiny (DESIGN.md §2): all TPC-BiH scalings are
linear, so the paper's *shapes* — orderings, ratios, crossovers — survive
scaling down, while the full bench suite stays in the minutes range.

Every bench writes its paper-style report to ``results/<figure>.txt`` so
``pytest benchmarks/ --benchmark-only`` leaves the rendered figures behind.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiments import generate_workload, prepare_systems
from repro.bench.service import BenchmarkService

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: default bench scale: ~9k initial rows, 300 scenario transactions
BENCH_H = 0.001
BENCH_M = 0.0003


@pytest.fixture(scope="session")
def workload():
    return generate_workload(h=BENCH_H, m=BENCH_M)


@pytest.fixture(scope="session")
def systems(workload):
    """All four archetypes loaded with the same workload (replay path)."""
    return prepare_systems(workload, "ABCD")


@pytest.fixture(scope="session")
def service():
    return BenchmarkService(repetitions=3, discard=1)


@pytest.fixture(scope="session")
def quick_service():
    """For long-running cells (TPC-H sweeps): fewer repetitions, like the
    paper's handling of multi-hour measurements."""
    return BenchmarkService(repetitions=2, discard=1, timeout_s=30.0)


def save_result(result):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.name}.txt"
    path.write_text(result.text + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def save():
    return save_result
