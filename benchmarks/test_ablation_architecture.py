"""Ablation benches for the architecture choices DESIGN.md §5 calls out.

These are not paper figures; they isolate each storage mechanism so the
contribution of every design choice is measurable on its own.
"""

import pytest

from repro.bench.experiments import WORKLOAD, generate_workload
from repro.core.loader import Loader
from repro.engine.database import ArchitectureProfile, Database
from repro.engine.storage.versioned import StorageOptions
from repro.systems import IndexSetting, apply_index_setting, make_system


class _CustomSystem:
    name = "X"

    def __init__(self, options, profile=None):
        self.db = Database(options=options, profile=profile or ArchitectureProfile())

    def execute(self, sql, params=None):
        return self.db.execute(sql, params)


def _loaded(options, workload, profile=None):
    system = _CustomSystem(options, profile)
    Loader(system, workload).load()
    return system


@pytest.fixture(scope="module")
def ablation_workload():
    return generate_workload(h=0.0005, m=0.0005)


def test_ablation_split_vs_single_table(benchmark, ablation_workload, save=None):
    """Current/history split vs single table under an insert-heavy history."""
    wl = ablation_workload
    split = _loaded(StorageOptions(split_history=True), wl)
    single = _loaded(
        StorageOptions(split_history=False), wl,
        ArchitectureProfile(manual_system_time=True),
    )
    sql = "SELECT count(*), avg(o_totalprice) FROM orders"

    def run():
        return split.execute(sql), single.execute(sql)

    benchmark.pedantic(run, rounds=3, iterations=2)
    # identical answers, different physical work: the split system reads
    # only the current partition, the single table scans everything
    r1 = split.execute(sql).rows
    r2 = single.execute(sql).rows
    assert r1[0][0] == r2[0][0]
    split_scanned = split.db.table("orders").current_count()
    single_scanned = single.db.table("orders").current_count()
    assert single_scanned > split_scanned


def test_ablation_vertical_partitioning(benchmark, ablation_workload):
    """System B's vertically partitioned current table pays a sort/merge
    join whenever system time must be reconstructed."""
    wl = ablation_workload
    inline = _loaded(StorageOptions(split_history=True), wl)
    vp = _loaded(
        StorageOptions(split_history=True, vertical_partition_current=True), wl
    )
    sql = "SELECT count(*) FROM orders FOR SYSTEM_TIME AS OF :t"
    params = {"t": wl.meta.mid_tick()}

    def run():
        return vp.execute(sql, params)

    benchmark.pedantic(run, rounds=3, iterations=2)
    assert vp.execute(sql, params).rows == inline.execute(sql, params).rows
    assert vp.db.table("orders").stats.vp_merge_joins > 0
    assert inline.db.table("orders").stats.vp_merge_joins == 0


def test_ablation_column_store_merge(benchmark, ablation_workload):
    """Delta/main merging in the column store (System C)."""
    wl = ablation_workload
    frequent = _loaded(
        StorageOptions(store_kind="column", column_merge_threshold=256), wl
    )
    rare = _loaded(
        StorageOptions(store_kind="column", column_merge_threshold=1 << 20), wl
    )
    sql = "SELECT count(*), avg(o_totalprice) FROM orders FOR SYSTEM_TIME ALL"

    def run():
        return frequent.execute(sql)

    benchmark.pedantic(run, rounds=3, iterations=2)
    assert frequent.execute(sql).rows == rare.execute(sql).rows
    orders_store = frequent.db.table("orders").partition("current").store
    assert orders_store.merge_count >= 1


def test_ablation_btree_vs_rtree_period_index(benchmark, ablation_workload):
    """B-Tree vs GiST (R-Tree) for period containment on System D."""
    wl = ablation_workload
    d_btree = make_system("D")
    Loader(d_btree, wl).load()
    apply_index_setting(d_btree, IndexSetting.TIME, kind="btree")
    d_rtree = make_system("D")
    Loader(d_rtree, wl).load()
    apply_index_setting(d_rtree, IndexSetting.TIME, kind="rtree")
    query = WORKLOAD.query("T2.sys")
    params = query.params(wl.meta)

    def run():
        return d_btree.execute(query.sql, params), d_rtree.execute(query.sql, params)

    benchmark.pedantic(run, rounds=3, iterations=2)
    rows_b = d_btree.execute(query.sql, params).rows
    rows_r = d_rtree.execute(query.sql, params).rows
    assert rows_b == rows_r


def test_ablation_composite_vs_single_time_index(benchmark, ablation_workload):
    """Composite (key, time) vs single-column time indexes (§5.1 note:
    composites brought no significant benefit on these workloads)."""
    from repro.engine.catalog import IndexDef

    wl = ablation_workload
    single = make_system("A")
    Loader(single, wl).load()
    apply_index_setting(single, IndexSetting.TIME)
    composite = make_system("A")
    Loader(composite, wl).load()
    composite.db.create_index(IndexDef(
        name="tune_comp", table="customer",
        columns=("c_custkey", "sys_begin"), kind="btree", partition="history",
    ))
    query = WORKLOAD.query("K1.app_past")
    params = query.params(wl.meta)

    def run():
        return single.execute(query.sql, params), composite.execute(query.sql, params)

    benchmark.pedantic(run, rounds=3, iterations=2)
    assert sorted(single.execute(query.sql, params).rows) == sorted(
        composite.execute(query.sql, params).rows
    )
