"""Appendix study (§5.4): advisor-proposed indexes and their effect.

The paper: advisor indexes cut System A's app-time geometric-mean slowdown
from 8.8x to 5.7x, with very uneven per-query impact.  Here we apply the
advisor's proposals for each workload mode and measure a representative
TPC-H subset with and without them.
"""

import pytest

from repro.bench.report import geometric_mean
from repro.core.queries import tpch
from repro.systems.advisor import IndexAdvisor

SUBSET = [1, 3, 5, 6, 10, 12, 14, 19]


def _normalise(rows):
    """Aggregation order changes under index access; compare with float
    tolerance rather than bit-exactly."""
    return [
        tuple(round(v, 4) if isinstance(v, float) else v for v in row)
        for row in rows
    ]


def test_advisor_proposal_counts(benchmark, systems, save):
    system = systems["A"]
    advisor = IndexAdvisor(system.db)

    def run():
        counts = {}
        for mode in ("plain", "app", "sys"):
            queries = [tpch.tpch_query(n, mode) for n in tpch.all_numbers()]
            counts[mode] = advisor.advise(queries, mode=mode).count()
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    # the paper's ordering: 54 (plain) < 301 (app) ~ 309 (sys)
    assert counts["plain"] < counts["app"]
    assert counts["plain"] < counts["sys"]


def test_advised_indexes_do_not_hurt_correctness(benchmark, systems, workload, quick_service):
    system = systems["A"]
    advisor = IndexAdvisor(system.db)
    queries = [tpch.tpch_query(n, "sys") for n in tpch.all_numbers()]
    params = tpch.tpch_params(workload.meta, "sys")

    baseline_rows = {
        n: _normalise(system.execute(tpch.tpch_query(n, "sys"), params).rows)
        for n in SUBSET
    }
    advice = advisor.advise(queries, mode="sys")
    advisor.apply(advice)
    try:
        ratios = []
        for n in SUBSET:
            sql = tpch.tpch_query(n, "sys")
            assert _normalise(system.execute(sql, params).rows) == baseline_rows[n], n
            cell = benchmark.pedantic(
                lambda s=sql: system.execute(s, params), rounds=1, iterations=1
            ) if n == SUBSET[0] else None
            with_index = quick_service.measure_sql(system, sql, params, qid=f"Q{n}")
            ratios.append(with_index.median)
        assert geometric_mean(ratios) < float("inf")
    finally:
        advisor.drop_applied()
