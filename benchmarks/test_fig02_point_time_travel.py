"""Fig 2: basic point time travel, out-of-the-box settings."""

import statistics

from repro.bench.experiments import fig02_basic_time_travel


def test_fig02(benchmark, systems, workload, service, save):
    result = benchmark.pedantic(
        lambda: fig02_basic_time_travel(systems, workload, service),
        rounds=1, iterations=1,
    )
    save(result)
    by_cell = {(m.qid, m.system): m.median for m in result.measurements}

    # ALL is the upper bound for single-table time travel (§3.3, §5.3.1)
    for name in systems:
        assert by_cell[("T5.all", name)] >= 0.5 * by_cell[("T1.app", name)]

    # history access costs more than current-only access (per system,
    # comparing the same query across dimensions)
    for name in ("A", "B"):
        assert by_cell[("T2.sys", name)] >= 0.8 * by_cell[("T2.app", name)]

    # System B sees the most prominent increase when system time varies
    # (vertical-partition reconstruction, §5.3.1)
    growth = {
        name: by_cell[("T2.sys", name)] / by_cell[("T2.app", name)]
        for name in systems
    }
    assert growth["B"] == max(growth.values())
