"""Fig 3: adding the Time Index setting to basic time travel."""

from repro.bench.experiments import fig03_index_impact


def test_fig03(benchmark, systems, workload, service, save):
    result = benchmark.pedantic(
        lambda: fig03_index_impact(systems, workload, service),
        rounds=1, iterations=1,
    )
    save(result)
    cells = {(m.qid, m.system, m.setting): m.median for m in result.measurements}

    # System C does not benefit from a B-Tree index at all (§5.3.2): its
    # planner ignores indexes, so timings stay within noise of each other
    c_no = cells[("T2.sys", "C", "no index")]
    c_bt = cells[("T2.sys", "C", "B-Tree")]
    assert 0.3 <= c_bt / c_no <= 3.0

    # indexed point time travel never degrades catastrophically on A
    assert cells[("T2.sys", "A", "B-Tree")] <= 3.0 * cells[("T2.sys", "A", "no index")]

    # GiST measurements exist for System D.  NOTE: the paper found GiST
    # consistently worse than the B-Tree; at our scales the 1-D R-Tree's
    # containment search can win instead (recorded as a deviation in
    # EXPERIMENTS.md), so we only assert the cell is measured and finite.
    assert ("T2.sys", "D", "GiST") in cells
    assert cells[("T2.sys", "D", "GiST")] < float("inf")
