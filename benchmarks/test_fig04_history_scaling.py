"""Fig 4: time travel with fixed parameters on growing histories."""

from repro.bench.experiments import fig04_history_scaling


def test_fig04(benchmark, service, save):
    result = benchmark.pedantic(
        lambda: fig04_history_scaling(
            service, h=0.0005, m_values=(0.0002, 0.0004, 0.0008)
        ),
        rounds=1, iterations=1,
    )
    save(result)
    series = result.series

    def slope(points):
        (x0, y0), (x1, y1) = points[0], points[-1]
        return (y1 / max(y0, 1e-9))

    # scans grow with history length; with a time index the fixed-result
    # query stays in the same absolute cost class at the largest history
    # (§5.3.3: "mostly constant cost").  Ratios of sub-millisecond cells
    # are too noisy to assert directly, so bound the absolute indexed cost.
    for name in ("A", "B", "D"):
        scan_last = series[f"{name}/noidx"][-1][1]
        idx_last = series[f"{name}/btree"][-1][1]
        assert idx_last <= scan_last * 3.0 + 0.002, (name, scan_last, idx_last)

    # System C achieves near-constant response without any index
    assert slope(series["C/noidx"]) < 6.0
