"""Fig 5: temporal slicing (one dimension fixed, the other complete)."""

from repro.bench.experiments import fig05_temporal_slicing


def test_fig05(benchmark, systems, workload, service, save):
    result = benchmark.pedantic(
        lambda: fig05_temporal_slicing(systems, workload, service),
        rounds=1, iterations=1,
    )
    save(result)
    cells = {(m.qid, m.system): m.median for m in result.measurements}
    for name in systems:
        # slicing stays below a generous multiple of the ALL yardstick
        assert cells[("T6.appslice", name)] <= 3.0 * cells[("T5.all", name)]
        assert cells[("T6.sysslice", name)] <= 3.0 * cells[("T5.all", name)]
        # simulated app-time slicing (T9) behaves like native slicing:
        # "mostly a usability restriction ... does not affect performance"
        assert 0.2 <= cells[("T9", name)] / cells[("T6.appslice", name)] <= 5.0
