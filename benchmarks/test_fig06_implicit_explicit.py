"""Fig 6: implicit vs explicit current time travel."""

from repro.bench.experiments import fig06_implicit_explicit


def test_fig06(benchmark, systems, workload, service, save):
    result = benchmark.pedantic(
        lambda: fig06_implicit_explicit(systems, workload, service),
        rounds=1, iterations=1,
    )
    save(result)
    # the architectural claim, checked structurally rather than by timing:
    # an explicit AS OF <current time> reads the history partition on every
    # native-temporal system because no optimizer prunes it (§5.3.5)
    for name, scans in result.extra["history_scans"].items():
        assert scans >= 1, f"system {name} pruned the history partition"
    cells = {(m.qid, m.system): m.median for m in result.measurements}
    for name in ("A", "B", "C"):
        assert cells[("T7.explicit", name)] >= 0.7 * cells[("T7.implicit", name)]
