"""Fig 7(a): TPC-H with application-time time travel vs the non-temporal
baseline.

Absolute ratios differ from the paper (our optimizer has no cost-based
plan regressions to lose), but the qualitative shape must hold: the
temporal tables carry more data, System C's scan-based execution is least
affected, and no query class explodes the way system-time travel does in
Fig 7(b)."""

from repro.bench.experiments import fig07_tpch
from repro.bench.report import geometric_mean


def test_fig07a(benchmark, systems, workload, quick_service, save):
    result = benchmark.pedantic(
        lambda: fig07_tpch(systems, workload, quick_service, mode="app"),
        rounds=1, iterations=1,
    )
    save(result)
    ratios = result.series
    for name in systems:
        assert len(ratios[name]) >= 20, f"{name}: not enough queries measured"
    gm = {name: geometric_mean(list(per.values())) for name, per in ratios.items()}
    # every system pays some overhead for the bitemporal representation on
    # the query mix as a whole (paper: 2.5x - 9.3x)
    assert min(gm.values()) > 0.1
    result.extra["geometric_means"] = gm
