"""Fig 7(b): TPC-H with system-time travel to the pre-history version.

The paper's headline: accessing past system time is much more expensive
than application-time filtering (geometric means 26x/73x/7x/2.1x vs
8.8x/9.3x/2.5x/6.4x), System B worst, System D mildest among the RDBMSs
because it has no current/history split to reassemble."""

from repro.bench.experiments import fig07_tpch
from repro.bench.report import geometric_mean


def test_fig07b(benchmark, systems, workload, quick_service, save):
    result = benchmark.pedantic(
        lambda: fig07_tpch(systems, workload, quick_service, mode="sys"),
        rounds=1, iterations=1,
    )
    save(result)
    ratios = result.series
    gm = {name: geometric_mean(list(per.values())) for name, per in ratios.items()}
    result.extra["geometric_means"] = gm

    # the paper's ordering among the native-temporal RDBMSs: B pays the
    # most for history reconstruction
    assert gm["B"] > gm["A"] * 0.8, gm
    # System D has the least overhead among the disk-based RDBMSs since it
    # does not use a current/history split (§5.4.2)
    assert gm["D"] <= gm["A"] * 1.5, gm
    # and every system pays a real cost for visiting the past
    assert all(value > 0.3 for value in gm.values()), gm
