"""Fig 8: audit queries over the full history of one key."""

from repro.bench.experiments import fig08_key_in_time


def test_fig08(benchmark, systems, workload, service, save):
    result = benchmark.pedantic(
        lambda: fig08_key_in_time(systems, workload, service),
        rounds=1, iterations=1,
    )
    save(result)
    cells = {(m.qid, m.system, m.setting): m.median for m in result.measurements}

    # current-system-time app history benefits from the system-created
    # current index; past system time triggers history access and costs
    # more without tuning (§5.5.1)
    for name in ("A", "B"):
        assert cells[("K1.app_past", name, "no index")] >= cells[("K1.app", name, "no index")] * 0.5

    # System A clearly benefits from the Key+Time index on history access
    assert (
        cells[("K1.app_past", "A", "B-Tree")]
        <= cells[("K1.app_past", "A", "no index")] * 1.2
    )

    # System C performs table scans in all settings: the index changes little
    c_ratio = cells[("K1.both", "C", "B-Tree")] / cells[("K1.both", "C", "no index")]
    assert 0.3 <= c_ratio <= 3.0
