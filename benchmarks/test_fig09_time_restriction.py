"""Fig 9: restricting the traced time range (K2) and columns (K3)."""

from repro.bench.experiments import fig09_time_restriction


def test_fig09(benchmark, systems, workload, service, save):
    result = benchmark.pedantic(
        lambda: fig09_time_restriction(systems, workload, service),
        rounds=1, iterations=1,
    )
    save(result)
    cells = {(m.qid, m.system, m.setting): m.median for m in result.measurements}
    # "time range restrictions have little impact" (§5.5.2): K2/K3 stay in
    # the same cost class as each other
    for name in systems:
        k2 = cells[("K2.sys", name, "no index")]
        k3 = cells[("K3.sys", name, "no index")]
        assert 0.1 <= k3 / max(k2, 1e-9) <= 10.0
