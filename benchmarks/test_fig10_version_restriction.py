"""Fig 10: version-count restrictions (Top-N vs timestamp correlation)."""

from repro.bench.experiments import fig10_version_restriction


def test_fig10(benchmark, systems, workload, service, save):
    result = benchmark.pedantic(
        lambda: fig10_version_restriction(systems, workload, service),
        rounds=1, iterations=1,
    )
    save(result)
    cells = {(m.qid, m.system, m.setting): m.median for m in result.measurements}
    # the K5 correlation rewrite is never cheaper than the K4 Top-N
    # formulation (§5.5.2: "the alternative approach in K5 is not
    # beneficial") — allow noise at this scale
    for name in systems:
        assert cells[("K5.sys", name, "no index")] >= 0.5 * cells[("K4.sys", name, "no index")]
