"""Fig 11: tracing tuples selected by value, with a value index."""

from repro.bench.experiments import fig11_value_in_time


def test_fig11(benchmark, systems, workload, service, save):
    result = benchmark.pedantic(
        lambda: fig11_value_in_time(systems, workload, service),
        rounds=1, iterations=1,
    )
    save(result)
    cells = {(m.qid, m.system, m.setting): m.median for m in result.measurements}
    # a selective value index speeds up the index-using systems (§5.5.3)
    for name in ("A", "D"):
        assert (
            cells[("K6.app", name, "Value idx")]
            <= cells[("K6.app", name, "no index")] * 1.5
        )
    # System C relies on scans either way
    ratio = cells[("K6.app", "C", "Value idx")] / cells[("K6.app", "C", "no index")]
    assert 0.3 <= ratio <= 3.0
