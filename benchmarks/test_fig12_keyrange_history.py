"""Fig 12: key-range audit query across growing history sizes."""

from repro.bench.experiments import fig12_keyrange_history_scaling


def test_fig12(benchmark, service, save):
    result = benchmark.pedantic(
        lambda: fig12_keyrange_history_scaling(
            service, h=0.0005, m_values=(0.0002, 0.0004, 0.0008)
        ),
        rounds=1, iterations=1,
    )
    save(result)
    series = result.series
    # A, C and D keep roughly constant performance with Key+Time indexes;
    # B carries the vertical-partition reconstruction cost, which grows
    # with the current table (§5.5.4)
    for name in ("A", "D"):
        first, last = series[name][0][1], series[name][-1][1]
        assert last <= first * 8 + 0.002, (name, first, last)
    b_first, b_last = series["B"][0][1], series["B"][-1][1]
    a_last = series["A"][-1][1]
    assert b_last >= a_last * 0.8, "B should not beat A on history key access"
