"""Fig 13: combining scenarios into larger transactions before loading."""

from repro.bench.experiments import fig13_batch_size


def test_fig13(benchmark, service, save):
    result = benchmark.pedantic(
        lambda: fig13_batch_size(service, batch_sizes=(1, 10, 100)),
        rounds=1, iterations=1,
    )
    save(result)
    series = result.series
    # batching collapses distinct system-time versions; the key-range query
    # never gets *more* expensive with fewer transactions (§5.5.4)
    for name, points in series.items():
        assert points[-1][1] <= points[0][1] * 3.0, (name, points)
