"""Fig 14: range-timeslice queries (temporal aggregation et al.)."""

from repro.bench.experiments import fig14_range_timeslice


def test_fig14(benchmark, systems, workload, service, save):
    result = benchmark.pedantic(
        lambda: fig14_range_timeslice(systems, workload, service),
        rounds=1, iterations=1,
    )
    save(result)
    cells = {(m.qid, m.system): m.median for m in result.measurements}
    # the paper's central R-class finding: temporal aggregation (R3) costs
    # orders of magnitude more than reading the complete history (ALL),
    # because SQL provides no native operator (§5.6)
    for name in ("A", "D"):
        assert cells[("R3a", name)] >= 10 * cells[("T5.all", name)], name
    # simpler state queries stay in the same class as ALL
    for name in systems:
        assert cells[("R2", name)] <= 20 * cells[("T5.all", name)]
