"""Fig 15: the bitemporal dimension matrix B3.1-B3.11."""

from repro.bench.experiments import fig15_bitemporal


def test_fig15(benchmark, systems, workload, service, save):
    result = benchmark.pedantic(
        lambda: fig15_bitemporal(systems, workload, service),
        rounds=1, iterations=1,
    )
    save(result)
    cells = {(m.qid, m.system, m.setting): m.median for m in result.measurements}
    for name in systems:
        # correlation over all versions (B3.5) is the most demanding cell;
        # without temporal join operators it degenerates to big joins (§5.7)
        assert (
            cells[("B3.5", name, "no index")]
            >= 0.5 * cells[("B3.1", name, "no index")]
        )
        # the agnostic/agnostic case joins the full version space
        assert (
            cells[("B3.11", name, "no index")]
            >= 0.5 * cells[("B3", name, "no index")]
        )
