"""Fig 16 / §5.8: loading times, per-scenario latency distribution."""

from repro.bench.experiments import fig16_loading, generate_workload


def test_fig16(benchmark, save):
    workload = generate_workload(h=0.0005, m=0.0005)
    result = benchmark.pedantic(
        lambda: fig16_loading(workload), rounds=1, iterations=1
    )
    save(result)
    cells = result.extra["cells"]
    totals = result.extra["totals"]
    # System B's undo-log drain produces a heavy 97th-percentile tail
    # relative to its median (the paper saw two orders of magnitude)
    assert cells["B"]["p97"] >= cells["B"]["median"] * 1.2
    b_tail = cells["B"]["p97"] / max(cells["B"]["median"], 1e-9)
    a_tail = cells["A"]["p97"] / max(cells["A"]["median"], 1e-9)
    assert b_tail >= a_tail * 0.8
    # §5.8: the bulk path is cheaper than replaying the same history into
    # the same architecture through per-scenario transactions
    assert totals["D(bulk)"] <= totals["D"]
