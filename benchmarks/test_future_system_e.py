"""Extension bench: System E (Timeline Index) vs the paper's systems.

The paper closes hoping its evaluation becomes *"a good starting point for
future optimizations of temporal DBMS"* and cites the Timeline Index as
the research alternative.  These benches quantify that direction on the
very workloads where the paper's systems struggled:

* point time travel (Fig 2's T2.sys),
* temporal aggregation (Fig 14's R3, the worst offender),
* temporal join (Fig 15's correlation queries).
"""

import pytest

from repro.bench.experiments import WORKLOAD
from repro.core.loader import Loader
from repro.systems import make_system


@pytest.fixture(scope="module")
def pair(workload):
    systems = {}
    for name in ("A", "E"):
        system = make_system(name)
        Loader(system, workload).load()
        systems[name] = system
    return systems


def test_time_travel_correct_and_competitive(benchmark, pair, workload, service):
    query = WORKLOAD.query("T2.sys")
    params = query.params(workload.meta)

    def run():
        return pair["E"].execute(query.sql, params)

    benchmark.pedantic(run, rounds=3, iterations=2)
    rows_a = pair["A"].execute(query.sql, params).rows
    rows_e = pair["E"].execute(query.sql, params).rows
    assert rows_a == rows_e
    a_cell = service.measure_sql(pair["A"], query.sql, params, qid="T2.sys")
    e_cell = service.measure_sql(pair["E"], query.sql, params, qid="T2.sys")
    # the timeline snapshot must not be dramatically worse than A's
    # partition-union scan; at realistic history lengths it wins outright
    assert e_cell.median <= a_cell.median * 3.0


def test_native_temporal_aggregation_beats_sql_rewrite(benchmark, pair, service, save):
    """The headline: R3 via the native operator vs the SQL rewrite."""
    system_e = pair["E"]
    r3 = WORKLOAD.query("R3a")

    def native():
        return system_e.temporal_aggregate("orders", "o_totalprice", ("count",))

    benchmark.pedantic(native, rounds=3, iterations=2)
    sql_cell = service.measure_sql(pair["A"], r3.sql, {}, qid="R3a(sql)", setting="System A")
    native_cell = service.measure_callable(native, qid="R3a(native)", system="E")
    # the paper: the rewrite costs >100x a history scan; the sweep operator
    # must beat the rewrite by at least an order of magnitude here
    assert native_cell.median * 10 <= sql_cell.median, (
        native_cell.median, sql_cell.median,
    )


def test_native_temporal_join_beats_sql(benchmark, pair, service):
    system_e = pair["E"]
    sql = (
        "SELECT count(*)"
        " FROM customer FOR SYSTEM_TIME ALL c,"
        "      orders FOR SYSTEM_TIME ALL o"
        " WHERE c.c_custkey = o.o_custkey"
        "   AND c.sys_begin < o.sys_end AND o.sys_begin < c.sys_end"
    )

    def native():
        return sum(
            1
            for c_row, o_row in system_e.temporal_join("customer", "orders")
            if c_row[0] == o_row[1]
        )

    benchmark.pedantic(native, rounds=3, iterations=1)
    assert native() == pair["A"].execute(sql).scalar()


def test_checkpoint_interval_tradeoff(benchmark, workload):
    """Ablation: denser checkpoints buy faster snapshots at memory cost."""
    dense = make_system("E", checkpoint_interval=128)
    Loader(dense, workload).load()
    sparse = make_system("E", checkpoint_interval=1 << 20)
    Loader(sparse, workload).load()
    tick = workload.meta.mid_tick()

    def run():
        return dense.db.timeline("lineitem").snapshot_rids(tick)

    benchmark.pedantic(run, rounds=3, iterations=2)
    assert dense.db.timeline("lineitem").checkpoint_count > 0
    assert sparse.db.timeline("lineitem").checkpoint_count == 0
    assert dense.db.timeline("lineitem").snapshot_rids(tick) == (
        sparse.db.timeline("lineitem").snapshot_rids(tick)
    )
