"""Tables 1 and 2: the update-scenario mix and per-table operation counts."""

from repro.bench.experiments import table1_scenario_mix, table2_operations
from repro.core.stats import insert_update_shares


def test_table1_scenario_mix(benchmark, workload, save):
    result = benchmark.pedantic(
        lambda: table1_scenario_mix(workload), rounds=1, iterations=1
    )
    save(result)
    mix = result.extra["mix"]
    # New Order dominates, Deliver and Receive Payment follow (Table 1)
    assert mix["new_order"] == max(mix.values())
    assert mix["deliver_order"] > mix["cancel_order"]


def test_table2_operations(benchmark, workload, save):
    result = benchmark.pedantic(
        lambda: table2_operations(workload), rounds=1, iterations=1
    )
    save(result)
    shares = insert_update_shares(workload)
    # the paper's qualitative claims about the operation mix (§3.2)
    assert shares["lineitem"]["insert"] > 0.60, "LINEITEM is insert-dominated"
    assert shares["customer"]["update"] > 0.70, "CUSTOMER is update-dominated"
    assert shares["part"]["update"] == 1.0, "PART receives only updates"
    assert shares["partsupp"]["update"] == 1.0, "PARTSUPP receives only updates"
    assert shares["supplier"]["update"] == 1.0, "SUPPLIER degenerate: updates only"
    rows = {r["table"]: r for r in result.extra["rows"]}
    assert rows["nation"]["history_growth_ratio"] == 0
    assert rows["region"]["history_growth_ratio"] == 0
    # CUSTOMER and SUPPLIER get proportionally more history than ORDERS/LINEITEM
    assert rows["customer"]["history_growth_ratio"] > rows["orders"]["history_growth_ratio"]
    assert rows["supplier"]["history_growth_ratio"] > rows["lineitem"]["history_growth_ratio"]
    # app-time overwrites happen exactly where Table 2 says they do
    for table, expected in (("customer", True), ("part", True),
                            ("partsupp", True), ("orders", True),
                            ("lineitem", False), ("supplier", False)):
        assert rows[table]["overwrite_app_time"] is expected, table
