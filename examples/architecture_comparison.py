"""Architecture analysis (paper §5.2) plus a live mini-benchmark.

Loads the same generated history into all four system archetypes, prints
their architecture cards, verifies the §5.2 storage findings directly
against the storage layer, and reruns Fig 2's basic-time-travel cells.

Run:  python examples/architecture_comparison.py
"""

from repro.bench.experiments import (
    fig02_basic_time_travel,
    generate_workload,
    prepare_systems,
)
from repro.bench.service import BenchmarkService


def main():
    workload = generate_workload(h=0.001, m=0.0003)
    systems = prepare_systems(workload, "ABCD")

    print("=" * 70)
    print("Architecture cards (paper Section 5.2)")
    print("=" * 70)
    for system in systems.values():
        print(system.describe())
        print()

    print("Storage layout after loading (orders table):")
    for name, system in systems.items():
        report = system.storage_report()["orders"]
        print(f"  System {name}: current={report['current']:>6} "
              f"history={report['history']:>6} total={report['total']:>6}")

    print("\nThe paper's architecture findings, checked live:")
    orders_b = systems["B"].db.table("orders")
    print(f"  B vertically partitions current temporal data "
          f"(merge joins so far: {orders_b.stats.vp_merge_joins})")
    print(f"  B buffers history writes in an undo log "
          f"(drains so far: {orders_b.stats.undo_drains})")
    store_c = systems["C"].db.table("orders").partition("current").store
    print(f"  C is a delta/main column store "
          f"(main={store_c.main_size}, delta={store_c.delta_size})")
    print(f"  D keeps a single table (partitions: "
          f"{systems['D'].db.table('orders').partition_names()})")

    print("\nRunning Fig 2 (basic time travel) ...\n")
    service = BenchmarkService(repetitions=3, discard=1)
    result = fig02_basic_time_travel(systems, workload, service)
    print(result.text)


if __name__ == "__main__":
    main()
