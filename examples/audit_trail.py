"""Audit scenario: trace one customer through a generated TPC-BiH history.

This is the paper's K-class use case (§3.3 "Pure-Key Queries (Audit)"):
given a generated bitemporal workload, reconstruct how one customer's
balance evolved — along system time (what the database recorded), along
application time (what was true in the world), and bitemporally.

Run:  python examples/audit_trail.py
"""

from repro.core.generator import BitemporalDataGenerator, GeneratorConfig
from repro.core.loader import Loader
from repro.systems import make_system


def main():
    print("Generating workload (h=0.001, m=0.0003) ...")
    workload = BitemporalDataGenerator(GeneratorConfig(h=0.001, m=0.0003)).generate()
    system = make_system("A")
    Loader(system, workload).load()
    meta = workload.meta
    custkey = meta.hottest_customer
    print(f"Auditing the most-updated customer: c_custkey = {custkey}\n")

    print("K1: complete system-time history of the key")
    rows = system.execute(
        "SELECT c_acctbal, sys_begin, sys_end FROM customer FOR SYSTEM_TIME ALL"
        " WHERE c_custkey = :key ORDER BY sys_begin",
        {"key": custkey},
    )
    for balance, sys_begin, sys_end in rows:
        closed = sys_end if sys_end < meta.last_tick + 1 else "open"
        print(f"  tick {sys_begin:>5} .. {closed}: balance {balance:>10.2f}")

    print("\nK4: the last three application-time versions (Top-N)")
    rows = system.execute(
        "SELECT c_acctbal, c_visible_begin FROM customer"
        " WHERE c_custkey = :key ORDER BY c_visible_begin DESC LIMIT 3",
        {"key": custkey},
    )
    for balance, visible_begin in rows:
        print(f"  from day {visible_begin}: {balance:.2f}")

    mid = meta.mid_tick()
    print(f"\nBitemporal point: balance valid on day {meta.mid_day()}, "
          f"as recorded at tick {mid}")
    rows = system.execute(
        "SELECT c_acctbal FROM customer"
        " FOR SYSTEM_TIME AS OF :t FOR BUSINESS_TIME AS OF :d"
        " WHERE c_custkey = :key",
        {"t": mid, "d": meta.mid_day(), "key": custkey},
    )
    for (balance,) in rows:
        print(f"  {balance:.2f}")

    print("\nR7-style delta check: supply-cost raises > 7.5% in one update")
    rows = system.execute(
        "SELECT DISTINCT v2.ps_suppkey"
        " FROM partsupp FOR SYSTEM_TIME ALL v1,"
        "      partsupp FOR SYSTEM_TIME ALL v2"
        " WHERE v1.ps_partkey = v2.ps_partkey"
        "   AND v1.ps_suppkey = v2.ps_suppkey"
        "   AND v2.sys_begin = v1.sys_end"
        "   AND v2.ps_supplycost > 1.075 * v1.ps_supplycost"
        " ORDER BY v2.ps_suppkey"
    )
    print(f"  suppliers flagged: {[r[0] for r in rows]}")


if __name__ == "__main__":
    main()
