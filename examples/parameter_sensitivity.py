"""Parameter sensitivity: the paper's headline warning, demonstrated.

The abstract warns of *"considerable performance variations on slight
workload variations"*.  This example sweeps the same time-travel query
across system-time positions (early / middle / late history) and across
hot vs. cold keys on every system archetype, and prints the spread — the
effect a single-point benchmark would hide.

Run:  python examples/parameter_sensitivity.py
"""

from repro.bench.experiments import generate_workload, prepare_systems
from repro.bench.service import BenchmarkService
from repro.core.queries import Workload
from repro.core.queries.params import ParameterSampler, spread_measure


def main():
    workload = generate_workload(h=0.001, m=0.0005)
    systems = prepare_systems(workload, "ABCD")
    service = BenchmarkService(repetitions=3, discard=1)
    queries = Workload()
    sampler = ParameterSampler(workload.meta)

    print("T2.sys (point time travel on ORDERS) across history positions:\n")
    print(f"{'system':>8} {'early':>12} {'middle':>12} {'late':>12} {'spread':>8}")
    for name, system in systems.items():
        cells = spread_measure(
            service, system, queries.query("T2.sys"), workload.meta, count=3
        )
        times = [cell.median * 1000 for cell in cells]
        spread = max(times) / max(min(times), 1e-9)
        print(f"{name:>8} " + " ".join(f"{t:>10.2f}ms" for t in times)
              + f" {spread:>7.2f}x")

    print("\nK1 audit across hot vs cold customer keys (System A, Key+Time):\n")
    from repro.systems import IndexSetting, apply_index_setting

    system = systems["A"]
    apply_index_setting(system, IndexSetting.KEY_TIME)
    query = queries.query("K1.app_past")
    base_params = query.params(workload.meta)
    print(f"{'custkey':>10} {'versions':>9} {'median':>12}")
    for key in sampler.customer_keys(5):
        params = dict(base_params, key=key)
        versions = system.execute(
            "SELECT count(*) FROM customer FOR SYSTEM_TIME ALL"
            " WHERE c_custkey = ?", [key],
        ).scalar()
        cell = service.measure_sql(system, query.sql, params, qid=f"K1#{key}")
        marker = "  <- hottest" if key == workload.meta.hottest_customer else ""
        print(f"{key:>10} {versions:>9} {cell.median * 1000:>10.2f}ms{marker}")

    print("\nThe same query, the same system — different parameters, "
          "different cost.\nThis is the paper's 'slight workload variation' "
          "effect in one table.")


if __name__ == "__main__":
    main()
