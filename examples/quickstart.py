"""Quickstart: a bitemporal table through the PEP 249 driver.

Creates a bitemporal ``policy`` table, runs the classic insurance-style
corrections, and answers "what did we believe, when?" questions — the two
time dimensions of the paper's §2.1 in twenty lines of SQL.

Run:  python examples/quickstart.py
"""

from repro.engine import dbapi
from repro.engine.types import END_OF_TIME, date_to_day, day_to_date


def main():
    conn = dbapi.connect(system="A")  # any of A, B, C, D
    cur = conn.cursor()

    cur.execute(
        "CREATE TABLE policy ("
        "  policy_id integer NOT NULL,"
        "  premium   decimal,"
        "  valid_from date, valid_to date,"           # application time
        "  sys_begin timestamp, sys_end timestamp,"   # system time
        "  PRIMARY KEY (policy_id),"
        "  PERIOD FOR business_time (valid_from, valid_to),"
        "  PERIOD FOR system_time (sys_begin, sys_end))"
    )

    jan, jul, dec = (date_to_day(d) for d in ("1995-01-01", "1995-07-01", "1995-12-31"))

    # the policy costs 100 for all of 1995 (recorded at system tick 1)
    cur.execute(
        "INSERT INTO policy (policy_id, premium, valid_from, valid_to)"
        " VALUES (1, 100.0, ?, ?)", [jan, dec])

    # mid-year correction: from July onwards the premium is 120
    cur.execute(
        "UPDATE policy FOR PORTION OF business_time FROM ? TO ?"
        " SET premium = 120.0 WHERE policy_id = 1", [jul, dec])

    print("Current belief about 1995 (application-time axis):")
    cur.execute(
        "SELECT premium, valid_from, valid_to FROM policy"
        " WHERE policy_id = 1 ORDER BY valid_from")
    for premium, valid_from, valid_to in cur:
        print(f"  {day_to_date(valid_from)} .. {day_to_date(valid_to)}: {premium}")

    print("\nWhat did the database say BEFORE the correction (system time 1)?")
    cur.execute(
        "SELECT premium, valid_from, valid_to FROM policy"
        " FOR SYSTEM_TIME AS OF 1 WHERE policy_id = 1")
    for premium, valid_from, valid_to in cur:
        print(f"  {day_to_date(valid_from)} .. {day_to_date(valid_to)}: {premium}")

    print("\nBitemporal point query: premium valid on 1995-08-01, as known now:")
    cur.execute(
        "SELECT premium FROM policy"
        " FOR BUSINESS_TIME AS OF ? WHERE policy_id = 1",
        [date_to_day("1995-08-01")])
    print(f"  {cur.fetchone()[0]}")

    print("\nFull audit trail (every version ever stored):")
    cur.execute(
        "SELECT premium, valid_from, valid_to, sys_begin, sys_end"
        " FROM policy FOR SYSTEM_TIME ALL ORDER BY sys_begin, valid_from")
    for premium, vf, vt, sb, se in cur:
        se_text = "now" if se >= END_OF_TIME else se
        print(f"  [sys {sb}..{se_text}] {day_to_date(vf)}..{day_to_date(vt)} -> {premium}")


if __name__ == "__main__":
    main()
