"""Full reproduction driver: every table and figure, end to end.

Regenerates Tables 1-2 and Figures 2-16 at a configurable scale and writes
the paper-style reports to ``results/``.  This is the one-command version
of ``pytest benchmarks/ --benchmark-only``.

Run:  python examples/reproduce_paper.py [--h 0.001] [--m 0.0003] [--fast]
"""

import argparse
import sys
import time
from pathlib import Path

from repro.bench import experiments as x
from repro.bench.service import BenchmarkService


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--h", type=float, default=0.001, help="TPC-H scale factor")
    parser.add_argument("--m", type=float, default=0.0003,
                        help="history scale (1.0 = 1M update scenarios)")
    parser.add_argument("--fast", action="store_true",
                        help="skip the slowest sweeps (Fig 4/12/13 and TPC-H)")
    parser.add_argument("--out", default="results", help="output directory")
    args = parser.parse_args(argv)

    out = Path(args.out)
    out.mkdir(exist_ok=True)
    service = BenchmarkService(repetitions=3, discard=1)
    quick = BenchmarkService(repetitions=2, discard=1, timeout_s=60)

    started = time.perf_counter()
    print(f"Generating workload h={args.h} m={args.m} ...")
    workload = x.generate_workload(h=args.h, m=args.m)
    print("Loading all four systems ...")
    systems = x.prepare_systems(workload, "ABCD")

    def emit(result):
        path = out / f"{result.name}.txt"
        path.write_text(result.text + "\n", encoding="utf-8")
        print(f"\n{result.text}\n[written to {path}]")

    emit(x.table1_scenario_mix(workload))
    emit(x.table2_operations(workload))
    emit(x.fig02_basic_time_travel(systems, workload, service))
    emit(x.fig03_index_impact(systems, workload, service))
    if not args.fast:
        emit(x.fig04_history_scaling(service))
    emit(x.fig05_temporal_slicing(systems, workload, service))
    emit(x.fig06_implicit_explicit(systems, workload, service))
    if not args.fast:
        emit(x.fig07_tpch(systems, workload, quick, mode="app"))
        emit(x.fig07_tpch(systems, workload, quick, mode="sys"))
    emit(x.fig08_key_in_time(systems, workload, service))
    emit(x.fig09_time_restriction(systems, workload, service))
    emit(x.fig10_version_restriction(systems, workload, service))
    emit(x.fig11_value_in_time(systems, workload, service))
    if not args.fast:
        emit(x.fig12_keyrange_history_scaling(service))
        emit(x.fig13_batch_size(service))
    emit(x.fig14_range_timeslice(systems, workload, service))
    emit(x.fig15_bitemporal(systems, workload, service))
    emit(x.fig16_loading(workload))

    print(f"\nAll done in {time.perf_counter() - started:.1f}s. "
          f"Reports in {out}/.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
