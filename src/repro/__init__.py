"""repro — reproduction of "Benchmarking Bitemporal Database Systems"
(EDBT 2014): the TPC-BiH benchmark, an embedded bitemporal SQL engine,
and the paper's four commercial-system archetypes (plus the Timeline-Index
research archetype from its future-work discussion).

Public API::

    from repro import connect, make_system, BitemporalDataGenerator, Loader
"""

from .core.generator import BitemporalDataGenerator, GeneratorConfig
from .core.loader import Loader
from .core.queries import Workload
from .engine.dbapi import connect
from .systems import make_system

__version__ = "1.0.0"

__all__ = [
    "connect",
    "make_system",
    "BitemporalDataGenerator",
    "GeneratorConfig",
    "Loader",
    "Workload",
    "__version__",
]
