"""Benchmark harness: measurement service, experiments, reporting.

Modelled on the Benchmarking Service the paper used (§4, [10]): repeated
measurement with warm-up discards, parameter binding from generator
metadata, per-experiment orchestration and paper-style reports.  The
perf-trajectory side (artifact diffing, trend folding) lives in
:mod:`.compare` and :mod:`.trend` over the ``repro-bench/v1`` artifacts
:mod:`.artifact` reads and writes.
"""

from .service import BenchmarkService, Measurement
from .report import format_delta_table, format_figure, format_ratio_table, geometric_mean

__all__ = [
    "BenchmarkService",
    "Measurement",
    "format_delta_table",
    "format_figure",
    "format_ratio_table",
    "geometric_mean",
]
