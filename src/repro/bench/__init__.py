"""Benchmark harness: measurement service, experiments, reporting.

Modelled on the Benchmarking Service the paper used (§4, [10]): repeated
measurement with warm-up discards, parameter binding from generator
metadata, per-experiment orchestration and paper-style reports.
"""

from .service import BenchmarkService, Measurement
from .report import format_figure, format_ratio_table, geometric_mean

__all__ = [
    "BenchmarkService",
    "Measurement",
    "format_figure",
    "format_ratio_table",
    "geometric_mean",
]
