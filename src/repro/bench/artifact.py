"""Machine-readable benchmark artifacts (``repro bench --json``).

Schema ``repro-bench/v2`` (v1 plus per-measurement ``statements``:
per-fingerprint workload-telemetry rows captured when the system's
statement store is enabled; the loader still reads v1 artifacts, which
simply lack the key)::

    {
      "schema": "repro-bench/v2",
      "generator": {"tool": "repro bench"},
      "config": {...},                  # scale factors, experiments, service knobs
      "experiments": [
        {
          "name": "fig02",
          "measurements": [
            {
              "qid": "T1.app", "system": "A", "setting": "no index",
              "runs": 3, "discarded": 1,
              "median_s": ..., "mean_s": ..., "best_s": ...,
              "p95_s": ...,               # null when no samples were kept
              "times_s": [...],           # kept (post-discard) samples
              "rows": ..., "timed_out": false, "timeout_s": null,
              "diagnostics": ["TQ001", ...],
              "metrics": {"storage.current_rows_scanned": 1234, ...},
              "statements": [{"fingerprint": "...", "calls": 8, ...}, ...]
            }, ...
          ],
          "series": {...},              # figure line data, when the experiment has any
          "extra": {...}
        }, ...
      ],
      "systems": {
        "A": {
          "architecture": "...",
          "cache": {...},               # plan-cache counters (cumulative)
          "metrics": {...}              # summed per-measurement metric deltas
        }, ...
      },
      "analyzer": {"TQ001": {"severity": "info", "count": 4}, ...}
    }

Timings are seconds; ``metrics`` values are counter deltas scoped to the
measurement cell (the service resets the registry before each one).
Non-finite floats serialise as null so the artifact stays strict JSON.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional

SCHEMA = "repro-bench/v2"

#: schema strings load_artifact accepts; older versions are forward-read
#: (missing keys are treated as absent values by every consumer)
SUPPORTED_SCHEMAS = ("repro-bench/v1", SCHEMA)


def _jsonable(value):
    """Best-effort conversion to strict-JSON-serialisable values."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    return str(value)


def measurement_record(measurement) -> Dict:
    """One Measurement as a schema v2 record."""
    try:
        p95 = measurement.percentile(95)
    except ValueError:
        p95 = None
    return {
        "qid": measurement.qid,
        "system": measurement.system,
        "setting": measurement.setting,
        "runs": len(measurement.times),
        "discarded": len(measurement.discarded),
        "median_s": _jsonable(measurement.median),
        "mean_s": _jsonable(measurement.mean),
        "best_s": _jsonable(measurement.best),
        "p95_s": _jsonable(p95),
        "times_s": [_jsonable(t) for t in measurement.times],
        "rows": measurement.rows,
        "timed_out": measurement.timed_out,
        "timeout_s": _jsonable(measurement.timeout_s),
        "diagnostics": [d.code for d in measurement.diagnostics],
        "metrics": dict(measurement.metrics),
        "statements": _jsonable(getattr(measurement, "statements", [])),
    }


def experiment_record(result) -> Dict:
    """One ExperimentResult as a schema v2 record (text is dropped — the
    artifact is for machines; humans read the printed tables)."""
    return {
        "name": result.name,
        "measurements": [measurement_record(m) for m in result.measurements],
        "series": _jsonable(result.series),
        "extra": _jsonable(result.extra),
    }


def _analyzer_tally(results) -> Dict[str, Dict]:
    tally: Dict[str, Dict] = {}
    for result in results:
        for measurement in result.measurements:
            for diagnostic in measurement.diagnostics:
                entry = tally.setdefault(
                    diagnostic.code,
                    {"severity": diagnostic.severity, "count": 0},
                )
                entry["count"] += 1
    return dict(sorted(tally.items()))


def _system_record(name: str, system, results) -> Dict:
    record: Dict = {"architecture": getattr(system, "architecture", "")}
    cache_stats = getattr(system, "cache_stats", None)
    if callable(cache_stats):
        record["cache"] = _jsonable(cache_stats())
    # total metric deltas: the registry is reset per cell, so the artifact
    # re-aggregates from the per-measurement records instead
    totals: Dict[str, int] = {}
    for result in results:
        for measurement in result.measurements:
            if measurement.system != name:
                continue
            for metric, value in measurement.metrics.items():
                totals[metric] = totals.get(metric, 0) + value
    record["metrics"] = dict(sorted(totals.items()))
    return record


def build_artifact(
    results: List,
    systems: Optional[Dict[str, object]] = None,
    config: Optional[Dict] = None,
) -> Dict:
    """Assemble the full artifact from experiment results + systems."""
    artifact = {
        "schema": SCHEMA,
        "generator": {"tool": "repro bench"},
        "config": _jsonable(config or {}),
        "experiments": [experiment_record(r) for r in results],
        "systems": {},
        "analyzer": _analyzer_tally(results),
    }
    for name, system in (systems or {}).items():
        artifact["systems"][name] = _system_record(name, system, results)
    return artifact


def write_artifact(path, artifact: Dict, experiment: str = "bench") -> Path:
    """Write *artifact* as JSON.  A directory path (or one without a
    ``.json`` suffix that names an existing directory) gets the canonical
    ``BENCH_<experiment>.json`` file name."""
    target = Path(path)
    if target.is_dir():
        target = target / f"BENCH_{experiment}.json"
    target.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return target


class ArtifactError(ValueError):
    """A file is not a readable ``repro-bench`` artifact."""


def load_artifact(path) -> Dict:
    """Read and validate one artifact file.

    Validation is shallow on purpose — the schema string must match and
    the experiment list must be a list — so artifacts written by older
    code with extra keys keep loading; consumers treat missing fields as
    absent values.
    """
    source = Path(path)
    try:
        artifact = json.loads(source.read_text())
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {source}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{source} is not valid JSON: {exc}") from exc
    if (
        not isinstance(artifact, dict)
        or artifact.get("schema") not in SUPPORTED_SCHEMAS
    ):
        raise ArtifactError(
            f"{source} is not a repro-bench artifact "
            f"(schema={artifact.get('schema') if isinstance(artifact, dict) else '?'!r}; "
            f"supported: {', '.join(SUPPORTED_SCHEMAS)})"
        )
    if not isinstance(artifact.get("experiments"), list):
        raise ArtifactError(f"{source}: 'experiments' must be a list")
    return artifact


def find_artifacts(directory) -> List[Path]:
    """Every loadable artifact under *directory*, ordered for trending.

    Order: the artifact's own ``generator.created_unix`` stamp when
    present, file modification time otherwise — name is the final
    tie-break so the fold is deterministic.  Unreadable or non-artifact
    JSON files are skipped silently (the directory may hold other tooling
    output).
    """
    root = Path(directory)
    dated = []
    for candidate in sorted(root.glob("*.json")):
        try:
            artifact = load_artifact(candidate)
        except ArtifactError:
            continue
        stamp = (artifact.get("generator") or {}).get("created_unix")
        if not isinstance(stamp, (int, float)):
            stamp = candidate.stat().st_mtime
        dated.append((stamp, candidate.name, candidate))
    return [path for _stamp, _name, path in sorted(dated)]
