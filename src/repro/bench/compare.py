"""Artifact comparator: run-to-run deltas, threshold policy, CI gate.

The paper's headline results are *relative* — geometric-mean slowdowns of
26x/73x/7x/2.1x for systems A-D — so the reproduction needs run-to-run
comparison as a first-class operation, not a one-off script.  This module
diffs two ``repro-bench/v1`` artifacts (see :mod:`repro.bench.artifact`)
cell by cell and classifies each cell against a configurable threshold
policy, which makes the perf trajectory enforceable: ``repro bench-diff
BASE.json NEW.json --gate`` exits nonzero when any cell regressed.

Per cell (``experiment|qid|system|setting``):

* median and p95 ratio + absolute delta, classified as ``improved`` /
  ``unchanged`` / ``regressed`` (or ``added`` / ``removed`` when the cell
  exists on only one side);
* metric-count regressions — engine counters (rows scanned, probes,
  merges) that grew past the policy's metric ratio, the *why* behind a
  time regression;

and across the artifact: per-system geometric-mean ratios (the paper's
headline aggregation), and analyzer-tally drift (diagnostic codes that
appeared, disappeared, or changed count).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .artifact import load_artifact
from .report import geometric_mean

#: classification outcomes, in report order
STATUSES = ("regressed", "added", "removed", "improved", "unchanged")


@dataclass(frozen=True)
class ThresholdPolicy:
    """When does a cell's movement count as a real change?

    ``regress_ratio`` — new/base median at or above this regresses the
    cell; the improvement bound is its reciprocal unless ``improve_ratio``
    is given.  ``min_delta_s`` is an absolute floor: sub-noise absolute
    movements never classify as changes regardless of ratio (tiny cells
    jitter by large ratios).  ``metric_ratio`` bounds engine-counter
    growth the same way (with ``min_metric_delta`` as its floor).
    """

    regress_ratio: float = 1.15
    improve_ratio: Optional[float] = None
    min_delta_s: float = 0.0005
    metric_ratio: float = 1.5
    min_metric_delta: int = 16

    def __post_init__(self):
        if self.regress_ratio <= 1.0:
            raise ValueError("regress_ratio must be > 1.0")
        if self.improve_ratio is not None and self.improve_ratio >= 1.0:
            raise ValueError("improve_ratio must be < 1.0")

    @property
    def improvement_bound(self) -> float:
        return self.improve_ratio if self.improve_ratio is not None else 1.0 / self.regress_ratio

    def classify(self, base_s: Optional[float], new_s: Optional[float]) -> str:
        if base_s is None and new_s is None:
            return "unchanged"
        if base_s is None:
            return "added"
        if new_s is None:
            return "removed"
        if abs(new_s - base_s) < self.min_delta_s:
            return "unchanged"
        if base_s <= 0:
            return "regressed" if new_s > 0 else "unchanged"
        ratio = new_s / base_s
        if ratio >= self.regress_ratio:
            return "regressed"
        if ratio <= self.improvement_bound:
            return "improved"
        return "unchanged"


@dataclass
class CellDelta:
    """One benchmark cell compared across two artifacts."""

    key: str  # "experiment|qid|system|setting"
    experiment: str
    qid: str
    system: str
    setting: str
    base_median_s: Optional[float]
    new_median_s: Optional[float]
    base_p95_s: Optional[float] = None
    new_p95_s: Optional[float] = None
    base_timed_out: bool = False
    new_timed_out: bool = False
    status: str = "unchanged"
    #: (counter, base value, new value) for counters past the metric policy
    metric_regressions: List[Tuple[str, int, int]] = field(default_factory=list)

    @property
    def ratio(self) -> Optional[float]:
        if self.base_median_s and self.new_median_s is not None and self.base_median_s > 0:
            return self.new_median_s / self.base_median_s
        return None

    @property
    def delta_s(self) -> Optional[float]:
        if self.base_median_s is None or self.new_median_s is None:
            return None
        return self.new_median_s - self.base_median_s


@dataclass
class ArtifactDiff:
    """The full comparison of two artifacts."""

    base_label: str
    new_label: str
    policy: ThresholdPolicy
    cells: List[CellDelta] = field(default_factory=list)
    #: system -> geometric mean of new/base median ratios over shared cells
    system_gm: Dict[str, float] = field(default_factory=dict)
    #: code -> (base count, new count) where the tally moved
    analyzer_drift: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def regressions(self) -> List[CellDelta]:
        return [c for c in self.cells if c.status == "regressed"]

    @property
    def improvements(self) -> List[CellDelta]:
        return [c for c in self.cells if c.status == "improved"]

    @property
    def metric_regressions(self) -> List[CellDelta]:
        return [c for c in self.cells if c.metric_regressions]

    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in STATUSES}
        for cell in self.cells:
            out[cell.status] += 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        bits = [f"{counts[s]} {s}" for s in STATUSES if counts[s]]
        return (
            f"{self.base_label} -> {self.new_label}: "
            f"{', '.join(bits) if bits else 'no cells'}"
        )


# ---------------------------------------------------------------------------
# cell extraction
# ---------------------------------------------------------------------------


def cell_key(experiment: str, qid: str, system: str, setting: str) -> str:
    return f"{experiment}|{qid}|{system}|{setting}"


def artifact_cells(artifact: Dict) -> Dict[str, Dict]:
    """``cell key -> measurement record`` over every experiment.

    Duplicate keys (a qid measured twice in one experiment under the same
    setting) keep the first record — artifacts produced by ``repro bench``
    never contain duplicates, but hand-merged files might.
    """
    out: Dict[str, Dict] = {}
    for experiment in artifact.get("experiments", ()):
        name = experiment.get("name", "?")
        for record in experiment.get("measurements", ()):
            key = cell_key(
                name,
                record.get("qid", "?"),
                record.get("system", "?"),
                record.get("setting", "?"),
            )
            out.setdefault(key, dict(record, experiment=name))
    return out


def _finite(value) -> Optional[float]:
    if isinstance(value, (int, float)) and math.isfinite(value):
        return float(value)
    return None


def _metric_regressions(base: Dict, new: Dict, policy: ThresholdPolicy):
    out: List[Tuple[str, int, int]] = []
    base_metrics = base.get("metrics") or {}
    new_metrics = new.get("metrics") or {}
    for name in sorted(set(base_metrics) | set(new_metrics)):
        before = int(base_metrics.get(name, 0))
        after = int(new_metrics.get(name, 0))
        if after - before < policy.min_metric_delta:
            continue
        if before <= 0 or after / before >= policy.metric_ratio:
            out.append((name, before, after))
    return out


# ---------------------------------------------------------------------------
# diffing
# ---------------------------------------------------------------------------


def diff_artifacts(
    base: Dict,
    new: Dict,
    policy: Optional[ThresholdPolicy] = None,
    base_label: str = "base",
    new_label: str = "new",
) -> ArtifactDiff:
    """Compare two loaded artifacts cell by cell."""
    policy = policy or ThresholdPolicy()
    diff = ArtifactDiff(base_label=base_label, new_label=new_label, policy=policy)
    base_cells = artifact_cells(base)
    new_cells = artifact_cells(new)
    ratios_by_system: Dict[str, List[float]] = {}
    for key in sorted(set(base_cells) | set(new_cells)):
        before = base_cells.get(key)
        after = new_cells.get(key)
        source = after or before
        cell = CellDelta(
            key=key,
            experiment=source["experiment"],
            qid=source.get("qid", "?"),
            system=source.get("system", "?"),
            setting=source.get("setting", "?"),
            base_median_s=_finite(before.get("median_s")) if before else None,
            new_median_s=_finite(after.get("median_s")) if after else None,
            base_p95_s=_finite(before.get("p95_s")) if before else None,
            new_p95_s=_finite(after.get("p95_s")) if after else None,
            base_timed_out=bool(before and before.get("timed_out")),
            new_timed_out=bool(after and after.get("timed_out")),
        )
        if before is not None and after is not None:
            # timeouts dominate the numeric policy: a fresh timeout is a
            # regression whatever the recorded cutoff instants say
            if cell.new_timed_out and not cell.base_timed_out:
                cell.status = "regressed"
            elif cell.base_timed_out and not cell.new_timed_out:
                cell.status = "improved"
            else:
                cell.status = policy.classify(cell.base_median_s, cell.new_median_s)
            cell.metric_regressions = _metric_regressions(before, after, policy)
            if (
                cell.ratio is not None
                and not cell.base_timed_out
                and not cell.new_timed_out
            ):
                ratios_by_system.setdefault(cell.system, []).append(cell.ratio)
        else:
            cell.status = "added" if before is None else "removed"
        diff.cells.append(cell)
    for system, ratios in sorted(ratios_by_system.items()):
        diff.system_gm[system] = geometric_mean(ratios)
    base_tally = base.get("analyzer") or {}
    new_tally = new.get("analyzer") or {}
    for code in sorted(set(base_tally) | set(new_tally)):
        before_count = int((base_tally.get(code) or {}).get("count", 0))
        after_count = int((new_tally.get(code) or {}).get("count", 0))
        if before_count != after_count:
            diff.analyzer_drift[code] = (before_count, after_count)
    return diff


def diff_files(
    base_path,
    new_path,
    policy: Optional[ThresholdPolicy] = None,
) -> ArtifactDiff:
    """Load and diff two artifact files (labels are the file names)."""
    from pathlib import Path

    base = load_artifact(base_path)
    new = load_artifact(new_path)
    return diff_artifacts(
        base,
        new,
        policy=policy,
        base_label=Path(base_path).name,
        new_label=Path(new_path).name,
    )


def markdown_report(diff: ArtifactDiff) -> str:
    """The delta report as markdown (the CI-uploaded artifact)."""
    lines = [
        f"# Bench delta: `{diff.base_label}` → `{diff.new_label}`",
        "",
        f"Policy: regress ≥ {diff.policy.regress_ratio:.2f}×, "
        f"improve ≤ {diff.policy.improvement_bound:.2f}×, "
        f"floor {diff.policy.min_delta_s * 1000:.2f} ms.",
        "",
        f"**{diff.summary()}**",
        "",
        "| cell | base | new | ratio | status |",
        "|---|---:|---:|---:|---|",
    ]
    for cell in diff.cells:
        base = "—" if cell.base_median_s is None else f"{cell.base_median_s * 1000:.3f} ms"
        new = "—" if cell.new_median_s is None else f"{cell.new_median_s * 1000:.3f} ms"
        if cell.base_timed_out:
            base = "timeout"
        if cell.new_timed_out:
            new = "timeout"
        ratio = "—" if cell.ratio is None else f"{cell.ratio:.2f}×"
        lines.append(f"| `{cell.key}` | {base} | {new} | {ratio} | {cell.status} |")
    if diff.system_gm:
        lines += ["", "| system | geometric-mean ratio |", "|---|---:|"]
        for system, gm in diff.system_gm.items():
            value = "—" if math.isnan(gm) else f"{gm:.3f}×"
            lines.append(f"| {system} | {value} |")
    metric_cells = diff.metric_regressions
    if metric_cells:
        lines += ["", "## Metric regressions", ""]
        for cell in metric_cells:
            for name, before, after in cell.metric_regressions:
                lines.append(f"- `{cell.key}`: `{name}` {before} → {after}")
    if diff.analyzer_drift:
        lines += ["", "## Analyzer drift", ""]
        for code, (before, after) in diff.analyzer_drift.items():
            lines.append(f"- `{code}`: {before} → {after}")
    return "\n".join(lines) + "\n"


__all__ = [
    "ArtifactDiff",
    "CellDelta",
    "STATUSES",
    "ThresholdPolicy",
    "artifact_cells",
    "cell_key",
    "diff_artifacts",
    "diff_files",
    "markdown_report",
]
