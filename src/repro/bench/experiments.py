"""One function per paper table/figure (the per-experiment index of DESIGN.md).

Every function takes prepared systems (see :func:`prepare_systems`) plus the
generator workload and a :class:`BenchmarkService`, and returns an
:class:`ExperimentResult` holding raw measurements and the rendered,
paper-style report.  The pytest benches under ``benchmarks/`` are thin
wrappers over these functions; examples reuse them too.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..core.generator import BitemporalDataGenerator, GeneratorConfig
from ..core.loader import Loader, load_nontemporal_baseline
from ..core.queries import Workload
from ..core.queries import tpch
from ..core.stats import format_operations_table, operations_table, scenario_mix
from ..engine.database import Database
from ..systems import IndexSetting, apply_index_setting, drop_tuning_indexes, make_system
from ..systems.system_e import SystemE
from .report import (
    format_figure,
    format_latency_table,
    format_ratio_table,
    format_series,
)
from .service import Measurement

WORKLOAD = Workload()


@dataclass
class ExperimentResult:
    name: str
    text: str
    measurements: List[Measurement] = field(default_factory=list)
    series: Dict = field(default_factory=dict)
    extra: Dict = field(default_factory=dict)

    def __str__(self):
        return self.text


# ---------------------------------------------------------------------------
# preparation
# ---------------------------------------------------------------------------


def generate_workload(h=0.001, m=0.0005, seed=None, **kwargs):
    config = GeneratorConfig(h=h, m=m, **({"seed": seed} if seed else {}), **kwargs)
    return BitemporalDataGenerator(config).generate()


def prepare_systems(
    workload, names: Sequence[str] = "ABCD", batch_size=1, analyze=True
) -> Dict[str, object]:
    """Load the workload into fresh instances of the named archetypes.

    Statistics are collected after loading (like any benchmark run on a
    real system would ANALYZE after bulk load), so multi-table cells run
    under cost-based join ordering; pass ``analyze=False`` to benchmark
    the statistics-free greedy planner instead.

    Databases built here are long-lived workload hosts, so the default
    auto-ANALYZE threshold is armed *after* loading — bulk-load mutations
    never trigger it, later DML churn re-freshens statistics
    automatically (``repro_stat_tables.last_analyze`` shows it firing).
    """
    from ..engine.database import DEFAULT_AUTO_ANALYZE_THRESHOLD

    systems = {}
    for name in names:
        system = make_system(name)
        Loader(system, workload).load(batch_size=batch_size)
        if analyze:
            system.analyze()
        system.db.auto_analyze_threshold = DEFAULT_AUTO_ANALYZE_THRESHOLD
        systems[name] = system
    return systems


def _measure_queries(service, systems, qids, meta, setting="no index"):
    measurements = []
    for qid in qids:
        query = WORKLOAD.query(qid)
        for name, system in systems.items():
            measurements.append(
                service.measure_query(system, query, meta, setting=setting)
            )
    return measurements


# ---------------------------------------------------------------------------
# Table 1 / Table 2: the generator itself
# ---------------------------------------------------------------------------


def table1_scenario_mix(workload) -> ExperimentResult:
    mix = scenario_mix(workload)
    lines = ["Table 1: observed scenario mix", "=" * 31]
    for name, share in mix.items():
        lines.append(f"  {name:<22} {share:6.3f}")
    return ExperimentResult("table1", "\n".join(lines), extra={"mix": mix})


def table2_operations(workload) -> ExperimentResult:
    text = format_operations_table(workload)
    return ExperimentResult(
        "table2", text, extra={"rows": operations_table(workload)}
    )


# ---------------------------------------------------------------------------
# Fig 2 / Fig 3: basic point time travel and index impact
# ---------------------------------------------------------------------------

_FIG2_QIDS = ["T1.app", "T1.sys", "T2.app", "T2.sys", "T5.all"]


def fig02_basic_time_travel(systems, workload, service) -> ExperimentResult:
    measurements = _measure_queries(service, systems, _FIG2_QIDS, workload.meta)
    text = format_figure(
        "Fig 2: Basic Time Travel (out-of-the-box, no extra indexes)", measurements
    )
    return ExperimentResult("fig02", text, measurements)


def fig03_index_impact(systems, workload, service) -> ExperimentResult:
    """No-index vs Time-Index (B-Tree), plus GiST on System D (§5.3.2)."""
    measurements = []
    qids = ["T1.app", "T1.sys", "T2.app", "T2.sys", "T5.all"]
    measurements += _measure_queries(service, systems, qids, workload.meta, "no index")
    for name, system in systems.items():
        apply_index_setting(system, IndexSetting.TIME)
    measurements += _measure_queries(service, systems, qids, workload.meta, "B-Tree")
    if "D" in systems:
        drop_tuning_indexes(systems["D"])
        apply_index_setting(systems["D"], IndexSetting.TIME, kind="rtree")
        measurements += _measure_queries(
            service, {"D": systems["D"]}, qids, workload.meta, "GiST"
        )
    for system in systems.values():
        drop_tuning_indexes(system)
    text = format_figure("Fig 3: Index Impact for Basic Time Travel", measurements)
    return ExperimentResult("fig03", text, measurements)


# ---------------------------------------------------------------------------
# Fig 4 / Fig 12: sensitivity to history length
# ---------------------------------------------------------------------------


def fig04_history_scaling(
    service,
    h=0.0002,
    m_values=(0.0005, 0.001, 0.002),
    names="ABCD",
    with_index=True,
) -> ExperimentResult:
    """T1 with *fixed* temporal parameters on growing histories (§5.3.3):
    constant result, so indexed plans can be constant while scans grow."""
    query = WORKLOAD.query("T1.sys")
    series: Dict[str, List[tuple]] = {}
    for m in m_values:
        workload = generate_workload(h=h, m=m)
        params = {
            # fixed: just after the initial version, maximum app time
            "sys_point": workload.meta.initial_tick,
            "app_point": workload.meta.first_history_day - 1,
        }
        systems = prepare_systems(workload, names)
        for name, system in systems.items():
            cell = service.measure_sql(system, query.sql, params, qid="T1.sys", setting="no index")
            series.setdefault(f"{name}/noidx", []).append((m, cell.median))
            if with_index and system.db.profile.uses_indexes:
                apply_index_setting(system, IndexSetting.TIME)
                cell = service.measure_sql(system, query.sql, params, qid="T1.sys", setting="B-Tree")
                series.setdefault(f"{name}/btree", []).append((m, cell.median))
                drop_tuning_indexes(system)
    text = format_series(
        "Fig 4: T1 for Variable History Size (fixed parameters)", "m (scale)", series
    )
    return ExperimentResult("fig04", text, series=series)


def fig12_keyrange_history_scaling(
    service,
    h=0.0002,
    m_values=(0.0005, 0.001, 0.002),
    names="ABCD",
) -> ExperimentResult:
    """Key-in-time at fixed system time over growing histories (§5.5.4),
    with Key+Time indexes applied."""
    query = WORKLOAD.query("K1.app_past")
    series: Dict[str, List[tuple]] = {}
    for m in m_values:
        workload = generate_workload(h=h, m=m)
        params = dict(query.params(workload.meta))
        params["sys_past"] = workload.meta.first_scenario_tick + 1
        systems = prepare_systems(workload, names)
        for name, system in systems.items():
            apply_index_setting(system, IndexSetting.KEY_TIME)
            cell = service.measure_sql(
                system, query.sql, params, qid="K1.app_past", setting="Key+Time"
            )
            series.setdefault(name, []).append((m, cell.median))
    text = format_series(
        "Fig 12: Key-Range for Variable History Size (Key+Time index)",
        "m (scale)",
        series,
    )
    return ExperimentResult("fig12", text, series=series)


# ---------------------------------------------------------------------------
# Fig 5: temporal slicing
# ---------------------------------------------------------------------------


def fig05_temporal_slicing(systems, workload, service) -> ExperimentResult:
    qids = ["T6.appslice", "T9", "T6.sysslice", "T5.all"]
    measurements = _measure_queries(service, systems, qids, workload.meta)
    text = format_figure("Fig 5: Temporal Slicing", measurements)
    return ExperimentResult("fig05", text, measurements)


# ---------------------------------------------------------------------------
# Fig 6: implicit vs explicit current time travel
# ---------------------------------------------------------------------------


def fig06_implicit_explicit(systems, workload, service) -> ExperimentResult:
    native = {n: s for n, s in systems.items() if n in ("A", "B", "C")}
    measurements = _measure_queries(
        service, native, ["T7.implicit", "T7.explicit"], workload.meta
    )
    # verify the architectural claim: explicit AS OF touches the history
    probes = {}
    for name, system in native.items():
        table = system.db.table("orders")
        before = table.stats.history_scans
        system.execute(WORKLOAD.query("T7.explicit").sql,
                       WORKLOAD.query("T7.explicit").params(workload.meta))
        probes[name] = table.stats.history_scans - before
    text = format_figure(
        "Fig 6: Current TT, Implicit vs Explicit (history access not pruned)",
        measurements,
    )
    text += "\nhistory-partition scans per explicit query: " + str(probes)
    return ExperimentResult("fig06", text, measurements, extra={"history_scans": probes})


# ---------------------------------------------------------------------------
# Fig 7: TPC-H with time travel
# ---------------------------------------------------------------------------


def fig07_tpch(
    systems,
    workload,
    service,
    mode: str,
    numbers: Optional[Sequence[int]] = None,
    baseline_version=None,
) -> ExperimentResult:
    """Fig 7(a) mode="app" / Fig 7(b) mode="sys": slowdown of the temporal
    tables vs a non-temporal baseline with the same data (§5.4)."""
    numbers = list(numbers or tpch.all_numbers())
    baseline_version = baseline_version or ("final" if mode == "app" else "initial")

    ratios: Dict[str, Dict[int, float]] = {}
    timeouts: Dict[str, List[int]] = {}
    base_times: Dict[str, Dict[int, float]] = {}
    for name, system in systems.items():
        # the paper normalises per system: the baseline runs on the *same*
        # architecture (same store kind and optimizer profile), only the
        # tables are non-temporal
        baseline = Database(
            options=system.db.default_options, profile=system.db.profile
        )
        load_nontemporal_baseline(baseline, workload, version=baseline_version)
        base_times[name] = {}
        ratios[name] = {}
        timeouts[name] = []
        for number in numbers:
            sql = tpch.tpch_query(number, "plain")
            cell = service.measure_sql(
                baseline, sql, {}, qid=f"Q{number}", setting="baseline"
            )
            base_times[name][number] = cell.median
        for number in numbers:
            sql = tpch.tpch_query(number, mode)
            params = tpch.tpch_params(workload.meta, mode)
            cell = service.measure_sql(system, sql, params, qid=f"Q{number}", setting=mode)
            if cell.timed_out:
                timeouts[name].append(number)
                continue
            base = max(base_times[name][number], 1e-9)
            ratios[name][number] = cell.median / base
    label = "application" if mode.startswith("app") else "system"
    text = format_ratio_table(
        f"Fig 7({'a' if mode.startswith('app') else 'b'}): TPC-H with {label} "
        f"time travel, mode={mode} (ratio temporal/non-temporal)",
        ratios,
        timeouts,
    )
    slice_ratios = None
    if mode == "app":
        # complementary measurement: the application-time *slice*, which
        # exposes the version-volume overhead of the bitemporal tables
        # (see EXPERIMENTS.md for why the point variant can run *faster*
        # than the baseline on this engine)
        slice_result = fig07_tpch(
            systems, workload, service, mode="app_slice",
            numbers=numbers, baseline_version=baseline_version,
        )
        slice_ratios = slice_result.series
        text += "\n\n" + slice_result.text
    return ExperimentResult(
        f"fig07{mode}", text, series=ratios,
        extra={"timeouts": timeouts, "base": base_times,
               "slice_ratios": slice_ratios},
    )


# ---------------------------------------------------------------------------
# Join ordering: multi-join TPC-H cells (cost-model demonstration)
# ---------------------------------------------------------------------------

#: 3+-table TPC-H joins whose plans are join-order sensitive: Q8 and Q9
#: reorder under statistics (update-heavy histories inflate the greedy
#: size heuristic); Q3 mostly keeps its order (near-control cell).  Q2 is
#: deliberately absent: its correlated subquery cost is not modelled and
#: reordering it can backfire (see docs/COST_MODEL.md, limitations).
_JOIN_NUMBERS = (3, 8, 9)


def join_ordering(systems, workload, service) -> ExperimentResult:
    """Multi-join TPC-H queries under system time travel, as plain cells.

    Unlike Fig 7 (which reports temporal/non-temporal *ratios*), this
    experiment keeps the raw measurements so ``bench --compare-to`` /
    ``bench-diff`` can diff them cell by cell — the A/B surface for the
    cost-based join ordering: run ``bench joins --no-stats --json base``
    for the greedy order, then ``bench joins --compare-to base`` with
    statistics armed (the default; see docs/COST_MODEL.md).
    """
    measurements = []
    params = tpch.tpch_params(workload.meta, "sys")
    for number in _JOIN_NUMBERS:
        sql = tpch.tpch_query(number, "sys")
        for name, system in systems.items():
            measurements.append(
                service.measure_sql(
                    system, sql, params, qid=f"H{number}.sys",
                    setting="multi-join",
                )
            )
    text = format_figure(
        "Join ordering: multi-join TPC-H under system time travel",
        measurements,
    )
    return ExperimentResult("joins", text, measurements)


# ---------------------------------------------------------------------------
# temporal operators: native sweep/align vs the SQL:2011 rewrites
# ---------------------------------------------------------------------------


_TEMPORAL_AGG_NATIVE = {
    "R3a": (
        "SELECT TEMPORAL(system_time) AS t, count(*)"
        " FROM orders FOR SYSTEM_TIME ALL"
        " GROUP BY TEMPORAL(system_time)"
    ),
    "R3b": (
        "SELECT TEMPORAL(system_time) AS t, sum(o_totalprice)"
        " FROM orders FOR SYSTEM_TIME ALL"
        " GROUP BY TEMPORAL(system_time)"
    ),
}

_ALIGN_REWRITE = (
    "SELECT count(*)"
    " FROM customer FOR SYSTEM_TIME ALL c,"
    "      orders FOR SYSTEM_TIME ALL o"
    " WHERE c.c_custkey = o.o_custkey"
    "   AND c.sys_begin < o.sys_end AND o.sys_begin < c.sys_end"
)
_ALIGN_NATIVE = (
    "SELECT count(*)"
    " FROM customer FOR SYSTEM_TIME ALL c"
    " TEMPORAL JOIN orders FOR SYSTEM_TIME ALL o"
    " ON c.c_custkey = o.o_custkey"
)


class _SystemENoFusion(SystemE):
    """System E with ``temporal-fusion`` masked.

    The honest rewrite arm of the temporal-ops experiment: on stock E
    the optimizer fuses the rewrite back into the native operator, and
    the comparison would measure the native plan twice.
    """

    def profile(self):
        base = super().profile()
        return replace(
            base,
            rewrite_rules=tuple(
                rule
                for rule in base.rewrite_rules
                if rule != "temporal-fusion"
            ),
        )


def temporal_ops(systems, workload, service) -> ExperimentResult:
    """Native temporal aggregation / align join vs their SQL:2011 rewrites.

    The paper's §5.6 headline: temporal aggregation through the
    boundaries-self-join rewrite costs *"more than two orders of
    magnitude more ... than a full access to the history"*.  Each
    archetype runs the (corrected, both-endpoints) rewrite against the
    native operators — explicit ``GROUP BY TEMPORAL`` / ``TEMPORAL
    JOIN`` dialect — with result equivalence checked inline before any
    timing.  Raw cells are kept so ``bench-diff`` can gate on them.
    """
    native_e = make_system("E")
    Loader(native_e, workload).load()
    native_e.analyze()
    rewrite_e = _SystemENoFusion()
    Loader(rewrite_e, workload).load()
    rewrite_e.analyze()

    pairs = [
        ("R3a", WORKLOAD.query("R3a").sql, _TEMPORAL_AGG_NATIVE["R3a"]),
        ("R3b", WORKLOAD.query("R3b").sql, _TEMPORAL_AGG_NATIVE["R3b"]),
        ("R5.align", _ALIGN_REWRITE, _ALIGN_NATIVE),
    ]
    measurements = []
    speedups: Dict[str, Dict[str, float]] = {}
    for qid, rewrite_sql, native_sql in pairs:
        for name in "ABCDE":
            rewrite_system = rewrite_e if name == "E" else systems[name]
            native_system = native_e if name == "E" else systems[name]
            expected = sorted(rewrite_system.execute(rewrite_sql).rows)
            got = sorted(native_system.execute(native_sql).rows)
            if got != expected:
                raise AssertionError(
                    f"native {qid} diverged from the rewrite on system {name}"
                )
            rewrite_cell = service.measure_sql(
                rewrite_system, rewrite_sql, qid=qid, setting="rewrite"
            )
            native_cell = service.measure_sql(
                native_system, native_sql, qid=qid, setting="native"
            )
            measurements.extend((rewrite_cell, native_cell))
            speedups.setdefault(qid, {})[name] = (
                rewrite_cell.median / native_cell.median
                if native_cell.median > 0
                else float("inf")
            )
    text = format_figure(
        "Temporal operators: native sweep/align vs SQL:2011 rewrite",
        measurements,
    )
    lines = ["", "", "speedup (rewrite median / native median)"]
    for qid, per in speedups.items():
        row = "  ".join(f"{name} {ratio:7.1f}x" for name, ratio in per.items())
        lines.append(f"  {qid:<10} {row}")
    text += "\n".join(lines)
    return ExperimentResult(
        "temporal-ops", text, measurements, extra={"speedups": speedups}
    )


# ---------------------------------------------------------------------------
# Fig 8-11: key in time / audit
# ---------------------------------------------------------------------------


def _with_and_without_indexes(systems, workload, service, qids, setting=IndexSetting.KEY_TIME,
                              value_column=None, value_table=None):
    measurements = _measure_queries(service, systems, qids, workload.meta, "no index")
    for system in systems.values():
        apply_index_setting(
            system, setting, value_column=value_column, value_table=value_table
        )
    label = "B-Tree" if setting is not IndexSetting.VALUE else "Value idx"
    measurements += _measure_queries(service, systems, qids, workload.meta, label)
    for system in systems.values():
        drop_tuning_indexes(system)
    return measurements


def fig08_key_in_time(systems, workload, service) -> ExperimentResult:
    qids = ["K1.app", "K1.app_past", "K1.both", "K1.sys"]
    measurements = _with_and_without_indexes(systems, workload, service, qids)
    text = format_figure("Fig 8: Key in Time - Full Range", measurements)
    return ExperimentResult("fig08", text, measurements)


def fig09_time_restriction(systems, workload, service) -> ExperimentResult:
    qids = ["K2.app", "K2.sys", "K3.app", "K3.sys"]
    measurements = _with_and_without_indexes(systems, workload, service, qids)
    text = format_figure("Fig 9: Key in Time - Time Restriction", measurements)
    return ExperimentResult("fig09", text, measurements)


def fig10_version_restriction(systems, workload, service) -> ExperimentResult:
    qids = ["K4.app", "K4.sys", "K5.sys"]
    measurements = _with_and_without_indexes(systems, workload, service, qids)
    text = format_figure("Fig 10: Key in Time - Version Restriction", measurements)
    return ExperimentResult("fig10", text, measurements)


def fig11_value_in_time(systems, workload, service) -> ExperimentResult:
    qids = ["K6.app", "K6.app_past", "K6.sys"]
    measurements = _with_and_without_indexes(
        systems, workload, service, qids,
        setting=IndexSetting.VALUE, value_table="customer", value_column="c_acctbal",
    )
    text = format_figure("Fig 11: Value in Time (selective filter)", measurements)
    return ExperimentResult("fig11", text, measurements)


# ---------------------------------------------------------------------------
# Fig 13: batch size sensitivity
# ---------------------------------------------------------------------------


def fig13_batch_size(service, h=0.0005, m=0.0005, batch_sizes=(1, 10, 100), names="ABCD") -> ExperimentResult:
    """Combine scenarios into transactions of growing size (§4.2, §5.5.4)
    and observe the key-range query cost afterwards."""
    workload = generate_workload(h=h, m=m)
    query = WORKLOAD.query("K1.both")
    series: Dict[str, List[tuple]] = {}
    load_series: Dict[str, List[tuple]] = {}
    for batch in batch_sizes:
        systems = prepare_systems(workload, names, batch_size=batch)
        for name, system in systems.items():
            apply_index_setting(system, IndexSetting.KEY_TIME)
            cell = service.measure_query(system, query, workload.meta, setting=f"batch={batch}")
            series.setdefault(name, []).append((batch, cell.median))
    text = format_series(
        "Fig 13: Key-Range query for Variable Batch Size", "batch", series
    )
    return ExperimentResult("fig13", text, series=series)


# ---------------------------------------------------------------------------
# Fig 14: range-timeslice
# ---------------------------------------------------------------------------


def fig14_range_timeslice(systems, workload, service) -> ExperimentResult:
    qids = ["R1", "R2", "R3a", "R3b", "R4", "R5", "R7", "T5.all"]
    measurements = _measure_queries(service, systems, qids, workload.meta)
    text = format_figure("Fig 14: Range Timeslice (small scale)", measurements)
    return ExperimentResult("fig14", text, measurements)


# ---------------------------------------------------------------------------
# Fig 15: bitemporal dimensions
# ---------------------------------------------------------------------------


def fig15_bitemporal(systems, workload, service) -> ExperimentResult:
    qids = ["B3"] + [f"B3.{i}" for i in range(1, 12)]
    measurements = _with_and_without_indexes(systems, workload, service, qids)
    text = format_figure("Fig 15: Bitemporal dimensions", measurements)
    return ExperimentResult("fig15", text, measurements)


# ---------------------------------------------------------------------------
# Fig 16 / §5.8: loading and updates
# ---------------------------------------------------------------------------


def fig16_loading(workload, names="ABCD", include_bulk_d=True) -> ExperimentResult:
    cells: Dict[str, Dict[str, float]] = {}
    totals: Dict[str, float] = {}
    for name in names:
        system = make_system(name)
        report = Loader(system, workload).load(collect_latencies=True)
        cells[name] = {
            "median": report.median_latency(),
            "p97": report.p97_latency(),
        }
        totals[name] = report.seconds
    if include_bulk_d:
        # §5.8: D's alternative to transaction replay — manual timestamps
        # and a bulk load; measured twice, best-of, to keep the cell stable
        seconds = []
        for _attempt in range(2):
            system = make_system("D")
            report = Loader(system, workload).bulk_load()
            seconds.append(report.seconds)
        totals["D(bulk)"] = min(seconds)
        cells["D(bulk)"] = {
            "median": totals["D(bulk)"] / max(1, len(workload.transactions)),
            "p97": totals["D(bulk)"] / max(1, len(workload.transactions)),
        }
    text = format_latency_table(
        "Fig 16: Loading Time per Scenario (median / 97th percentile)", cells
    )
    text += "\ntotal load seconds: " + ", ".join(
        f"{k}={v:.2f}s" for k, v in totals.items()
    )
    return ExperimentResult("fig16", text, extra={"cells": cells, "totals": totals})
