"""Paper-style rendering of experiment results.

The figures in the paper are grouped bar charts on a log axis; the closest
terminal-friendly equivalent is a table of medians plus a log-scaled ASCII
bar per cell.  ``format_figure`` renders a list of measurements grouped by
query and system; ``format_ratio_table`` renders the Fig 7 slowdown-ratio
layout with geometric means.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from .service import Measurement


def geometric_mean(values: Sequence[float]) -> float:
    cleaned = [v for v in values if v > 0 and not math.isinf(v)]
    if not cleaned:
        return float("nan")
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))


def _log_bar(value_ms: float, max_width: int = 30, floor_ms: float = 0.01) -> str:
    """Bar length proportional to log10(time), like the paper's log axes."""
    if math.isinf(value_ms):
        return "#" * max_width
    span = math.log10(max(value_ms, floor_ms) / floor_ms)
    width = int(round(span * 6))  # 6 chars per decade
    return "*" * max(1, min(max_width, width))


def format_figure(
    title: str,
    measurements: Iterable[Measurement],
    group_by: str = "qid",
) -> str:
    """Render measurements as a grouped, log-bar annotated table."""
    rows = list(measurements)
    lines = [title, "=" * len(title)]
    groups: Dict[str, List[Measurement]] = {}
    for m in rows:
        key = getattr(m, group_by)
        groups.setdefault(key, []).append(m)
    for key, cells in groups.items():
        lines.append(f"\n{key}")
        for m in cells:
            if m.timed_out:
                value = f">{m.timeout_s:.0f}s TIMEOUT"
                bar = "#" * 30
            else:
                value = f"{m.median * 1000:10.2f} ms"
                bar = _log_bar(m.median * 1000)
            label = f"{m.system} [{m.setting}]"
            lines.append(f"  {label:<28} {value:>16}  {bar}")
    return "\n".join(lines)


def format_series(title: str, xlabel: str, series: Dict[str, List[tuple]]) -> str:
    """Render scaling experiments: one line per (x, y_ms) point per system."""
    lines = [title, "=" * len(title), f"{xlabel:>14} " + "".join(f"{name:>14}" for name in series)]
    xs = sorted({x for points in series.values() for x, _y in points})
    for x in xs:
        row = f"{x:>14}"
        for name, points in series.items():
            lookup = {px: py for px, py in points}
            value = lookup.get(x)
            row += f"{value * 1000:>12.2f}ms" if value is not None else f"{'-':>14}"
        lines.append(row)
    return "\n".join(lines)


def format_ratio_table(
    title: str,
    ratios: Dict[str, Dict[int, float]],
    timeout_queries: Optional[Dict[str, List[int]]] = None,
) -> str:
    """The Fig 7 layout: per-system slowdown ratio per TPC-H query, plus
    the geometric mean (timeouts excluded, as in §5.4.2)."""
    systems = list(ratios)
    numbers = {n for per_system in ratios.values() for n in per_system}
    for timed_out in (timeout_queries or {}).values():
        numbers.update(timed_out)
    numbers = sorted(numbers)
    lines = [title, "=" * len(title)]
    header = f"{'Q':>4}" + "".join(f"{name:>10}" for name in systems)
    lines.append(header)
    timeout_queries = timeout_queries or {}
    for n in numbers:
        row = f"{n:>4}"
        for name in systems:
            if n in timeout_queries.get(name, ()):
                row += f"{'timeout':>10}"
                continue
            value = ratios[name].get(n)
            row += f"{value:>10.2f}" if value is not None else f"{'-':>10}"
        lines.append(row)
    lines.append("-" * len(header))
    row = f"{'gm':>4}"
    for name in systems:
        excluded = set()
        for other in timeout_queries.values():
            excluded.update(other)
        values = [v for n, v in ratios[name].items() if n not in excluded]
        row += f"{geometric_mean(values):>10.2f}"
    lines.append(row)
    return "\n".join(lines)


def format_lint_summary(
    title: str, measurements: Iterable[Measurement]
) -> str:
    """Per-rule tally of analyzer findings across a figure run.

    Renders how many measured queries tripped each diagnostic code and on
    which systems — the workload-variant hazards (§5) made visible next to
    the timings they explain.  Returns an empty string when no measurement
    carries diagnostics, so callers can append unconditionally.
    """
    by_code: Dict[str, Dict[str, object]] = {}
    for m in measurements:
        for diagnostic in getattr(m, "diagnostics", ()) or ():
            entry = by_code.setdefault(
                diagnostic.code,
                {"severity": diagnostic.severity, "qids": set(), "systems": set()},
            )
            entry["qids"].add(m.qid)
            entry["systems"].add(m.system)
    if not by_code:
        return ""
    lines = [title, "=" * len(title)]
    lines.append(f"{'code':<7} {'severity':<9} {'queries':>8}  systems")
    for code in sorted(by_code):
        entry = by_code[code]
        systems = ",".join(sorted(entry["systems"]))
        lines.append(
            f"{code:<7} {entry['severity']:<9} {len(entry['qids']):>8}  {systems}"
        )
    return "\n".join(lines)


def format_cache_stats(title: str, stats: Dict[str, Dict[str, int]]) -> str:
    """Plan-cache counters per system (the ROADMAP's hit-rate visibility).

    *stats* maps system name to ``SqlEngine.cache_stats()`` output.
    """
    lines = [title, "=" * len(title)]
    header = (
        f"{'system':>8}{'size':>8}{'hits':>8}{'misses':>8}"
        f"{'invalid':>9}{'hit rate':>10}"
    )
    lines.append(header)
    for name, per in stats.items():
        lookups = per.get("hits", 0) + per.get("misses", 0)
        rate = per.get("hits", 0) / lookups if lookups else 0.0
        lines.append(
            f"{name:>8}{per.get('size', 0):>8}{per.get('hits', 0):>8}"
            f"{per.get('misses', 0):>8}{per.get('invalidations', 0):>9}"
            f"{rate:>9.1%}"
        )
    return "\n".join(lines)


def format_metrics(
    title: str, per_system: Dict[str, Dict[str, int]], nonzero_only: bool = True
) -> str:
    """Engine metric counters per system, one row per counter name.

    *per_system* maps system name to a ``{counter: value}`` dict (e.g. the
    ``counters`` half of ``TemporalSystem.metrics()``).
    """
    names = sorted({n for per in per_system.values() for n in per})
    if nonzero_only:
        names = [n for n in names if any(per.get(n) for per in per_system.values())]
    lines = [title, "=" * len(title)]
    width = max((len(n) for n in names), default=8) + 2
    header = f"{'metric':<{width}}" + "".join(
        f"{s:>12}" for s in per_system
    )
    lines.append(header)
    if not names:
        lines.append("(all counters zero)")
    for name in names:
        row = f"{name:<{width}}"
        for per in per_system.values():
            row += f"{per.get(name, 0):>12}"
        lines.append(row)
    return "\n".join(lines)


def _abbrev_bytes(value) -> str:
    if not value:
        return "0B"
    size = float(value)
    for unit in ("B", "KB", "MB", "GB"):
        if size < 1024.0 or unit == "GB":
            return f"{int(size)}B" if unit == "B" else f"{size:.1f}{unit}"
        size /= 1024.0
    return f"{int(value)}B"


def format_statements(title: str, rows, query_width: int = 48) -> str:
    """pg_stat_statements-style table over telemetry snapshot rows.

    *rows* is ``StatementStatsStore.snapshot()`` output (list of dicts with
    the ``STATEMENT_FIELDS`` keys), already sorted by the caller's chosen
    key.  Columns: calls, mean/p95 time, rows, plan-cache hit ratio, peak
    working set, and the normalized (truncated) query text.
    """
    lines = [title, "=" * len(title)]
    header = (
        f"{'fingerprint':<13}{'calls':>7}{'mean':>10}{'p95':>10}"
        f"{'rows':>9}{'hit%':>6}{'peak ws':>9}  query"
    )
    lines.append(header)
    if not rows:
        lines.append("(no statements tracked)")
        return "\n".join(lines)
    for row in rows:
        mean = row.get("time_mean_s")
        p95 = row.get("time_p95_s")
        ratio = row.get("cache_hit_ratio")
        query = row.get("query", "")
        if len(query) > query_width:
            query = query[: query_width - 1] + "…"
        lines.append(
            f"{row.get('fingerprint', '?'):<13}"
            f"{row.get('calls', 0):>7}"
            f"{'-' if mean is None else f'{mean * 1000:.2f}ms':>10}"
            f"{'-' if p95 is None else f'{p95 * 1000:.2f}ms':>10}"
            f"{row.get('rows', 0):>9}"
            f"{'-' if ratio is None else f'{ratio:.0%}':>6}"
            f"{_abbrev_bytes(row.get('peak_ws_bytes')):>9}"
            f"  {query}"
        )
    return "\n".join(lines)


def format_delta_table(diff, only_changed: bool = False) -> str:
    """Per-cell delta table for an :class:`repro.bench.compare.ArtifactDiff`.

    Duck-typed on the diff object (cells with median/p95/status, system
    geometric means, analyzer drift) so this module does not import the
    comparator.  ``only_changed`` drops unchanged cells — useful inline
    after a bench run where the full matrix would drown the signal.
    """
    title = f"Bench delta: {diff.base_label} -> {diff.new_label}"
    lines = [title, "=" * len(title)]
    cells = [c for c in diff.cells if not only_changed or c.status != "unchanged"]
    if not cells:
        lines.append(
            "(all cells unchanged)" if diff.cells else "(no cells to compare)"
        )
    else:
        width = max(len(c.key) for c in cells) + 2
        lines.append(
            f"{'cell':<{width}}{'base':>12}{'new':>12}{'ratio':>8}  status"
        )
        marks = {"regressed": "!", "improved": "+", "added": ">", "removed": "<"}
        for cell in cells:
            base = "timeout" if cell.base_timed_out else (
                "-" if cell.base_median_s is None else f"{cell.base_median_s * 1000:.3f}ms"
            )
            new = "timeout" if cell.new_timed_out else (
                "-" if cell.new_median_s is None else f"{cell.new_median_s * 1000:.3f}ms"
            )
            ratio = "-" if cell.ratio is None else f"{cell.ratio:.2f}x"
            mark = marks.get(cell.status, " ")
            lines.append(
                f"{cell.key:<{width}}{base:>12}{new:>12}{ratio:>8}  "
                f"{mark} {cell.status}"
            )
    for system, gm in diff.system_gm.items():
        value = "-" if math.isnan(gm) else f"{gm:.3f}x"
        lines.append(f"system {system}: geometric-mean ratio {value}")
    for cell in diff.metric_regressions:
        for name, before, after in cell.metric_regressions:
            lines.append(f"metric {cell.key}: {name} {before} -> {after}")
    for code, (before, after) in diff.analyzer_drift.items():
        lines.append(f"analyzer {code}: {before} -> {after} findings")
    lines.append(diff.summary())
    return "\n".join(lines)


def format_latency_table(title: str, cells: Dict[str, Dict[str, float]]) -> str:
    """Median / 97th-percentile table (Fig 16 layout). *cells* maps system
    name to {"median": s, "p97": s, ...}."""
    lines = [title, "=" * len(title)]
    metrics = sorted({m for per in cells.values() for m in per})
    header = f"{'system':>8}" + "".join(f"{m:>14}" for m in metrics)
    lines.append(header)
    for name, per in cells.items():
        row = f"{name:>8}"
        for metric in metrics:
            value = per.get(metric)
            row += f"{value * 1000:>12.3f}ms" if value is not None else f"{'-':>14}"
        lines.append(row)
    return "\n".join(lines)
