"""Measurement service (paper §5.1 methodology).

*"If not noted otherwise, we repeated each measurement ten times and
discarded the first three measurements."*  The service does the same
(configurable), adapts the repetition count when measurements fluctuate,
and supports the paper's timeout handling for very long-running queries.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..engine.errors import QueryCancelled, QueryTimeout
from ..engine.obs import MetricsRegistry


@dataclass
class Measurement:
    """Timing result of one (system, query, setting) cell."""

    qid: str
    system: str
    setting: str = "no index"
    times: List[float] = field(default_factory=list)  # kept (post-discard) runs
    discarded: List[float] = field(default_factory=list)
    rows: int = 0
    timed_out: bool = False
    timeout_s: Optional[float] = None
    #: static-analyzer findings for the measured SQL (repro.engine.analyze),
    #: recorded outside the timed region; empty for non-SQL callables
    diagnostics: List[object] = field(default_factory=list)
    #: engine metric-counter delta for this cell (nonzero counters only);
    #: captured by measure_sql when the target exposes a MetricsRegistry
    metrics: Dict[str, int] = field(default_factory=dict)
    #: per-fingerprint statement statistics for this cell (telemetry store
    #: delta); captured by measure_sql when the target's store is enabled
    statements: List[Dict] = field(default_factory=list)

    @property
    def median(self) -> float:
        return statistics.median(self.times) if self.times else float("inf")

    @property
    def mean(self) -> float:
        return statistics.fmean(self.times) if self.times else float("inf")

    @property
    def best(self) -> float:
        return min(self.times) if self.times else float("inf")

    def percentile(self, pct: float) -> float:
        if not self.times:
            raise ValueError(
                f"percentile({pct}) of {self.qid}/{self.system} "
                f"[{self.setting}]: no recorded samples"
            )
        ordered = sorted(self.times)
        rank = (pct / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def label(self) -> str:
        base = f"{self.qid}/{self.system} [{self.setting}]"
        if self.timed_out:
            return f"{base}: TIMEOUT (> {self.timeout_s}s)"
        return f"{base}: {self.median * 1000:.2f} ms median"


def _metrics_registry(system) -> Optional[MetricsRegistry]:
    """The engine metric registry behind *system* (TemporalSystem or bare
    Database), or None for targets without one."""
    owner = getattr(system, "db", system)
    registry = getattr(owner, "metrics", None)
    return registry if isinstance(registry, MetricsRegistry) else None


def _telemetry_store(system):
    """The enabled statement-statistics store behind *system*, or None."""
    owner = getattr(system, "db", system)
    store = getattr(owner, "telemetry", None)
    return store if store is not None and getattr(store, "enabled", False) else None


class BenchmarkService:
    """Runs queries with repetition, discards and fluctuation adaptation."""

    def __init__(
        self,
        repetitions: int = 5,
        discard: int = 1,
        timeout_s: Optional[float] = None,
        max_repetitions: int = 12,
        fluctuation_threshold: float = 0.5,
    ):
        if discard >= repetitions:
            raise ValueError("discard must be smaller than repetitions")
        self.repetitions = repetitions
        self.discard = discard
        self.timeout_s = timeout_s
        self.max_repetitions = max_repetitions
        #: re-measure when stdev/median exceeds this (paper: *"if the
        #: measurements showed a large amount of fluctuation, we increased
        #: the number of repetitions"*)
        self.fluctuation_threshold = fluctuation_threshold

    # -- core ------------------------------------------------------------

    def measure_callable(
        self, fn: Callable[[], object], qid="?", system="?", setting="no index"
    ) -> Measurement:
        result = Measurement(
            qid=qid, system=system, setting=setting, timeout_s=self.timeout_s
        )
        runs = self.repetitions
        performed = 0
        while True:
            for _ in range(runs - performed):
                started = time.perf_counter()
                try:
                    out = fn()
                except (QueryTimeout, QueryCancelled):
                    # the engine aborted the query cooperatively mid-run:
                    # record the cutoff instant and stop measuring this cell
                    elapsed = time.perf_counter() - started
                    result.times.append(elapsed)
                    result.timed_out = True
                    return result
                elapsed = time.perf_counter() - started
                performed += 1
                bucket = (
                    result.discarded
                    if len(result.discarded) < self.discard
                    else result.times
                )
                bucket.append(elapsed)
                try:
                    result.rows = len(out)  # Result objects and lists
                except TypeError:
                    pass
                if self.timeout_s is not None and elapsed > self.timeout_s:
                    # very long runs: keep what we have (paper: fewer
                    # repetitions for multi-hour measurements)
                    if not result.times:
                        result.times.append(elapsed)
                    result.timed_out = elapsed > self.timeout_s
                    return result
            if (
                len(result.times) >= 2
                and performed < self.max_repetitions
                and statistics.pstdev(result.times) / max(result.median, 1e-9)
                > self.fluctuation_threshold
            ):
                runs = min(self.max_repetitions, runs + 3)
                continue
            return result

    def measure_sql(self, system, sql: str, params=None, qid="?", setting="no index") -> Measurement:
        """Measure one SQL statement on one system archetype.

        The service's timeout is passed down to the engine, which enforces it
        cooperatively inside the executor: a timed-out query stops consuming
        CPU at the deadline instead of running to completion first.
        """
        name = getattr(system, "name", getattr(system, "db", None) and system.db.name or "?")
        registry = _metrics_registry(system)
        if registry is not None:
            # per-cell metric deltas: each measurement carries exactly the
            # counters its own repetitions (incl. warm-up) produced
            registry.reset()
        store = _telemetry_store(system)
        if store is not None:
            store.reset()
        measurement = self.measure_callable(
            lambda: system.execute(sql, params, timeout_s=self.timeout_s),
            qid=qid,
            system=name,
            setting=setting,
        )
        if registry is not None:
            measurement.metrics = registry.counters(nonzero=True)
        lint = getattr(system, "lint", None)
        if lint is not None:
            try:
                measurement.diagnostics = list(lint(sql))
            except Exception:
                # lint is advisory: analyzer failures never fail a benchmark
                measurement.diagnostics = []
        if store is not None:
            store.note_diagnostics(sql, len(measurement.diagnostics))
            measurement.statements = store.snapshot()
        return measurement

    def measure_query(self, system, query, meta, setting="no index") -> Measurement:
        """Measure a BenchmarkQuery with parameters bound from *meta*."""
        params = query.params(meta)
        measurement = self.measure_sql(
            system, query.sql, params, qid=query.qid, setting=setting
        )
        return measurement


def run_matrix(
    service: BenchmarkService,
    systems: Dict[str, object],
    queries,
    meta,
    setting: str = "no index",
) -> List[Measurement]:
    """Measure every query on every system (one experiment cell grid)."""
    out = []
    for query in queries:
        for name, system in systems.items():
            out.append(service.measure_query(system, query, meta, setting=setting))
    return out
