"""Trend store: fold a directory of bench artifacts into a time series.

CI uploads one ``BENCH_<experiment>.json`` per run; this module folds all
artifacts in a directory into a single ``TREND.json`` (schema
``repro-trend/v1``) holding per-cell median series with sparkline data,
plus a markdown trajectory report — the accumulating artifacts become a
readable perf trajectory instead of a pile of numbers.

Schema ``repro-trend/v1``::

    {
      "schema": "repro-trend/v1",
      "points": [{"source": "BENCH_fig02.json", "created_unix": ...}, ...],
      "cells": {
        "fig02|T1.app|A|no index": {
          "medians_s": [..., null, ...],   # one slot per point, null = absent
          "spark": "▁▃▇",                  # absent points render as space
          "first_s": ..., "last_s": ..., "best_s": ..., "worst_s": ...,
          "ratio": last/first              # null when either end is missing
        }, ...
      },
      "systems": {"A": {"last_gm_ratio": ...}, ...}   # last vs first point
    }
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional

from .artifact import ArtifactError, find_artifacts, load_artifact
from .compare import artifact_cells, diff_artifacts

TREND_SCHEMA = "repro-trend/v1"

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: List[Optional[float]]) -> str:
    """Unicode sparkline; ``None`` slots render as spaces.

    Levels are scaled on a log axis (like the paper's figures) so the
    order-of-magnitude cliffs the benchmark cares about stay visible next
    to small cells.
    """
    finite = [v for v in values if v is not None and v > 0]
    if not finite:
        return " " * len(values)
    low = math.log(min(finite))
    high = math.log(max(finite))
    span = high - low
    out = []
    for value in values:
        if value is None or value <= 0:
            out.append(" ")
            continue
        if span <= 0:
            out.append(_SPARK_LEVELS[0])
            continue
        level = (math.log(value) - low) / span
        out.append(_SPARK_LEVELS[min(len(_SPARK_LEVELS) - 1, int(level * len(_SPARK_LEVELS)))])
    return "".join(out)


def _finite(value) -> Optional[float]:
    if isinstance(value, (int, float)) and math.isfinite(value):
        return float(value)
    return None


def fold_artifacts(paths: List) -> Dict:
    """Fold loadable artifact files (chronological order) into a trend."""
    points = []
    series: Dict[str, List[Optional[float]]] = {}
    loaded = []
    for path in paths:
        artifact = load_artifact(path)
        loaded.append(artifact)
        points.append({
            "source": Path(path).name,
            "created_unix": (artifact.get("generator") or {}).get("created_unix"),
        })
    if not loaded:
        raise ArtifactError("no repro-bench/v1 artifacts to fold")
    for index, artifact in enumerate(loaded):
        for key, record in artifact_cells(artifact).items():
            slots = series.setdefault(key, [None] * len(loaded))
            median = _finite(record.get("median_s"))
            slots[index] = None if record.get("timed_out") else median
    cells = {}
    for key in sorted(series):
        values = series[key]
        finite = [v for v in values if v is not None]
        first = next((v for v in values if v is not None), None)
        last = next((v for v in reversed(values) if v is not None), None)
        cells[key] = {
            "medians_s": values,
            "spark": sparkline(values),
            "first_s": first,
            "last_s": last,
            "best_s": min(finite) if finite else None,
            "worst_s": max(finite) if finite else None,
            "ratio": (last / first) if (first and last is not None and first > 0) else None,
        }
    systems: Dict[str, Dict] = {}
    if len(loaded) >= 2:
        end_to_end = diff_artifacts(loaded[0], loaded[-1])
        for system, gm in end_to_end.system_gm.items():
            systems[system] = {"last_gm_ratio": None if math.isnan(gm) else gm}
    return {
        "schema": TREND_SCHEMA,
        "points": points,
        "cells": cells,
        "systems": systems,
    }


def fold_directory(directory) -> Dict:
    """Fold every artifact in *directory* (see :func:`find_artifacts`)."""
    paths = find_artifacts(directory)
    if not paths:
        raise ArtifactError(f"no repro-bench/v1 artifacts in {directory}")
    return fold_artifacts(paths)


def write_trend(trend: Dict, path) -> Path:
    target = Path(path)
    if target.is_dir():
        target = target / "TREND.json"
    target.write_text(json.dumps(trend, indent=2, sort_keys=True) + "\n")
    return target


# ---------------------------------------------------------------------------
# reports
# ---------------------------------------------------------------------------


def _experiment_of(key: str) -> str:
    return key.split("|", 1)[0]


def markdown_report(trend: Dict) -> str:
    """The trajectory report as markdown (``TREND.md``)."""
    points = trend["points"]
    lines = [
        "# Perf trajectory",
        "",
        f"{len(points)} runs folded "
        f"(`{points[0]['source']}` → `{points[-1]['source']}`).",
        "",
    ]
    for system, entry in sorted((trend.get("systems") or {}).items()):
        gm = entry.get("last_gm_ratio")
        if gm is not None:
            lines.append(f"- system {system}: last/first geometric-mean ratio {gm:.3f}×")
    if trend.get("systems"):
        lines.append("")
    by_experiment: Dict[str, List[str]] = {}
    for key in trend["cells"]:
        by_experiment.setdefault(_experiment_of(key), []).append(key)
    for experiment in sorted(by_experiment):
        lines += [
            f"## {experiment}",
            "",
            "| cell | runs | first | last | ratio | trend |",
            "|---|---:|---:|---:|---:|---|",
        ]
        for key in by_experiment[experiment]:
            cell = trend["cells"][key]
            runs = sum(1 for v in cell["medians_s"] if v is not None)
            first = "—" if cell["first_s"] is None else f"{cell['first_s'] * 1000:.3f} ms"
            last = "—" if cell["last_s"] is None else f"{cell['last_s'] * 1000:.3f} ms"
            ratio = "—" if cell["ratio"] is None else f"{cell['ratio']:.2f}×"
            label = key.split("|", 1)[1]
            lines.append(
                f"| `{label}` | {runs} | {first} | {last} | {ratio} "
                f"| `{cell['spark']}` |"
            )
        lines.append("")
    return "\n".join(lines)


def format_trend_summary(trend: Dict, limit: int = 0) -> str:
    """Terminal summary: one sparkline row per cell."""
    points = trend["points"]
    title = f"Perf trajectory ({len(points)} runs)"
    lines = [title, "=" * len(title)]
    keys = sorted(trend["cells"])
    if limit:
        keys = keys[:limit]
    width = max((len(k) for k in keys), default=10) + 2
    for key in keys:
        cell = trend["cells"][key]
        last = "      —" if cell["last_s"] is None else f"{cell['last_s'] * 1000:9.3f}ms"
        ratio = "    —" if cell["ratio"] is None else f"{cell['ratio']:4.2f}x"
        lines.append(f"{key:<{width}}{last} {ratio}  {cell['spark']}")
    for system, entry in sorted((trend.get("systems") or {}).items()):
        gm = entry.get("last_gm_ratio")
        if gm is not None:
            lines.append(f"system {system}: last/first gm ratio {gm:.3f}x")
    return "\n".join(lines)


__all__ = [
    "TREND_SCHEMA",
    "fold_artifacts",
    "fold_directory",
    "format_trend_summary",
    "markdown_report",
    "sparkline",
    "write_trend",
]
