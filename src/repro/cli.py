"""Command-line interface: ``python -m repro <command>``.

Commands mirror the benchmark pipeline of the paper's §4:

* ``generate`` — run the bitemporal data generator and write an archive;
* ``inspect``  — summarise an archive (header, Table 2 statistics);
* ``query``    — load a workload into one system and run SQL against it;
* ``bench``    — regenerate one experiment (table/figure) or all of them;
* ``verify``   — load a workload into a system and run the §4 temporal
  consistency checks;
* ``systems``  — print the §5.2 architecture cards;
* ``lint``     — static temporal-query diagnostics without executing;
* ``cache-stats`` — plan-cache hit rates after repeated workload passes;
* ``trace``    — run one statement and print its lifecycle span tree;
* ``metrics``  — engine metric counters after workload passes;
* ``bench-diff`` — compare two or more bench artifacts cell by cell
  (``--gate`` exits nonzero on regression, the CI perf gate);
* ``trend``    — fold a directory of artifacts into ``TREND.json`` plus a
  markdown trajectory report;
* ``flamegraph`` — folded stacks / SVG flamegraph / per-operator table
  from tracer spans (live run or a recorded JSONL file).

* ``stat-statements`` — pg_stat_statements-style per-fingerprint workload
  statistics after driving the benchmark queries;
* ``top`` — one-shot workload summary (hottest statements, key counters).
* ``health`` — markdown temporal-health report assembled by querying the
  ``repro_stat_*`` system views across archetypes (``--json`` writes a
  ``repro-health/v1`` artifact).

``bench --json PATH`` additionally writes a machine-readable
``BENCH_<experiment>.json`` artifact (schema ``repro-bench/v2``, see
:mod:`repro.bench.artifact`) so the repo accumulates a perf trajectory;
``bench --compare-to BASELINE.json`` prints the delta table against a
prior artifact inline after the run.  ``metrics --format openmetrics``
emits the registry plus top-K statement stats as a Prometheus-scrapable
text exposition.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .bench import experiments as x
from .bench.report import format_cache_stats, format_lint_summary, format_metrics
from .bench.service import BenchmarkService
from .core.archive import ArchiveReader, write_archive
from .core.consistency import check_system
from .core.generator import BitemporalDataGenerator, GeneratorConfig
from .core.loader import Loader
from .core.stats import format_operations_table
from .systems import make_system

EXPERIMENTS = {
    "table1": lambda ctx: x.table1_scenario_mix(ctx["workload"]),
    "table2": lambda ctx: x.table2_operations(ctx["workload"]),
    "fig02": lambda ctx: x.fig02_basic_time_travel(ctx["systems"], ctx["workload"], ctx["service"]),
    "fig03": lambda ctx: x.fig03_index_impact(ctx["systems"], ctx["workload"], ctx["service"]),
    "fig04": lambda ctx: x.fig04_history_scaling(ctx["service"]),
    "fig05": lambda ctx: x.fig05_temporal_slicing(ctx["systems"], ctx["workload"], ctx["service"]),
    "fig06": lambda ctx: x.fig06_implicit_explicit(ctx["systems"], ctx["workload"], ctx["service"]),
    "fig07a": lambda ctx: x.fig07_tpch(ctx["systems"], ctx["workload"], ctx["service"], mode="app"),
    "fig07b": lambda ctx: x.fig07_tpch(ctx["systems"], ctx["workload"], ctx["service"], mode="sys"),
    "fig08": lambda ctx: x.fig08_key_in_time(ctx["systems"], ctx["workload"], ctx["service"]),
    "fig09": lambda ctx: x.fig09_time_restriction(ctx["systems"], ctx["workload"], ctx["service"]),
    "fig10": lambda ctx: x.fig10_version_restriction(ctx["systems"], ctx["workload"], ctx["service"]),
    "fig11": lambda ctx: x.fig11_value_in_time(ctx["systems"], ctx["workload"], ctx["service"]),
    "fig12": lambda ctx: x.fig12_keyrange_history_scaling(ctx["service"]),
    "fig13": lambda ctx: x.fig13_batch_size(ctx["service"]),
    "fig14": lambda ctx: x.fig14_range_timeslice(ctx["systems"], ctx["workload"], ctx["service"]),
    "fig15": lambda ctx: x.fig15_bitemporal(ctx["systems"], ctx["workload"], ctx["service"]),
    "fig16": lambda ctx: x.fig16_loading(ctx["workload"]),
    "joins": lambda ctx: x.join_ordering(ctx["systems"], ctx["workload"], ctx["service"]),
    "temporal-ops": lambda ctx: x.temporal_ops(ctx["systems"], ctx["workload"], ctx["service"]),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TPC-BiH bitemporal benchmark (EDBT 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a workload archive")
    generate.add_argument("--h", type=float, default=0.001)
    generate.add_argument("--m", type=float, default=0.0003)
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--out", default="tpcbih_archive.jsonl")

    inspect = sub.add_parser("inspect", help="summarise an archive")
    inspect.add_argument("archive")

    query = sub.add_parser("query", help="load a workload and run SQL")
    query.add_argument("--system", default="A", help="archetype A..E")
    query.add_argument("--h", type=float, default=0.001)
    query.add_argument("--m", type=float, default=0.0003)
    query.add_argument("--explain", action="store_true")
    query.add_argument(
        "--analyze",
        action="store_true",
        help="run the query and print per-operator row counts and timings",
    )
    query.add_argument("sql", help="SQL statement to execute")

    bench = sub.add_parser("bench", help="run one experiment (or 'all')")
    bench.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    bench.add_argument("--h", type=float, default=0.001)
    bench.add_argument("--m", type=float, default=0.0003)
    bench.add_argument("--out", default=None, help="also write report file(s) here")
    bench.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write a machine-readable artifact (schema repro-bench/v2); "
        "a directory gets BENCH_<experiment>.json",
    )
    bench.add_argument(
        "--compare-to", dest="compare_to", default=None, metavar="BASELINE",
        help="print the delta table against this repro-bench artifact "
        "after the run (v1 and v2 both load)",
    )
    bench.add_argument(
        "--threshold", type=float, default=1.15,
        help="regression ratio for --compare-to classification "
        "(default %(default)s)",
    )
    bench.add_argument(
        "--no-stats", dest="no_stats", action="store_true",
        help="skip the post-load ANALYZE so multi-join cells run the "
        "statistics-free greedy join order (cost-model A/B baseline)",
    )
    bench.add_argument(
        "--slowlog-threshold", dest="slowlog_threshold", type=float,
        default=None, metavar="SECONDS",
        help="enable the slow-query log on every system at this threshold "
        "(falls back to $REPRO_SLOWLOG_THRESHOLD when unset)",
    )
    bench.add_argument(
        "--slowlog-path", dest="slowlog_path", default=None, metavar="PATH",
        help="also append slow-query entries as JSONL here "
        "(falls back to $REPRO_SLOWLOG_PATH)",
    )
    bench.add_argument(
        "--no-telemetry", dest="no_telemetry", action="store_true",
        help="skip the per-cell statement-statistics capture "
        "(artifacts then carry empty 'statements' lists)",
    )

    verify = sub.add_parser("verify", help="run temporal consistency checks")
    verify.add_argument("--system", default="A", help="archetype A..E")
    verify.add_argument("--h", type=float, default=0.001)
    verify.add_argument("--m", type=float, default=0.0003)
    verify.add_argument("--bulk", action="store_true",
                        help="use the bulk-load path (System D only)")

    sub.add_parser("systems", help="print the architecture cards")

    lint = sub.add_parser(
        "lint", help="static temporal-query diagnostics (no execution)"
    )
    lint.add_argument("--system", default="A", help="archetype A..E")
    lint.add_argument(
        "--format", dest="format", choices=("text", "json", "sarif"),
        default="text",
        help="output format: human text, JSON, or SARIF 2.1.0",
    )
    lint.add_argument(
        "--fail-on", dest="fail_on", choices=("warning", "error"),
        default="error",
        help="minimum severity that makes the exit code nonzero",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file of known findings (never fail on these)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    lint.add_argument(
        "--workload",
        action="store_true",
        help="lint every benchmark query (T/H/K/R/B) instead of one statement",
    )
    lint.add_argument("sql", nargs="?", default=None,
                      help="SELECT statement to analyze")

    cache = sub.add_parser(
        "cache-stats", help="plan-cache hit rates after workload passes"
    )
    cache.add_argument("--system", default="A", help="archetype A..E")
    cache.add_argument("--h", type=float, default=0.001)
    cache.add_argument("--m", type=float, default=0.0003)
    cache.add_argument(
        "--runs", type=int, default=2,
        help="workload passes to drive (>1 exercises cache hits)",
    )

    astats = sub.add_parser(
        "analyze-stats",
        help="run ANALYZE over a loaded workload and print the statistics",
    )
    astats.add_argument("--system", default="A", help="archetype A..E")
    astats.add_argument("--h", type=float, default=0.001)
    astats.add_argument("--m", type=float, default=0.0003)
    astats.add_argument(
        "--table", default=None, help="restrict to one table (default: all)"
    )
    astats.add_argument(
        "--columns", action="store_true",
        help="also print per-column NDV / min / max / null fraction",
    )

    trace = sub.add_parser(
        "trace", help="run one statement and print its lifecycle span tree"
    )
    trace.add_argument("--system", default="A", help="archetype A..E")
    trace.add_argument("--h", type=float, default=0.001)
    trace.add_argument("--m", type=float, default=0.0003)
    trace.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also append every finished span to this JSONL file",
    )
    trace.add_argument("sql", help="SQL statement to trace")

    metrics = sub.add_parser(
        "metrics", help="engine metric counters after workload passes"
    )
    metrics.add_argument("--system", default="A", help="archetype A..E")
    metrics.add_argument("--h", type=float, default=0.001)
    metrics.add_argument("--m", type=float, default=0.0003)
    metrics.add_argument(
        "--runs", type=int, default=1, help="workload passes to drive"
    )
    metrics.add_argument(
        "--format", dest="format", choices=("text", "json", "openmetrics"),
        default="text",
        help="output format: human text, JSON snapshot, or an "
        "OpenMetrics/Prometheus exposition",
    )
    metrics.add_argument(
        "--top", type=int, default=10,
        help="statement-stats entries in the openmetrics exposition "
        "(default %(default)s)",
    )

    stat = sub.add_parser(
        "stat-statements",
        help="pg_stat_statements-style per-fingerprint workload statistics",
    )
    stat.add_argument("--system", default="A", help="archetype A..E")
    stat.add_argument("--h", type=float, default=0.001)
    stat.add_argument("--m", type=float, default=0.0003)
    stat.add_argument(
        "--runs", type=int, default=1, help="workload passes to drive"
    )
    stat.add_argument(
        "--top", type=int, default=None,
        help="only the N most expensive statements (default: all)",
    )
    stat.add_argument(
        "--sort", choices=("time", "calls", "rows"), default="time",
        help="ranking key (default %(default)s)",
    )
    stat.add_argument(
        "--json", dest="as_json", action="store_true",
        help="emit the statement rows as JSON instead of a table",
    )

    top = sub.add_parser(
        "top",
        help="one-shot workload summary: hottest statements + key counters",
    )
    top.add_argument("--system", default="A", help="archetype A..E")
    top.add_argument("--h", type=float, default=0.001)
    top.add_argument("--m", type=float, default=0.0003)
    top.add_argument(
        "--runs", type=int, default=1, help="workload passes to drive"
    )
    top.add_argument(
        "--top", dest="top_n", type=int, default=5,
        help="statements to show (default %(default)s)",
    )

    health = sub.add_parser(
        "health",
        help="temporal-health report from the repro_stat_* system views",
    )
    health.add_argument(
        "--systems", default="ABCDE", help="archetypes to drive (default %(default)s)"
    )
    health.add_argument("--h", type=float, default=0.001)
    health.add_argument("--m", type=float, default=0.0003)
    health.add_argument(
        "--runs", type=int, default=1, help="workload passes to drive"
    )
    health.add_argument(
        "--top", dest="top_n", type=int, default=5,
        help="hottest partitions to show per archetype (default %(default)s)",
    )
    health.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="also write the report as a repro-health/v1 JSON artifact",
    )

    diff = sub.add_parser(
        "bench-diff",
        help="compare bench artifacts cell by cell (perf trajectory gate)",
    )
    diff.add_argument("base", help="baseline repro-bench/v1 artifact")
    diff.add_argument("others", nargs="+", metavar="new",
                      help="artifact(s) to compare against the baseline")
    diff.add_argument(
        "--threshold", type=float, default=1.15,
        help="new/base median ratio at or above this regresses a cell "
        "(default %(default)s)",
    )
    diff.add_argument(
        "--min-delta-ms", type=float, default=0.5,
        help="ignore absolute median movements below this many milliseconds "
        "(default %(default)s)",
    )
    diff.add_argument(
        "--gate", action="store_true",
        help="exit nonzero when any cell regressed (CI perf gate)",
    )
    diff.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the delta report as markdown",
    )
    diff.add_argument(
        "--all-cells", action="store_true",
        help="print unchanged cells too (default shows changes only)",
    )

    trend = sub.add_parser(
        "trend", help="fold a directory of bench artifacts into TREND.json"
    )
    trend.add_argument("directory", help="directory holding BENCH_*.json files")
    trend.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="where to write the trend store (default DIR/TREND.json)",
    )
    trend.add_argument(
        "--md", dest="md_path", default=None, metavar="PATH",
        help="where to write the markdown trajectory report "
        "(default DIR/TREND.md)",
    )

    flame = sub.add_parser(
        "flamegraph",
        help="folded stacks / SVG flamegraph from tracer span trees",
    )
    flame.add_argument("--system", default="A", help="archetype A..E")
    flame.add_argument("--h", type=float, default=0.001)
    flame.add_argument("--m", type=float, default=0.0003)
    flame.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="read spans from this JSONL file (tracer or slow-query-log "
        "output) instead of executing anything",
    )
    flame.add_argument(
        "--svg", default=None, metavar="PATH",
        help="render the flamegraph SVG here",
    )
    flame.add_argument(
        "--folded", default=None, metavar="PATH",
        help="write folded-stack lines here (flamegraph.pl input)",
    )
    flame.add_argument(
        "sql", nargs="?", default=None,
        help="statement to profile (default: one full T/H/K/R/B "
        "workload pass)",
    )
    return parser


def _cmd_generate(args) -> int:
    kwargs = {"h": args.h, "m": args.m}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    workload = BitemporalDataGenerator(GeneratorConfig(**kwargs)).generate()
    lines = write_archive(workload, args.out)
    print(f"wrote {args.out}: {lines} lines, "
          f"{len(workload.transactions)} transactions")
    print(format_operations_table(workload))
    return 0


def _cmd_inspect(args) -> int:
    reader = ArchiveReader(args.archive)
    header = reader.header
    print(f"archive {args.archive}")
    for key in ("h", "m", "seed", "scenario_count"):
        print(f"  {key}: {header.get(key)}")
    rows = sum(1 for _ in reader.initial_rows())
    ops = sum(len(t) for t in reader.transactions())
    print(f"  initial rows: {rows}")
    print(f"  history operations: {ops}")
    return 0


def _cmd_query(args) -> int:
    workload = BitemporalDataGenerator(
        GeneratorConfig(h=args.h, m=args.m)
    ).generate()
    system = make_system(args.system)
    Loader(system, workload).load()
    if args.analyze:
        print(system.db.explain_analyze(args.sql))
        return 0
    if args.explain:
        print(system.db.explain(args.sql))
        return 0
    result = system.execute(args.sql)
    if result.columns:
        print(" | ".join(result.columns))
    for row in result.rows:
        print(" | ".join(str(v) for v in row))
    print(f"({len(result.rows)} rows; system time now = {system.now()})")
    return 0


def _slowlog_config(args):
    """(threshold_s, path) for the bench slow-query log: CLI flags first,
    $REPRO_SLOWLOG_THRESHOLD / $REPRO_SLOWLOG_PATH as the fallback."""
    import os

    threshold = getattr(args, "slowlog_threshold", None)
    if threshold is None:
        raw = os.environ.get("REPRO_SLOWLOG_THRESHOLD")
        if raw:
            try:
                threshold = float(raw)
            except ValueError:
                print(
                    f"bench: ignoring non-numeric "
                    f"REPRO_SLOWLOG_THRESHOLD={raw!r}",
                    file=sys.stderr,
                )
    path = getattr(args, "slowlog_path", None) or os.environ.get(
        "REPRO_SLOWLOG_PATH"
    )
    return threshold, path


def _cmd_bench(args) -> int:
    service = BenchmarkService(repetitions=3, discard=1)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    context = {"service": service}
    needs_data = any(name not in ("fig04", "fig12", "fig13") for name in names)
    if needs_data:
        context["workload"] = x.generate_workload(h=args.h, m=args.m)
        context["systems"] = x.prepare_systems(
            context["workload"], "ABCD",
            analyze=not getattr(args, "no_stats", False),
        )
        slowlog_threshold, slowlog_path = _slowlog_config(args)
        for system in context["systems"].values():
            if not getattr(args, "no_telemetry", False):
                system.enable_telemetry()
            if slowlog_threshold is not None:
                system.set_slow_query_log(slowlog_threshold, path=slowlog_path)
    measurements = []
    results = []
    for name in names:
        result = EXPERIMENTS[name](context)
        print(result.text)
        print()
        results.append(result)
        measurements.extend(result.measurements)
        if args.out:
            out = Path(args.out)
            out.mkdir(exist_ok=True)
            (out / f"{result.name}.txt").write_text(result.text + "\n")
    summary = format_lint_summary("Analyzer findings", measurements)
    if summary:
        print(summary)
        print()
    if "systems" in context:
        stats = {
            name: system.cache_stats()
            for name, system in context["systems"].items()
        }
        print(format_cache_stats("Plan cache", stats))
    artifact = None
    if args.json_path or args.compare_to:
        from .bench.artifact import build_artifact, write_artifact

        artifact = build_artifact(
            results,
            systems=context.get("systems"),
            config={
                "experiments": names,
                "h": args.h,
                "m": args.m,
                "repetitions": service.repetitions,
                "discard": service.discard,
            },
        )
        artifact["generator"]["created_unix"] = time.time()
    if args.json_path:
        path = write_artifact(
            args.json_path, artifact, experiment="_".join(names)
        )
        print(f"wrote artifact {path}")
    if args.compare_to:
        from .bench.artifact import ArtifactError, load_artifact
        from .bench.compare import ThresholdPolicy, diff_artifacts
        from .bench.report import format_delta_table

        try:
            baseline = load_artifact(args.compare_to)
        except ArtifactError as exc:
            print(f"bench: {exc}", file=sys.stderr)
            return 2
        diff = diff_artifacts(
            baseline,
            artifact,
            policy=ThresholdPolicy(regress_ratio=args.threshold),
            base_label=Path(args.compare_to).name,
            new_label="this run",
        )
        print()
        print(format_delta_table(diff))
    return 0


def _cmd_verify(args) -> int:
    workload = BitemporalDataGenerator(
        GeneratorConfig(h=args.h, m=args.m)
    ).generate()
    system = make_system(args.system)
    loader = Loader(system, workload)
    if args.bulk:
        loader.bulk_load()
    else:
        loader.load()
    report = check_system(system, workload)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_systems(_args) -> int:
    for name in ("A", "B", "C", "D", "E"):
        print(make_system(name).describe())
        print()
    return 0


def _cmd_lint(args) -> int:
    import json

    from .core.queries import Workload
    from .core.queries.tpch import as_benchmark_queries
    from .core.schema import create_benchmark_tables
    from .engine.analyze import SEVERITIES

    system = make_system(args.system)
    # the analyzer only needs the catalog, not data: schema-only setup
    create_benchmark_tables(system.db, temporal=True)
    if args.workload:
        targets = [(query.qid, query.sql) for query in Workload()]
        for mode in ("plain", "app", "sys"):
            targets.extend(
                (query.qid, query.sql) for query in as_benchmark_queries(mode)
            )
    elif args.sql:
        targets = [("query", args.sql)]
    else:
        print("lint: give a SQL statement or --workload", file=sys.stderr)
        return 2

    findings = []  # (target id, Diagnostic)
    for qid, sql in targets:
        for diagnostic in system.lint(sql):
            findings.append((qid, diagnostic))

    baseline = set()
    if args.baseline and Path(args.baseline).exists():
        baseline = {
            (entry["system"], entry["target"], entry["code"])
            for entry in json.loads(Path(args.baseline).read_text())
        }
    if args.update_baseline:
        if not args.baseline:
            print("lint: --update-baseline needs --baseline PATH", file=sys.stderr)
            return 2
        entries = sorted(
            {(args.system, qid, d.code) for qid, d in findings}
        )
        Path(args.baseline).write_text(
            json.dumps(
                [
                    {"system": s, "target": t, "code": c}
                    for s, t, c in entries
                ],
                indent=2,
            )
            + "\n"
        )
        print(f"lint: wrote {len(entries)} baseline entries to {args.baseline}")
        return 0

    threshold = SEVERITIES.index(args.fail_on)
    fresh = [
        (qid, d)
        for qid, d in findings
        if SEVERITIES.index(d.severity) >= threshold
        and (args.system, qid, d.code) not in baseline
    ]

    if args.format == "json":
        print(json.dumps(_lint_json(args.system, findings, baseline), indent=2))
    elif args.format == "sarif":
        print(json.dumps(_lint_sarif(args.system, findings), indent=2))
    else:
        for qid, diagnostic in findings:
            first, *rest = diagnostic.render().split("\n")
            print(f"{qid}: {first}")
            for line in rest:
                print(line)
        print(
            f"({len(targets)} statements, {len(findings)} diagnostics, "
            f"{len(fresh)} at/above --fail-on {args.fail_on} and not in "
            f"baseline, system {args.system})"
        )
    return 1 if fresh else 0


def _lint_json(system_name, findings, baseline):
    """Machine-readable lint output (list of finding objects)."""
    return [
        {
            "system": system_name,
            "target": qid,
            "code": d.code,
            "severity": d.severity,
            "message": d.message,
            "hint": d.hint,
            "plan_path": d.plan_path,
            "line": d.line,
            "column": d.column,
            "fragment": d.fragment,
            "baselined": (system_name, qid, d.code) in baseline,
        }
        for qid, d in findings
    ]


#: SARIF severity levels for the analyzer's severities
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _lint_sarif(system_name, findings):
    """Findings as a SARIF 2.1.0 document (the CI artifact format)."""
    from .engine.analyze import RULES

    results = []
    for qid, d in findings:
        region = {}
        if d.line is not None:
            region = {"startLine": d.line, "startColumn": d.column or 1}
        results.append(
            {
                "ruleId": d.code,
                "level": _SARIF_LEVELS[d.severity],
                "message": {"text": f"{qid}: {d.message}"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f"workload/{system_name}/{qid}"
                            },
                            **({"region": region} if region else {}),
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproLint/v1": f"{system_name}:{qid}:{d.code}"
                },
            }
        )
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [
                            {
                                "id": rule.code,
                                "name": rule.name,
                                "shortDescription": {"text": rule.summary},
                                "help": {"text": rule.hint},
                                "defaultConfiguration": {
                                    "level": _SARIF_LEVELS[rule.severity]
                                },
                            }
                            for rule in RULES.values()
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def _cmd_cache_stats(args) -> int:
    from .core.loader import Loader
    from .core.queries import Workload

    workload = BitemporalDataGenerator(
        GeneratorConfig(h=args.h, m=args.m)
    ).generate()
    system = make_system(args.system)
    Loader(system, workload).load()
    queries = list(Workload())
    for _ in range(max(1, args.runs)):
        for query in queries:
            system.execute(query.sql, query.params(workload.meta))
    print(
        format_cache_stats(
            f"Plan cache after {max(1, args.runs)}x{len(queries)} queries",
            {args.system: system.cache_stats()},
        )
    )
    return 0


def _cmd_analyze_stats(args) -> int:
    workload = BitemporalDataGenerator(
        GeneratorConfig(h=args.h, m=args.m)
    ).generate()
    system = make_system(args.system)
    Loader(system, workload).load()
    snapshots = system.analyze(args.table)
    for snapshot in snapshots:
        print(f"table {snapshot.table} ({snapshot.row_count} rows)")
        for name in sorted(snapshot.partitions):
            part = snapshot.partitions[name]
            print(
                f"  partition {name}: {part.row_count} rows, "
                f"{len(part.columns)} columns"
            )
            if not args.columns:
                continue
            for column in sorted(part.columns):
                col = part.columns[column]
                print(
                    f"    {column}: ndv={col.ndv} min={col.min_value!r} "
                    f"max={col.max_value!r} nulls={col.null_fraction:.3f} "
                    f"hist={len(col.histogram)} buckets"
                )
    counters = system.metrics()["counters"]
    tallied = {k: v for k, v in counters.items() if k.startswith("stats.")}
    print("stats counters:", tallied)
    return 0


def _cmd_trace(args) -> int:
    from .engine.obs import JsonlSink, RingBufferSink, render_span_tree

    workload = BitemporalDataGenerator(
        GeneratorConfig(h=args.h, m=args.m)
    ).generate()
    system = make_system(args.system)
    Loader(system, workload).load()
    ring = RingBufferSink()
    tracer = system.tracer
    tracer.add_sink(ring)
    jsonl = None
    if args.jsonl:
        jsonl = JsonlSink(args.jsonl)
        tracer.add_sink(jsonl)
    try:
        started = time.perf_counter()
        result = system.execute(args.sql)
        measured = time.perf_counter() - started
    finally:
        tracer.remove_sink(ring)
        if jsonl is not None:
            tracer.remove_sink(jsonl)
            jsonl.close()
    roots = ring.roots()
    if not roots:
        print("no spans recorded", file=sys.stderr)
        return 1
    root = roots[-1]
    print(render_span_tree(root))
    phase_total = sum(
        child.duration for child in root.children
        if child.duration is not None
    )
    print(
        f"({len(result.rows)} rows; phases {phase_total * 1000:.3f} ms of "
        f"{root.duration * 1000:.3f} ms traced, "
        f"{measured * 1000:.3f} ms measured)"
    )
    if args.jsonl:
        print(f"wrote spans to {args.jsonl}")
    return 0


def _drive_workload(args, telemetry: bool = True):
    """Load a tiny workload into one system, run the benchmark queries
    ``args.runs`` times, and return ``(system, runs, query_count)``.

    Shared by the ``metrics``, ``stat-statements`` and ``top`` commands so
    they all observe the same A–E workload shape.
    """
    from .core.queries import Workload

    from .engine.database import DEFAULT_AUTO_ANALYZE_THRESHOLD

    workload = BitemporalDataGenerator(
        GeneratorConfig(h=args.h, m=args.m)
    ).generate()
    system = make_system(args.system)
    Loader(system, workload).load()
    # long-lived CLI database: arm the default auto-ANALYZE threshold after
    # the bulk load so later DML churn re-freshens statistics automatically
    system.db.auto_analyze_threshold = DEFAULT_AUTO_ANALYZE_THRESHOLD
    if telemetry:
        system.enable_telemetry()
    system.reset_metrics()
    runs = max(1, args.runs)
    queries = list(Workload())
    for _ in range(runs):
        for query in queries:
            system.execute(query.sql, query.params(workload.meta))
    return system, runs, len(queries)


def _cmd_metrics(args) -> int:
    import json

    system, runs, query_count = _drive_workload(args)
    if args.format == "openmetrics":
        sys.stdout.write(system.openmetrics(top=args.top))
        return 0
    snapshot = system.metrics()
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(
        format_metrics(
            f"Engine metrics after {runs}x{query_count} queries "
            f"(system {args.system})",
            {args.system: snapshot["counters"]},
        )
    )
    print()
    for name, summary in snapshot["histograms"].items():
        if not summary["count"]:
            continue
        print(
            f"{name}: count={summary['count']} "
            f"mean={summary['mean'] * 1000:.3f}ms "
            f"p95={summary['p95'] * 1000:.3f}ms "
            f"max={summary['max'] * 1000:.3f}ms"
        )
        previous = 0
        for bucket in summary["buckets"]:
            count = bucket["count"]
            if count == previous:
                continue  # only buckets that gained samples
            le = bucket["le"]
            label = "+Inf" if le == "+Inf" else f"{float(le) * 1000:g}ms"
            print(f"  le={label:>8}  {count}")
            previous = count
    return 0


def _cmd_stat_statements(args) -> int:
    import json

    from .bench.report import format_statements

    system, runs, query_count = _drive_workload(args)
    rows = system.stat_statements(top=args.top, sort=args.sort)
    if args.as_json:
        print(json.dumps(rows, indent=2))
        return 0
    print(
        format_statements(
            f"Statement statistics after {runs}x{query_count} queries "
            f"(system {args.system}, sorted by {args.sort})",
            rows,
        )
    )
    store = system.db.telemetry
    print(
        f"({len(store)} fingerprints tracked, {store.evicted} evicted, "
        f"capacity {store.capacity})"
    )
    return 0


def _cmd_top(args) -> int:
    from .bench.report import format_statements

    system, runs, query_count = _drive_workload(args)
    snapshot = system.telemetry_snapshot(top=args.top_n, sort="time")
    counters = snapshot["counters"]
    hist = snapshot["histograms"].get("query.execute_s", {})
    executed = hist.get("count", 0)
    mean = hist.get("mean")
    p95 = hist.get("p95")
    cache_lookups = counters.get("plan.cache_hit", 0) + counters.get(
        "plan.cache_miss", 0
    )
    hit_rate = (
        counters.get("plan.cache_hit", 0) / cache_lookups if cache_lookups else 0.0
    )
    print(f"workload summary (system {args.system}, {runs}x{query_count} queries)")
    print(
        f"  executed: {executed} statements, "
        f"mean {0.0 if mean is None else mean * 1000:.2f}ms, "
        f"p95 {0.0 if p95 is None else p95 * 1000:.2f}ms"
    )
    print(
        f"  plan cache: {hit_rate:.0%} hit rate over {cache_lookups} lookups; "
        f"statements tracked: {snapshot['statements_tracked']}"
    )
    print(
        f"  rows scanned: current="
        f"{counters.get('storage.current_rows_scanned', 0)} "
        f"history={counters.get('storage.history_rows_scanned', 0)}"
    )
    print()
    print(
        format_statements(
            f"Top {args.top_n} statements by total time", snapshot["statements"]
        )
    )
    return 0


def _system_health(system, top_n: int):
    """One archetype's health facts, queried through its own system views
    (the introspection subsystem eating its own dog food)."""
    def rows(sql):
        return system.execute(sql).rows

    hottest = [
        {
            "table": table, "partition": partition,
            "scans": scans, "rows_read": rows_read,
        }
        for table, partition, scans, rows_read in rows(
            "SELECT table_name, partition, scans, rows_read "
            "FROM repro_stat_tables ORDER BY rows_read DESC "
            f"LIMIT {top_n}"
        )
    ]
    split = {"current": 0, "history": 0, "single": 0}
    for partition, scans in rows(
        "SELECT partition, scans FROM repro_stat_tables"
    ):
        split[partition] = split.get(partition, 0) + scans
    current = split["current"] + split["single"]
    total = current + split["history"]
    outliers = [
        {
            "table": table, "partition": partition,
            "chain_depth": depth, "chains": chains,
        }
        for table, partition, depth, chains in rows(
            "SELECT table_name, partition, chain_depth, chains "
            "FROM repro_stat_history ORDER BY chain_depth DESC LIMIT 3"
        )
    ]
    stale = [
        table for (table,) in rows(
            "SELECT table_name FROM repro_stat_tables "
            "WHERE stats_stale = 1 GROUP BY table_name"
        )
    ]
    auto_runs = next(
        iter(rows(
            "SELECT value FROM repro_stat_metrics "
            "WHERE name = 'stats.auto_analyze_runs'"
        )),
        (0,),
    )[0]
    return {
        "hottest_partitions": hottest,
        "scan_split": {
            "current": current,
            "history": split["history"],
            "history_share": (split["history"] / total) if total else None,
        },
        "chain_depth_outliers": outliers,
        "stale_stats_tables": stale,
        "auto_analyze_runs": auto_runs,
    }


def _cmd_health(args) -> int:
    import argparse
    import json

    names = [n for n in args.systems.upper() if not n.isspace()]
    report = {"schema": "repro-health/v1", "config": {
        "h": args.h, "m": args.m, "runs": args.runs, "systems": "".join(names),
    }, "systems": {}}
    lines = ["# Temporal health report", ""]
    for name in names:
        forwarded = argparse.Namespace(**{**vars(args), "system": name})
        system, runs, query_count = _drive_workload(forwarded)
        health = _system_health(system, args.top_n)
        report["systems"][name] = health
        split = health["scan_split"]
        share = split["history_share"]
        lines.append(f"## System {name} ({runs}x{query_count} queries)")
        lines.append("")
        lines.append(
            f"- partition scans: {split['current']} current/single, "
            f"{split['history']} history"
            + (f" ({share:.0%} history)" if share is not None else "")
        )
        if health["hottest_partitions"]:
            lines.append("- hottest partitions (by rows read):")
            for hot in health["hottest_partitions"]:
                lines.append(
                    f"    - {hot['table']}.{hot['partition']}: "
                    f"{hot['rows_read']} rows over {hot['scans']} scans"
                )
        if health["chain_depth_outliers"]:
            deepest = health["chain_depth_outliers"][0]
            lines.append(
                f"- deepest version chains: {deepest['chain_depth']} versions "
                f"({deepest['chains']} keys in "
                f"{deepest['table']}.{deepest['partition']})"
            )
        if health["stale_stats_tables"]:
            lines.append(
                "- WARNING stale statistics: "
                + ", ".join(health["stale_stats_tables"])
            )
        else:
            lines.append("- statistics fresh on every analyzed table")
        lines.append(
            f"- auto-ANALYZE runs this session: {health['auto_analyze_runs']}"
        )
        lines.append("")
    print("\n".join(lines).rstrip())
    if args.json_path:
        Path(args.json_path).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"\nwrote artifact {args.json_path}")
    return 0


def _cmd_bench_diff(args) -> int:
    from .bench.artifact import ArtifactError, load_artifact
    from .bench.compare import ThresholdPolicy, diff_artifacts, markdown_report
    from .bench.report import format_delta_table

    policy = ThresholdPolicy(
        regress_ratio=args.threshold, min_delta_s=args.min_delta_ms / 1000.0
    )
    try:
        base = load_artifact(args.base)
    except ArtifactError as exc:
        print(f"bench-diff: {exc}", file=sys.stderr)
        return 2
    base_label = Path(args.base).name
    regressed = False
    reports = []
    for other in args.others:
        try:
            new = load_artifact(other)
        except ArtifactError as exc:
            print(f"bench-diff: {exc}", file=sys.stderr)
            return 2
        diff = diff_artifacts(
            base, new, policy=policy,
            base_label=base_label, new_label=Path(other).name,
        )
        print(format_delta_table(diff, only_changed=not args.all_cells))
        print()
        reports.append(markdown_report(diff))
        regressed = regressed or bool(diff.regressions)
    if args.report:
        Path(args.report).write_text("\n".join(reports))
        print(f"wrote report {args.report}")
    if args.gate and regressed:
        print("bench-diff: GATE FAILED (regressed cells above)", file=sys.stderr)
        return 1
    return 0


def _cmd_trend(args) -> int:
    from .bench.artifact import ArtifactError
    from .bench import trend as trend_mod

    try:
        trend = trend_mod.fold_directory(args.directory)
    except ArtifactError as exc:
        print(f"trend: {exc}", file=sys.stderr)
        return 2
    directory = Path(args.directory)
    json_path = trend_mod.write_trend(trend, args.json_path or directory)
    md_path = Path(args.md_path) if args.md_path else directory / "TREND.md"
    md_path.write_text(trend_mod.markdown_report(trend))
    print(trend_mod.format_trend_summary(trend))
    print(f"wrote {json_path} and {md_path}")
    return 0


def _cmd_flamegraph(args) -> int:
    from .engine.obs import (
        RingBufferSink,
        format_folded,
        format_operator_table,
        load_jsonl,
        operator_table,
        render_flamegraph_svg,
    )
    from .engine.obs.profile import normalize

    if args.jsonl:
        roots = load_jsonl(args.jsonl)
        source = args.jsonl
    else:
        workload = BitemporalDataGenerator(
            GeneratorConfig(h=args.h, m=args.m)
        ).generate()
        system = make_system(args.system)
        Loader(system, workload).load()
        ring = RingBufferSink(capacity=65536)
        system.tracer.add_sink(ring)
        try:
            if args.sql:
                system.execute(args.sql)
                source = args.sql
            else:
                from .core.queries import Workload

                for query in Workload():
                    system.execute(query.sql, query.params(workload.meta))
                source = f"T/H/K/R/B workload on system {args.system}"
        finally:
            system.tracer.remove_sink(ring)
        roots = normalize(ring.roots())
    if not roots:
        print("flamegraph: no spans recorded", file=sys.stderr)
        return 1
    if args.folded:
        Path(args.folded).write_text(format_folded(roots) + "\n")
        print(f"wrote folded stacks to {args.folded}")
    if args.svg:
        svg = render_flamegraph_svg(roots, title=f"repro flamegraph: {source}")
        Path(args.svg).write_text(svg)
        print(f"wrote flamegraph to {args.svg}")
    if not args.folded and not args.svg:
        print(format_folded(roots))
        print()
    print(format_operator_table(operator_table(roots)))
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "inspect": _cmd_inspect,
        "query": _cmd_query,
        "bench": _cmd_bench,
        "verify": _cmd_verify,
        "systems": _cmd_systems,
        "lint": _cmd_lint,
        "cache-stats": _cmd_cache_stats,
        "analyze-stats": _cmd_analyze_stats,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "stat-statements": _cmd_stat_statements,
        "top": _cmd_top,
        "health": _cmd_health,
        "bench-diff": _cmd_bench_diff,
        "trend": _cmd_trend,
        "flamegraph": _cmd_flamegraph,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
