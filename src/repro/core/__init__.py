"""TPC-BiH: the bitemporal benchmark (paper §3–4).

Sub-packages:

* :mod:`repro.core.schema` — the Fig 1 schema (TPC-H + temporal columns)
* :mod:`repro.core.dbgen` — seeded TPC-H-style initial population
* :mod:`repro.core.scenarios` — the nine update scenarios of Table 1
* :mod:`repro.core.generator` — the bitemporal data generator (§4.1)
* :mod:`repro.core.archive` — system-independent generator archive
* :mod:`repro.core.loader` — per-transaction replay / bulk load (§4.2)
* :mod:`repro.core.queries` — the five query classes (§3.3)
"""

from .generator import BitemporalDataGenerator, GeneratorConfig
from .loader import Loader, LoadReport
from .schema import create_benchmark_tables, benchmark_schemas

__all__ = [
    "BitemporalDataGenerator",
    "GeneratorConfig",
    "Loader",
    "LoadReport",
    "create_benchmark_tables",
    "benchmark_schemas",
]
