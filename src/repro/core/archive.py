"""The generator archive: a system-independent serialisation (§4.1/§4.2).

The paper's generator *"computes the data set using a temporary in-memory
data structure and the result is serialized in a generator archive"*; the
archive is then *"parsed and the database systems are populated"*.  We use
JSON-lines: one header, then one line per initial row, then one line per
transaction.  Tuples inside operations survive a round trip (JSON turns
them into lists; :func:`read_archive` restores them).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List

from .dbgen import InitialData
from .generator import GeneratedWorkload

FORMAT_VERSION = 1


def write_archive(workload: GeneratedWorkload, path) -> int:
    """Serialise *workload*'s replayable part; returns the line count."""
    path = Path(path)
    lines = 0
    with path.open("w", encoding="utf-8") as fh:
        header = {
            "kind": "header",
            "format": FORMAT_VERSION,
            "h": workload.config.h,
            "m": workload.config.m,
            "seed": workload.config.seed,
            "scenario_count": len(workload.transactions),
        }
        fh.write(json.dumps(header) + "\n")
        lines += 1
        for table, rows in workload.initial.tables.items():
            for values in rows:
                fh.write(json.dumps({"kind": "row", "table": table, "values": values}) + "\n")
                lines += 1
        for index, ops in enumerate(workload.transactions):
            record = {"kind": "txn", "seq": index, "ops": [_encode_op(op) for op in ops]}
            fh.write(json.dumps(record) + "\n")
            lines += 1
    return lines


def _encode_op(op: tuple) -> list:
    return [list(part) if isinstance(part, tuple) else part for part in op]


def _decode_op(parts: list) -> tuple:
    kind = parts[0]
    if kind in ("update", "delete", "seq_update", "seq_delete"):
        # element 2 is the key tuple
        parts = list(parts)
        parts[2] = tuple(parts[2])
    return tuple(parts)


class ArchiveReader:
    """Streaming reader over a generator archive."""

    def __init__(self, path):
        self.path = Path(path)
        self.header = None
        with self.path.open("r", encoding="utf-8") as fh:
            first = fh.readline()
        record = json.loads(first)
        if record.get("kind") != "header":
            raise ValueError(f"{path}: not a generator archive")
        if record.get("format") != FORMAT_VERSION:
            raise ValueError(f"{path}: unsupported archive format {record.get('format')}")
        self.header = record

    def initial_rows(self) -> Iterator[tuple]:
        """(table, values) of the version-0 rows in load order."""
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                record = json.loads(line)
                if record["kind"] == "row":
                    yield record["table"], record["values"]

    def transactions(self) -> Iterator[List[tuple]]:
        """Operation lists in system-time order (a stepwise linear scan of
        the archive sorted by system time, as §4.1 prescribes)."""
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                record = json.loads(line)
                if record["kind"] == "txn":
                    yield [_decode_op(op) for op in record["ops"]]

    def initial_data(self) -> InitialData:
        data = InitialData()
        for table, values in self.initial_rows():
            data[table].append(values)
        return data


def replay_archive(reader: ArchiveReader, db, batch_size: int = 1) -> int:
    """Populate *db* directly from an archive file (no generator needed).

    Returns the number of applied operations.  The schema must already
    exist (see :func:`repro.core.schema.create_benchmark_tables`).
    """
    from .loader import Loader  # late import: avoid a cycle

    applied = 0
    with db.begin():
        for table, values in reader.initial_rows():
            db.insert_row(table, values)
            applied += 1
    batch: List[List[tuple]] = []
    shim = Loader.__new__(Loader)  # reuse _apply without a workload

    def flush():
        nonlocal applied
        if not batch:
            return
        with db.begin():
            for ops in batch:
                for op in ops:
                    shim._apply(db, op)
                    applied += 1
        batch.clear()

    for ops in reader.transactions():
        batch.append(ops)
        if len(batch) >= batch_size:
            flush()
    flush()
    return applied
