"""Temporal consistency validation (paper §4).

The paper stresses that the generated data set must be *"consistent with
the TPC-H data for each time in system time history"* and calls temporal
consistency one of the non-trivial implementation aspects.  This module
checks a **loaded system** against those invariants:

* **P1 — well-formed periods**: every stored version has
  ``begin < end`` on both time dimensions;
* **P2 — no overlapping application periods** among the versions of one
  key that are visible at any single system time;
* **P3 — system-time continuity**: the versions of one key, ordered by
  ``sys_begin``, never overlap in system time per application slice;
* **P4 — snapshot conservation**: the row count AS OF the initial tick
  equals the version-0 data, and AS OF the final tick equals the
  generator's live count;
* **P5 — referential integrity at snapshots**: every order visible at a
  probed tick references a customer visible at that tick.

``check_system`` returns a :class:`ConsistencyReport`; the loader tests
and the CLI use it, and it doubles as a debugging aid for new archetypes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .schema import APP_PERIODS, VERSIONED_TABLES, benchmark_schemas


@dataclass
class Violation:
    rule: str
    table: str
    detail: str

    def __str__(self):
        return f"[{self.rule}] {self.table}: {self.detail}"


@dataclass
class ConsistencyReport:
    violations: List[Violation] = field(default_factory=list)
    checked_tables: int = 0
    checked_versions: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, rule, table, detail):
        self.violations.append(Violation(rule, table, detail))

    def summary(self) -> str:
        status = "CONSISTENT" if self.ok else f"{len(self.violations)} violation(s)"
        lines = [
            f"consistency: {status} "
            f"({self.checked_tables} tables, {self.checked_versions} versions)"
        ]
        lines.extend(f"  {v}" for v in self.violations[:20])
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)


def _versions_by_key(system, schema):
    table = system.db.table(schema.name)
    by_key: Dict[tuple, List[list]] = {}
    for _part, _rid, row in table.scan_versions():
        by_key.setdefault(schema.key_of(row), []).append(row)
    return by_key


def check_system(system, workload=None, probe_ticks=None) -> ConsistencyReport:
    """Validate invariants P1–P5 on a loaded system (see module docstring)."""
    report = ConsistencyReport()
    schemas = {s.name: s for s in benchmark_schemas()}

    for name in VERSIONED_TABLES:
        schema = schemas[name]
        if not system.db.catalog.has_table(name):
            continue
        report.checked_tables += 1
        sys_period = schema.system_period
        sb = schema.position(sys_period.begin_column)
        se = schema.position(sys_period.end_column)
        app_name = APP_PERIODS.get(name)
        app = schema.period(app_name) if app_name else None
        ab = schema.position(app.begin_column) if app else None
        ae = schema.position(app.end_column) if app else None

        by_key = _versions_by_key(system, schema)
        for key, rows in by_key.items():
            report.checked_versions += len(rows)
            for row in rows:
                # P1: well-formed periods
                if row[sb] is None or row[se] is None or row[sb] >= row[se]:
                    report.add("P1", name, f"key {key}: bad system period "
                                           f"[{row[sb]}, {row[se]})")
                if app is not None and (
                    row[ab] is None or row[ae] is None or row[ab] >= row[ae]
                ):
                    report.add("P1", name, f"key {key}: bad application period "
                                           f"[{row[ab]}, {row[ae]})")
            # P2: at every system boundary, app periods of visible versions
            # must not overlap
            if app is not None:
                boundaries = sorted({row[sb] for row in rows})
                for tick in boundaries:
                    visible = [
                        row for row in rows if row[sb] <= tick < row[se]
                    ]
                    spans = sorted((row[ab], row[ae]) for row in visible)
                    for (b1, e1), (b2, e2) in zip(spans, spans[1:]):
                        if e1 > b2:
                            report.add(
                                "P2", name,
                                f"key {key} @tick {tick}: app periods "
                                f"[{b1},{e1}) and [{b2},{e2}) overlap",
                            )
                            break
            else:
                # P3 (degenerate tables): system periods of one key are
                # totally ordered and non-overlapping
                spans = sorted((row[sb], row[se]) for row in rows)
                for (b1, e1), (b2, e2) in zip(spans, spans[1:]):
                    if e1 > b2:
                        report.add(
                            "P3", name,
                            f"key {key}: system periods [{b1},{e1}) and "
                            f"[{b2},{e2}) overlap",
                        )
                        break

    # P4: snapshot conservation against the generator's bookkeeping
    if workload is not None:
        meta = workload.meta
        for name in VERSIONED_TABLES:
            if not system.db.catalog.has_table(name):
                continue
            initial = system.execute(
                f"SELECT count(*) FROM {name} FOR SYSTEM_TIME AS OF ?",
                [meta.initial_tick],
            ).scalar()
            expected_initial = meta.initial_counts[name]
            if initial != expected_initial:
                report.add("P4", name,
                           f"AS OF initial: {initial} != {expected_initial}")
            final = system.execute(
                f"SELECT count(*) FROM {name} FOR SYSTEM_TIME AS OF ?",
                [meta.last_tick],
            ).scalar()
            expected_final = workload.version_counts(name)["live"]
            if final != expected_final:
                report.add("P4", name,
                           f"AS OF final: {final} != {expected_final}")

    # P5: referential integrity at probed snapshots
    if probe_ticks is None and workload is not None:
        probe_ticks = [workload.meta.initial_tick, workload.meta.mid_tick(),
                       workload.meta.last_tick]
    for tick in probe_ticks or []:
        orphans = system.execute(
            "SELECT count(*) FROM orders FOR SYSTEM_TIME AS OF :t o"
            " WHERE NOT EXISTS (SELECT 1 FROM customer"
            "   FOR SYSTEM_TIME AS OF :t c WHERE c.c_custkey = o.o_custkey)",
            {"t": tick},
        ).scalar()
        if orphans:
            report.add("P5", "orders",
                       f"@tick {tick}: {orphans} orders without a customer")
    return report
