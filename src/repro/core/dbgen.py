"""TPC-H-style initial population ("version 0" of the history, §4.1).

A faithful-in-shape, simplified-in-text reimplementation of ``dbgen``:
cardinalities, key structure, date ranges and the value formulas that the
TPC-H queries depend on (retail price, extended price, total price) follow
the specification; comment strings are low-entropy filler.

Application-time periods are **derived from existing time attributes**
exactly as §4.1 prescribes (*"the application time dimensions are derived
based on the existing time attributes such as shipdate or receiptdate"*).
"""

from __future__ import annotations

from typing import Dict, List

from ..engine.types import END_OF_TIME, date_to_day
from .rng import DEFAULT_SEED, Rng

# TPC-H date range: orders span 1992-01-01 .. 1998-08-02
START_DAY = 0                                    # 1992-01-01
END_DAY = date_to_day("1998-08-02")
ORDER_MAX_DAY = END_DAY - 151                    # room for ship/receipt dates

# cardinalities at scale factor 1.0
SUPPLIER_BASE = 10_000
PART_BASE = 200_000
CUSTOMER_BASE = 150_000
ORDERS_PER_CUSTOMER = 10
SUPPLIERS_PER_PART = 4

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
CONTAINERS = [
    f"{size} {kind}"
    for size in ("SM", "MED", "LG", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
]
TYPE_SYLLABLES = (
    ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"),
    ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"),
    ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER"),
)
PART_NAME_WORDS = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cream",
    "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral",
    "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey",
    "honeydew", "hot", "indian", "ivory", "khaki", "lace", "lavender",
)


def scaled(base: int, h: float) -> int:
    """Cardinality of a base-count table at scale factor *h* (min 1)."""
    return max(1, round(base * h))


def retail_price(partkey: int) -> float:
    """The TPC-H retail price formula."""
    return (90000 + (partkey // 10) % 20001 + 100 * (partkey % 1000)) / 100.0


def suppliers_per_part(supplier_count: int) -> int:
    """How many distinct suppliers a part can have (≤ 4, ≤ supplier count)."""
    return max(1, min(SUPPLIERS_PER_PART, supplier_count))


def supplier_for_part(partkey: int, offset: int, supplier_count: int) -> int:
    """The *offset*-th supplier of *partkey* (distinct per offset).

    The stride spreads a part's suppliers across the supplier key space
    like TPC-H's formula; consecutive offsets stay distinct modulo the
    supplier count for every count ≥ 1 (the naive ``S//4 + 1`` stride
    collides when there are fewer than four suppliers — a bug the
    consistency checker of :mod:`repro.core.consistency` caught).
    """
    per_part = suppliers_per_part(supplier_count)
    stride = max(1, supplier_count // per_part)
    return ((partkey + (offset % per_part) * stride) % supplier_count) + 1


class InitialData:
    """The generated version-0 data set, per table, as lists of dicts."""

    def __init__(self):
        self.tables: Dict[str, List[dict]] = {
            "region": [],
            "nation": [],
            "supplier": [],
            "part": [],
            "partsupp": [],
            "customer": [],
            "orders": [],
            "lineitem": [],
        }

    def __getitem__(self, name):
        return self.tables[name]

    def counts(self) -> Dict[str, int]:
        return {name: len(rows) for name, rows in self.tables.items()}


def generate_initial(h: float, seed: int = DEFAULT_SEED) -> InitialData:
    """Generate the version-0 data set at scale factor *h*.

    ``h = 1.0`` corresponds to the paper's 1 GB scale; the benchmark runs
    at much smaller h, with all cardinalities scaling linearly (§3.2).
    """
    rng = Rng(seed)
    data = InitialData()

    for regionkey, name in enumerate(REGIONS):
        data["region"].append(
            {"r_regionkey": regionkey, "r_name": name, "r_comment": rng.text()}
        )
    for nationkey, (name, regionkey) in enumerate(NATIONS):
        data["nation"].append(
            {
                "n_nationkey": nationkey,
                "n_name": name,
                "n_regionkey": regionkey,
                "n_comment": rng.text(),
            }
        )

    supplier_count = scaled(SUPPLIER_BASE, h)
    for suppkey in range(1, supplier_count + 1):
        data["supplier"].append(
            {
                "s_suppkey": suppkey,
                "s_name": f"Supplier#{suppkey:09d}",
                "s_address": rng.text(8, 16),
                "s_nationkey": rng.uniform_int(0, len(NATIONS) - 1),
                "s_phone": _phone(rng),
                "s_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                "s_comment": rng.text(),
            }
        )

    part_count = scaled(PART_BASE, h)
    for partkey in range(1, part_count + 1):
        data["part"].append(
            {
                "p_partkey": partkey,
                "p_name": " ".join(rng.sample(PART_NAME_WORDS, 3)),
                "p_mfgr": f"Manufacturer#{rng.uniform_int(1, 5)}",
                "p_brand": f"Brand#{rng.uniform_int(1, 5)}{rng.uniform_int(1, 5)}",
                "p_type": " ".join(rng.choice(s) for s in TYPE_SYLLABLES),
                "p_size": rng.uniform_int(1, 50),
                "p_container": rng.choice(CONTAINERS),
                "p_retailprice": retail_price(partkey),
                "p_comment": rng.text(4, 10),
                # available from the epoch until changed (Delay Availability
                # scenarios later shift this window)
                "p_avail_begin": START_DAY,
                "p_avail_end": END_OF_TIME,
            }
        )

    for partkey in range(1, part_count + 1):
        for offset in range(suppliers_per_part(supplier_count)):
            suppkey = supplier_for_part(partkey, offset, supplier_count)
            data["partsupp"].append(
                {
                    "ps_partkey": partkey,
                    "ps_suppkey": suppkey,
                    "ps_availqty": rng.uniform_int(1, 9999),
                    "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
                    "ps_comment": rng.text(6, 12),
                    "ps_valid_begin": START_DAY,
                    "ps_valid_end": END_OF_TIME,
                }
            )

    customer_count = scaled(CUSTOMER_BASE, h)
    for custkey in range(1, customer_count + 1):
        visible_begin = rng.uniform_int(START_DAY, START_DAY + 365)
        data["customer"].append(
            {
                "c_custkey": custkey,
                "c_name": f"Customer#{custkey:09d}",
                "c_address": rng.text(8, 16),
                "c_nationkey": rng.uniform_int(0, len(NATIONS) - 1),
                "c_phone": _phone(rng),
                "c_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                "c_mktsegment": rng.choice(SEGMENTS),
                "c_comment": rng.text(),
                "c_visible_begin": visible_begin,
                "c_visible_end": END_OF_TIME,
            }
        )

    order_count = scaled(CUSTOMER_BASE * ORDERS_PER_CUSTOMER, h)
    lineitem_rows = data["lineitem"]
    for orderkey in range(1, order_count + 1):
        custkey = rng.uniform_int(1, customer_count)
        orderdate = rng.uniform_int(START_DAY, ORDER_MAX_DAY)
        line_count = rng.uniform_int(1, 7)
        totalprice = 0.0
        latest_receipt = orderdate
        all_filled = True
        for linenumber in range(1, line_count + 1):
            partkey = rng.uniform_int(1, part_count)
            supp_offset = rng.uniform_int(0, SUPPLIERS_PER_PART - 1)
            suppkey = supplier_for_part(partkey, supp_offset, supplier_count)
            quantity = rng.uniform_int(1, 50)
            extendedprice = round(quantity * retail_price(partkey), 2)
            discount = rng.uniform_int(0, 10) / 100.0
            tax = rng.uniform_int(0, 8) / 100.0
            shipdate = orderdate + rng.uniform_int(1, 121)
            commitdate = orderdate + rng.uniform_int(30, 90)
            receiptdate = shipdate + rng.uniform_int(1, 30)
            latest_receipt = max(latest_receipt, receiptdate)
            shipped = shipdate <= END_DAY - 30
            if not shipped:
                all_filled = False
            lineitem_rows.append(
                {
                    "l_orderkey": orderkey,
                    "l_partkey": partkey,
                    "l_suppkey": suppkey,
                    "l_linenumber": linenumber,
                    "l_quantity": float(quantity),
                    "l_extendedprice": extendedprice,
                    "l_discount": discount,
                    "l_tax": tax,
                    "l_returnflag": rng.choice("RAN") if shipped else "N",
                    "l_linestatus": "F" if shipped else "O",
                    "l_shipdate": shipdate,
                    "l_commitdate": commitdate,
                    "l_receiptdate": receiptdate,
                    "l_shipinstruct": rng.choice(INSTRUCTIONS),
                    "l_shipmode": rng.choice(SHIPMODES),
                    "l_comment": rng.text(4, 10),
                    # active while the item is ordered but not yet received
                    "l_active_begin": orderdate,
                    "l_active_end": receiptdate,
                }
            )
            totalprice += extendedprice * (1 + tax) * (1 - discount)
        delivered = all_filled and latest_receipt <= END_DAY
        data["orders"].append(
            {
                "o_orderkey": orderkey,
                "o_custkey": custkey,
                "o_orderstatus": "F" if delivered else "O",
                "o_totalprice": round(totalprice, 2),
                "o_orderdate": orderdate,
                "o_orderpriority": rng.choice(PRIORITIES),
                "o_clerk": f"Clerk#{rng.uniform_int(1, max(1, scaled(1000, h))):09d}",
                "o_shippriority": 0,
                "o_comment": rng.text(6, 14),
                "o_active_begin": orderdate,
                "o_active_end": latest_receipt if delivered else END_OF_TIME,
                # invoice period: starts at delivery, open until payment
                "o_receivable_begin": latest_receipt if delivered else END_OF_TIME - 1,
                "o_receivable_end": latest_receipt + 30 if delivered else END_OF_TIME,
            }
        )
    return data


def _phone(rng: Rng) -> str:
    return "{}-{}-{}-{}".format(
        rng.uniform_int(10, 34),
        rng.uniform_int(100, 999),
        rng.uniform_int(100, 999),
        rng.uniform_int(1000, 9999),
    )
