"""The Bitemporal Data Generator (paper §4.1).

Two phases, exactly as the paper describes:

1. *"loading the output of TPC-H dbgen as version 0"* — the initial data
   set at scale factor ``h`` enters the in-memory store with system-time
   tick 1 (the loader later replays it as a single bulk transaction);
2. *"running the update scenarios to produce a history"* — ``m × 1e6``
   scenario executions (``m = 1.0`` is one million updates), each becoming
   one transaction with its own tick.

The generator's output (:class:`GeneratedWorkload`) is system-independent:
the same instance populates every system archetype.  It also retains the
final state, closed-version archive and operation statistics needed for
query parameter selection, the bulk-load path, and the Table 2 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..engine.types import END_OF_TIME
from .dbgen import END_DAY, InitialData, generate_initial
from .history import GeneratorStore
from .rng import DEFAULT_SEED, Rng
from .scenarios import ScenarioContext, pick_scenario

#: (table, key columns, application periods) — the generator-side schema
TABLE_SPECS = [
    ("region", ("r_regionkey",), None),
    ("nation", ("n_nationkey",), None),
    ("supplier", ("s_suppkey",), None),
    ("part", ("p_partkey",), {"availability_time": ("p_avail_begin", "p_avail_end")}),
    ("partsupp", ("ps_partkey", "ps_suppkey"),
     {"validity_time": ("ps_valid_begin", "ps_valid_end")}),
    ("customer", ("c_custkey",), {"visible_time": ("c_visible_begin", "c_visible_end")}),
    ("orders", ("o_orderkey",),
     {"active_time": ("o_active_begin", "o_active_end"),
      "receivable_time": ("o_receivable_begin", "o_receivable_end")}),
    ("lineitem", ("l_orderkey", "l_linenumber"),
     {"active_time": ("l_active_begin", "l_active_end")}),
]

#: the system-time tick of the version-0 bulk load
INITIAL_TICK = 1


@dataclass
class GeneratorConfig:
    """Scaling knobs (§3.2): ``h`` like TPC-H (1.0 ≈ 1 GB), ``m`` scales the
    history length (1.0 = one million update scenarios)."""

    h: float = 0.001
    m: float = 0.0001
    seed: int = DEFAULT_SEED
    #: how many scenarios happen per application-time day
    scenarios_per_day: int = 20
    #: keep only tuples valid at the end of generation (§4.1: useful for
    #: comparing against a non-temporal database)
    current_only: bool = False

    @property
    def scenario_count(self) -> int:
        return max(0, round(self.m * 1_000_000))


@dataclass
class WorkloadMetadata:
    """Everything the query-parameter binder needs (§4: the Benchmarking
    Service selects, e.g., "the system time interval for generator
    execution" from this)."""

    h: float
    m: float
    seed: int
    initial_tick: int
    first_scenario_tick: int
    last_tick: int
    first_history_day: int
    last_history_day: int
    initial_counts: Dict[str, int] = field(default_factory=dict)
    #: customer key with the most versions (K1 "selects the customer with
    #: most updates")
    hottest_customer: Optional[int] = None
    hottest_order: Optional[int] = None
    hottest_partsupp: Optional[Tuple[int, int]] = None
    max_orderkey: int = 0
    max_custkey: int = 0

    def mid_tick(self) -> int:
        return (self.initial_tick + self.last_tick) // 2

    def mid_day(self) -> int:
        return (self.first_history_day + self.last_history_day) // 2


class GeneratedWorkload:
    """The generator's complete output."""

    def __init__(self, config, initial, store, transactions, meta, scenario_log):
        self.config: GeneratorConfig = config
        self.initial: InitialData = initial
        self.store: GeneratorStore = store
        #: one list of operations per scenario transaction, system-time order
        self.transactions: List[List[tuple]] = transactions
        self.meta: WorkloadMetadata = meta
        #: (scenario_name, applied) per executed scenario
        self.scenario_log: List[Tuple[str, bool]] = scenario_log

    # -- version access ------------------------------------------------------

    def final_versions(self, table: str) -> List[dict]:
        """Rows visible at the end of the history (current snapshot)."""
        return [values for values, _tick in self.store.table(table).current_versions()]

    def all_versions(self, table: str) -> Iterator[Tuple[dict, int, int]]:
        """(values, sys_begin, sys_end) for every version ever created.

        This is the §5.8 bulk-load feed for System D, where timestamps can
        be set manually.
        """
        for values, begin, end in self.store.closed.get(table, ()):
            yield values, begin, end
        for values, begin in self.store.table(table).current_versions():
            yield values, begin, END_OF_TIME

    def version_counts(self, table: str) -> Dict[str, int]:
        live = self.store.table(table).live_version_count()
        closed = len(self.store.closed.get(table, ()))
        return {"live": live, "closed": closed, "total": live + closed}

    def table_stats(self):
        return {name: t.stats for name, t in self.store.tables.items()}


class BitemporalDataGenerator:
    """Phase 1 + 2 driver; see module docstring."""

    def __init__(self, config: Optional[GeneratorConfig] = None, **kwargs):
        if config is None:
            config = GeneratorConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a config object or keyword arguments")
        self.config = config

    def generate(self) -> GeneratedWorkload:
        config = self.config
        initial = generate_initial(config.h, seed=config.seed)
        store = GeneratorStore(TABLE_SPECS)

        # phase 1: version 0
        for name, _keys, _periods in TABLE_SPECS:
            table = store.table(name)
            for values in initial[name]:
                table.insert(values, INITIAL_TICK)
            table.initial_count = len(initial[name])
            # version-0 rows are the baseline, not history operations
            table.stats.app_time_inserts = 0
            table.stats.nontemporal_inserts = 0

        # phase 2: the history
        rng = Rng(config.seed + 1)
        ctx = ScenarioContext(
            store=store,
            rng=rng,
            day=END_DAY + 1,
            next_orderkey=len(initial["orders"]) + 1,
            next_custkey=len(initial["customer"]) + 1,
            part_count=max(1, len(initial["part"])),
            supplier_count=max(1, len(initial["supplier"])),
        )
        ctx.open_orders = [
            row["o_orderkey"] for row in initial["orders"] if row["o_orderstatus"] == "O"
        ]
        for row in initial["lineitem"]:
            ctx.order_lines.setdefault(row["l_orderkey"], []).append(
                row["l_linenumber"]
            )

        transactions: List[List[tuple]] = []
        scenario_log: List[Tuple[str, bool]] = []
        first_history_day = ctx.day
        for step in range(config.scenario_count):
            tick = INITIAL_TICK + 1 + step
            ctx.ops = []
            scenario = pick_scenario(rng)
            applied = scenario.run(ctx, tick)
            ctx.record(scenario.name, applied)
            scenario_log.append((scenario.name, applied))
            transactions.append(list(ctx.ops))
            if (step + 1) % config.scenarios_per_day == 0:
                ctx.day += 1

        meta = self._build_metadata(config, initial, store, ctx, first_history_day)
        workload = GeneratedWorkload(
            config, initial, store, transactions, meta, scenario_log
        )
        if config.current_only:
            for table in store.closed:
                store.closed[table] = []
        return workload

    def _build_metadata(self, config, initial, store, ctx, first_history_day):
        meta = WorkloadMetadata(
            h=config.h,
            m=config.m,
            seed=config.seed,
            initial_tick=INITIAL_TICK,
            first_scenario_tick=INITIAL_TICK + 1,
            last_tick=INITIAL_TICK + config.scenario_count,
            first_history_day=first_history_day,
            last_history_day=ctx.day,
            initial_counts=initial.counts(),
            max_orderkey=ctx.next_orderkey - 1,
            max_custkey=ctx.next_custkey - 1,
        )
        meta.hottest_customer = self._hottest(store, "customer")
        meta.hottest_order = self._hottest(store, "orders")
        meta.hottest_partsupp = self._hottest(store, "partsupp", scalar=False)
        return meta

    def _hottest(self, store, table_name, scalar=True):
        """The live key with the most archived (updated) versions."""
        counts: Dict[tuple, int] = {}
        for values, _b, _e in store.closed.get(table_name, ()):
            key = store.table(table_name).key_of(values)
            counts[key] = counts.get(key, 0) + 1
        live = store.table(table_name).chains
        best = None
        for key, count in sorted(counts.items(), key=lambda kv: -kv[1]):
            if key in live:
                best = key
                break
        if best is None:
            keys = store.table(table_name).live_keys()
            if not keys:
                return None
            best = keys[0]
        return best[0] if scalar and len(best) == 1 else best
