"""The generator's lightweight in-memory versioned store (§4.1).

The paper's generator keeps, per primary key, *"a double linked list of all
application time versions which were visible for the current system time"*,
spilling invalidated tuples to an on-disk archive because *"it is guaranteed
that these tuples will never become visible again"*.  This module implements
exactly that structure:

* :class:`VersionChain` — the doubly linked list of live app-time versions
  of one key, ordered by application-time begin;
* :class:`GeneratorTable` — key → chain map plus the spill hook;
* :class:`GeneratorStore` — all benchmark tables together, exposing the
  bitemporal mutation operations the update scenarios need.

Rows are dicts here (the generator's working format); sys_begin is stored on
each version, sys_end is assigned at invalidation time.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..engine.types import Period


class VersionNode:
    """One live application-time version of a key."""

    __slots__ = ("values", "sys_begin", "prev", "next")

    def __init__(self, values: dict, sys_begin: int):
        self.values = values
        self.sys_begin = sys_begin
        self.prev: Optional["VersionNode"] = None
        self.next: Optional["VersionNode"] = None


class VersionChain:
    """Doubly linked list of live versions ordered by app-time begin."""

    def __init__(self, app_begin_column: Optional[str]):
        self._app_begin = app_begin_column
        self.head: Optional[VersionNode] = None
        self.tail: Optional[VersionNode] = None
        self._count = 0

    def __len__(self):
        return self._count

    def __iter__(self) -> Iterator[VersionNode]:
        node = self.head
        while node is not None:
            next_node = node.next  # capture: callers may unlink mid-iteration
            yield node
            node = next_node

    def _key_of(self, values):
        if self._app_begin is None:
            return 0
        return values.get(self._app_begin, 0)

    def insert(self, node: VersionNode):
        """Insert keeping app-time-begin order (linear from the tail, which
        is O(1) for the generator's mostly-appending workload)."""
        key = self._key_of(node.values)
        if self.tail is None:
            self.head = self.tail = node
        elif self._key_of(self.tail.values) <= key:
            node.prev = self.tail
            self.tail.next = node
            self.tail = node
        else:
            cursor = self.tail
            while cursor.prev is not None and self._key_of(cursor.prev.values) > key:
                cursor = cursor.prev
            node.next = cursor
            node.prev = cursor.prev
            if cursor.prev is not None:
                cursor.prev.next = node
            else:
                self.head = node
            cursor.prev = node
        self._count += 1

    def remove(self, node: VersionNode):
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self.head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self.tail = node.prev
        node.prev = node.next = None
        self._count -= 1

    def versions(self) -> List[dict]:
        return [node.values for node in self]


class TableStats:
    """Per-table operation counters — the raw material of Table 2."""

    __slots__ = (
        "app_time_inserts",
        "app_time_updates",
        "nontemporal_inserts",
        "nontemporal_updates",
        "deletes",
        "app_time_overwrites",
    )

    def __init__(self):
        self.app_time_inserts = 0
        self.app_time_updates = 0
        self.nontemporal_inserts = 0
        self.nontemporal_updates = 0
        self.deletes = 0
        self.app_time_overwrites = 0

    def total_updates(self):
        return self.app_time_updates + self.nontemporal_updates

    def total(self):
        return (
            self.app_time_inserts
            + self.app_time_updates
            + self.nontemporal_inserts
            + self.nontemporal_updates
            + self.deletes
        )

    def as_dict(self):
        return {
            "app_time_insert": self.app_time_inserts,
            "app_time_update": self.app_time_updates,
            "nontemporal_insert": self.nontemporal_inserts,
            "nontemporal_update": self.nontemporal_updates,
            "delete": self.deletes,
            "app_time_overwrite": self.app_time_overwrites,
        }


class GeneratorTable:
    """Current-version state of one table inside the generator."""

    def __init__(
        self,
        name: str,
        key_columns: Tuple[str, ...],
        app_periods: Optional[Dict[str, Tuple[str, str]]],  # name -> (begin, end)
        spill: Callable[[str, dict, int, int], None],
    ):
        self.name = name
        self.key_columns = key_columns
        self.app_periods = dict(app_periods or {})
        #: the period that orders the version chain (the first declared one)
        self.primary_period = next(iter(self.app_periods), None)
        self._spill = spill
        self.chains: Dict[tuple, VersionChain] = {}
        self.stats = TableStats()
        self.initial_count = 0

    def _period_columns(self, period_name: Optional[str]) -> Tuple[str, str]:
        name = period_name or self.primary_period
        if name is None or name not in self.app_periods:
            raise ValueError(f"table {self.name} has no application period {period_name!r}")
        return self.app_periods[name]

    def key_of(self, values: dict) -> tuple:
        return tuple(values[c] for c in self.key_columns)

    def chain(self, key) -> Optional[VersionChain]:
        return self.chains.get(tuple(key))

    def live_keys(self):
        return list(self.chains.keys())

    def live_version_count(self):
        return sum(len(chain) for chain in self.chains.values())

    # -- mutations (mirroring repro.engine.temporal on dicts) ----------------

    def insert(self, values: dict, tick: int, temporal_kind="app"):
        key = self.key_of(values)
        chain = self.chains.get(key)
        if chain is None:
            begin_col = (
                self.app_periods[self.primary_period][0]
                if self.primary_period
                else None
            )
            chain = VersionChain(begin_col)
            self.chains[key] = chain
        chain.insert(VersionNode(dict(values), tick))
        if temporal_kind == "app":
            self.stats.app_time_inserts += 1
        else:
            self.stats.nontemporal_inserts += 1

    def nontemporal_update(self, key, changes: dict, tick: int) -> int:
        chain = self.chains.get(tuple(key))
        if chain is None:
            return 0
        affected = 0
        for node in list(chain):
            new_values = dict(node.values)
            new_values.update(changes)
            self._spill(self.name, node.values, node.sys_begin, tick)
            chain.remove(node)
            chain.insert(VersionNode(new_values, tick))
            affected += 1
        self.stats.nontemporal_updates += 1
        return affected

    def sequenced_update(
        self, key, changes: dict, portion: Period, tick: int,
        period_name: Optional[str] = None, overwrite=False,
    ) -> int:
        """SEQUENCED app-time update: split overlapping versions."""
        begin_col, end_col = self._period_columns(period_name)
        chain = self.chains.get(tuple(key))
        if chain is None:
            return 0
        affected = 0
        for node in list(chain):
            existing = Period(node.values[begin_col], node.values[end_col])
            overlap = existing.intersect(portion)
            if overlap is None:
                continue
            affected += 1
            self._spill(self.name, node.values, node.sys_begin, tick)
            chain.remove(node)
            for remainder in existing.subtract(portion):
                keep = dict(node.values)
                keep[begin_col], keep[end_col] = remainder.begin, remainder.end
                chain.insert(VersionNode(keep, tick))
            changed = dict(node.values)
            changed.update(changes)
            changed[begin_col], changed[end_col] = overlap.begin, overlap.end
            chain.insert(VersionNode(changed, tick))
        if affected:
            self.stats.app_time_updates += 1
            if overwrite:
                self.stats.app_time_overwrites += 1
        return affected

    def sequenced_delete(
        self, key, portion: Period, tick: int, period_name: Optional[str] = None
    ) -> int:
        """SEQUENCED app-time delete: the overlap dies, remainders survive.

        Counted as an application-time update in the Table 2 statistics —
        it rewrites the application-time shape of surviving versions.
        """
        begin_col, end_col = self._period_columns(period_name)
        chain = self.chains.get(tuple(key))
        if chain is None:
            return 0
        affected = 0
        for node in list(chain):
            existing = Period(node.values[begin_col], node.values[end_col])
            if existing.intersect(portion) is None:
                continue
            affected += 1
            self._spill(self.name, node.values, node.sys_begin, tick)
            chain.remove(node)
            for remainder in existing.subtract(portion):
                keep = dict(node.values)
                keep[begin_col], keep[end_col] = remainder.begin, remainder.end
                chain.insert(VersionNode(keep, tick))
        if affected:
            self.stats.app_time_updates += 1
            self.stats.app_time_overwrites += 1
        if not chain:
            self.chains.pop(tuple(key), None)
        return affected

    def delete(self, key, tick: int) -> int:
        chain = self.chains.pop(tuple(key), None)
        if chain is None:
            return 0
        count = 0
        for node in chain:
            self._spill(self.name, node.values, node.sys_begin, tick)
            count += 1
        self.stats.deletes += 1
        return count

    def current_versions(self) -> Iterator[Tuple[dict, int]]:
        """(values, sys_begin) of every live version."""
        for chain in self.chains.values():
            for node in chain:
                yield node.values, node.sys_begin


class GeneratorStore:
    """All benchmark tables plus the closed-version archive feed."""

    def __init__(self, table_specs):
        """*table_specs*: list of (name, key_columns, app_periods_dict)."""
        self.closed: Dict[str, List[Tuple[dict, int, int]]] = {}
        self.tables: Dict[str, GeneratorTable] = {}
        for name, key_columns, app_periods in table_specs:
            self.closed[name] = []
            self.tables[name] = GeneratorTable(
                name, key_columns, app_periods, self._spill
            )

    def _spill(self, table, values, sys_begin, sys_end):
        self.closed[table].append((dict(values), sys_begin, sys_end))

    def table(self, name) -> GeneratorTable:
        return self.tables[name]

    def closed_count(self):
        return sum(len(rows) for rows in self.closed.values())
