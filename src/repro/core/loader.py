"""Populating systems from the generator output (paper §4.2).

Creating a bitemporal history in a real system is constrained by the fact
that *"all timestamps for system time are set automatically by the database
systems and cannot be set explicitly"* — so the loader replays every update
scenario as its own transaction, in system-time order, optionally combining
``batch_size`` scenarios per transaction (the Fig 13 experiment).

System D is the exception (§5.8): its timestamps are ordinary columns, so
:meth:`Loader.bulk_load` writes all versions — open and closed — directly
with precomputed system times, which is why D's load cost is far lower.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..engine.database import Database
from ..engine.errors import NotSupportedError
from .generator import GeneratedWorkload
from .schema import benchmark_schemas, create_benchmark_tables


@dataclass
class LoadReport:
    """Outcome of one population run."""

    system: str
    mode: str                      # "replay" | "bulk"
    batch_size: int
    initial_rows: int = 0
    transactions: int = 0
    operations: int = 0
    seconds: float = 0.0
    #: wall-clock seconds per scenario transaction (Fig 16 raw data)
    scenario_latencies: List[float] = field(default_factory=list)

    def median_latency(self) -> float:
        return _percentile(self.scenario_latencies, 50.0)

    def p97_latency(self) -> float:
        return _percentile(self.scenario_latencies, 97.0)


def _percentile(values: List[float], pct: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


class Loader:
    """Loads one :class:`GeneratedWorkload` into one system."""

    def __init__(self, system, workload: GeneratedWorkload):
        self.system = system
        self.workload = workload

    @property
    def db(self) -> Database:
        return self.system.db

    # -- schema ----------------------------------------------------------

    def create_schema(self):
        create_benchmark_tables(self.db, temporal=True)

    # -- replay path (systems with immutable system time) ------------------

    def load(self, batch_size: int = 1, collect_latencies: bool = False) -> LoadReport:
        """Create the schema, bulk the initial version, replay the history."""
        report = LoadReport(
            system=getattr(self.system, "name", "?"),
            mode="replay",
            batch_size=batch_size,
        )
        started = time.perf_counter()
        self.create_schema()
        report.initial_rows = self._load_initial()
        report.transactions, report.operations = self._replay(
            batch_size, report.scenario_latencies if collect_latencies else None
        )
        self.db.drain_all_undo()
        self.db.merge_all()
        report.seconds = time.perf_counter() - started
        return report

    def _load_initial(self) -> int:
        """Version 0 enters in a single transaction → one shared tick."""
        count = 0
        db = self.db
        with db.begin():
            for schema in benchmark_schemas():
                for values in self.workload.initial[schema.name]:
                    db.insert_row(schema.name, values)
                    count += 1
        return count

    def _replay(self, batch_size, latencies: Optional[List[float]]):
        db = self.db
        transactions = self.workload.transactions
        op_count = 0
        txn_count = 0
        for start in range(0, len(transactions), batch_size):
            batch = transactions[start:start + batch_size]
            if latencies is not None:
                t0 = time.perf_counter()
            with db.begin():
                for ops in batch:
                    for op in ops:
                        self._apply(db, op)
                        op_count += 1
            txn_count += 1
            if latencies is not None:
                latencies.append(time.perf_counter() - t0)
        return txn_count, op_count

    def _apply(self, db, op):
        kind = op[0]
        if kind == "insert":
            _kind, table, values = op
            db.insert_row(table, values)
        elif kind == "update":
            _kind, table, key, changes = op
            db.update_by_key(table, key, changes)
        elif kind == "seq_update":
            _kind, table, key, changes, period, low, high = op
            db.sequenced_update_by_key(table, key, changes, period, low, high)
        elif kind == "seq_delete":
            _kind, table, key, period, low, high = op
            db.sequenced_delete_by_key(table, key, period, low, high)
        elif kind == "delete":
            _kind, table, key = op
            db.delete_by_key(table, key)
        else:
            raise ValueError(f"unknown archive operation {kind!r}")

    # -- bulk path (System D: manual timestamps, §5.8) --------------------------

    def bulk_load(self) -> LoadReport:
        if not self.db.profile.manual_system_time:
            raise NotSupportedError(
                f"system {getattr(self.system, 'name', '?')} cannot bulk-load "
                "a history: system time is immutable"
            )
        report = LoadReport(
            system=getattr(self.system, "name", "?"), mode="bulk", batch_size=0
        )
        started = time.perf_counter()
        self.create_schema()
        count = 0
        for schema in benchmark_schemas():
            if schema.system_period is None:
                for values in self.workload.initial[schema.name]:
                    self.db.insert_row(schema.name, values)
                    count += 1
                continue
            for values, sys_begin, sys_end in self.workload.all_versions(schema.name):
                self.db.insert_row_explicit(schema.name, values, sys_begin, sys_end)
                count += 1
        report.initial_rows = count
        report.seconds = time.perf_counter() - started
        return report


def load_nontemporal_baseline(db: Database, workload: GeneratedWorkload, version="initial"):
    """Populate *db* with plain TPC-H tables (no periods) — the §5.4
    baseline that *"contains the same data as the selected version"*.

    ``version="initial"`` gives the pre-history state (the Fig 7b
    comparison point); ``version="final"`` the state after all updates
    (Fig 7a).
    """
    create_benchmark_tables(db, temporal=False)
    for schema in benchmark_schemas():
        plain = schema.without_periods()
        allowed = set(plain.column_names())
        if version == "initial":
            rows = workload.initial[schema.name]
        elif version == "final":
            rows = workload.final_versions(schema.name)
        else:
            raise ValueError(f"unknown version {version!r}")
        seen = set()
        with db.begin():
            for values in rows:
                key = tuple(values[c] for c in plain.primary_key) if plain.primary_key else None
                if key is not None:
                    if key in seen:
                        continue  # app-time splits collapse to one row
                    seen.add(key)
                db.insert_row(
                    schema.name, {c: v for c, v in values.items() if c in allowed}
                )
    return db
