"""The five TPC-BiH query classes (paper §3.3).

* ``T`` — synthetic time travel (:mod:`.time_travel`)
* ``H`` — TPC-H under time travel (:mod:`.tpch`)
* ``K`` — pure-key / audit queries (:mod:`.audit`)
* ``R`` — range-timeslice queries (:mod:`.range_timeslice`)
* ``B`` — bitemporal dimension queries (:mod:`.bitemporal`)

Every query is a :class:`BenchmarkQuery`: SQL text in the engine dialect
plus a parameter binder over the generator metadata.  ``Workload`` gathers
them all for the benchmark service.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..generator import WorkloadMetadata


@dataclass(frozen=True)
class BenchmarkQuery:
    """One benchmark query: an id like "T1.app", SQL, and a param binder."""

    qid: str
    description: str
    sql: str
    bind: Callable[[WorkloadMetadata], Dict] = lambda meta: {}
    group: str = ""

    def params(self, meta: WorkloadMetadata) -> Dict:
        return self.bind(meta)


class Workload:
    """All benchmark queries, addressable by id."""

    def __init__(self):
        from . import audit, bitemporal, range_timeslice, time_travel

        self._queries: Dict[str, BenchmarkQuery] = {}
        for module in (time_travel, audit, range_timeslice, bitemporal):
            for query in module.QUERIES:
                if query.qid in self._queries:
                    raise ValueError(f"duplicate query id {query.qid}")
                self._queries[query.qid] = query

    def query(self, qid: str) -> BenchmarkQuery:
        return self._queries[qid]

    def ids(self) -> List[str]:
        return list(self._queries)

    def by_group(self, group: str) -> List[BenchmarkQuery]:
        return [q for q in self._queries.values() if q.group == group]

    def __iter__(self):
        return iter(self._queries.values())

    def __len__(self):
        return len(self._queries)


__all__ = ["BenchmarkQuery", "Workload"]
