"""Class K: pure-key / audit queries (paper §3.3, §5.5).

All K queries trace *one* customer (the one with the most updates — the
binder uses ``meta.hottest_customer``) through time:

* K1 — the full history, many columns, no temporal restriction;
* K2 — K1 constrained to a time range;
* K3 — K2 reduced to a single column;
* K4 — last N versions via Top-N;
* K5 — the latest previous version via timestamp correlation;
* K6 — selection by *value* (balance threshold) rather than key.

Dimension suffixes: ``.app`` traces application time at current system
time, ``.app_past`` the same in past system time (forces the history
table), ``.sys`` system time at a fixed application point, ``.both`` both
dimensions as ranges.
"""

from __future__ import annotations

from . import BenchmarkQuery

_K_COLUMNS = "c_custkey, c_name, c_address, c_nationkey, c_phone, c_acctbal, sys_begin"


def _bind_key(meta):
    return {
        "key": meta.hottest_customer or 1,
        "app_point": meta.mid_day(),
        "sys_point": meta.mid_tick(),
        "sys_begin": meta.first_scenario_tick,
        "sys_end": meta.last_tick,
        "app_begin": meta.first_history_day,
        "app_end": meta.last_history_day + 1,
        "sys_past": meta.mid_tick(),
    }


def _bind_value(meta):
    params = _bind_key(meta)
    params["balance"] = 9900.0  # highly selective threshold (paper §5.5.3)
    return params


QUERIES = [
    # ---- K1: full range --------------------------------------------------
    BenchmarkQuery(
        "K1.app",
        "key history over application time at current system time",
        f"SELECT {_K_COLUMNS} FROM customer"
        " FOR BUSINESS_TIME FROM :app_begin TO :app_end"
        " WHERE c_custkey = :key ORDER BY c_visible_begin",
        _bind_key,
        group="K",
    ),
    BenchmarkQuery(
        "K1.app_past",
        "key history over application time at a past system time",
        f"SELECT {_K_COLUMNS} FROM customer"
        " FOR SYSTEM_TIME AS OF :sys_past"
        " FOR BUSINESS_TIME FROM :app_begin TO :app_end"
        " WHERE c_custkey = :key ORDER BY c_visible_begin",
        _bind_key,
        group="K",
    ),
    BenchmarkQuery(
        "K1.both",
        "key history over both time dimensions",
        f"SELECT {_K_COLUMNS} FROM customer"
        " FOR SYSTEM_TIME FROM :sys_begin TO :sys_end"
        " FOR BUSINESS_TIME FROM :app_begin TO :app_end"
        " WHERE c_custkey = :key ORDER BY sys_begin",
        _bind_key,
        group="K",
    ),
    BenchmarkQuery(
        "K1.sys",
        "key history over system time at a fixed application point",
        f"SELECT {_K_COLUMNS} FROM customer"
        " FOR SYSTEM_TIME FROM :sys_begin TO :sys_end"
        " FOR BUSINESS_TIME AS OF :app_point"
        " WHERE c_custkey = :key ORDER BY sys_begin",
        _bind_key,
        group="K",
    ),
    # ---- K2: constrained time range ------------------------------------------
    BenchmarkQuery(
        "K2.app",
        "K1 with a narrowed application-time window",
        f"SELECT {_K_COLUMNS} FROM customer"
        " FOR BUSINESS_TIME FROM :app_begin TO :app_mid"
        " WHERE c_custkey = :key ORDER BY c_visible_begin",
        lambda meta: dict(_bind_key(meta), app_mid=meta.mid_day()),
        group="K",
    ),
    BenchmarkQuery(
        "K2.sys",
        "K1 with a narrowed system-time window",
        f"SELECT {_K_COLUMNS} FROM customer"
        " FOR SYSTEM_TIME FROM :sys_begin TO :sys_mid"
        " FOR BUSINESS_TIME AS OF :app_point"
        " WHERE c_custkey = :key ORDER BY sys_begin",
        lambda meta: dict(_bind_key(meta), sys_mid=meta.mid_tick()),
        group="K",
    ),
    # ---- K3: single column ---------------------------------------------------------
    BenchmarkQuery(
        "K3.app",
        "K2 retrieving a single column (application time)",
        "SELECT c_acctbal FROM customer"
        " FOR BUSINESS_TIME FROM :app_begin TO :app_mid"
        " WHERE c_custkey = :key",
        lambda meta: dict(_bind_key(meta), app_mid=meta.mid_day()),
        group="K",
    ),
    BenchmarkQuery(
        "K3.sys",
        "K2 retrieving a single column (system time)",
        "SELECT c_acctbal FROM customer"
        " FOR SYSTEM_TIME FROM :sys_begin TO :sys_mid"
        " FOR BUSINESS_TIME AS OF :app_point"
        " WHERE c_custkey = :key",
        lambda meta: dict(_bind_key(meta), sys_mid=meta.mid_tick()),
        group="K",
    ),
    # ---- K4: version count via Top-N --------------------------------------------------
    BenchmarkQuery(
        "K4.app",
        "last 3 application-time versions via Top-N",
        f"SELECT {_K_COLUMNS} FROM customer"
        " WHERE c_custkey = :key"
        " ORDER BY c_visible_begin DESC LIMIT 3",
        _bind_key,
        group="K",
    ),
    BenchmarkQuery(
        "K4.sys",
        "last 3 system-time versions via Top-N",
        f"SELECT {_K_COLUMNS} FROM customer"
        " FOR SYSTEM_TIME FROM :sys_begin TO :sys_end"
        " FOR BUSINESS_TIME AS OF :app_point"
        " WHERE c_custkey = :key"
        " ORDER BY sys_begin DESC LIMIT 3",
        _bind_key,
        group="K",
    ),
    # ---- K5: latest previous version via timestamp correlation ---------------------------
    BenchmarkQuery(
        "K5.sys",
        "the version directly before the current one (timestamp correlation)",
        "SELECT c.c_custkey, c.c_acctbal, c.sys_begin"
        " FROM customer FOR SYSTEM_TIME ALL c"
        " WHERE c.c_custkey = :key"
        " AND c.sys_begin = (SELECT max(x.sys_begin)"
        "   FROM customer FOR SYSTEM_TIME ALL x"
        "   WHERE x.c_custkey = :key AND x.sys_end < :sys_end)",
        _bind_key,
        group="K",
    ),
    # ---- K6: selection by value -----------------------------------------------------------
    BenchmarkQuery(
        "K6.app",
        "history of customers above a balance threshold (value predicate)",
        "SELECT c_custkey, c_acctbal FROM customer"
        " FOR BUSINESS_TIME FROM :app_begin TO :app_end"
        " WHERE c_acctbal > :balance",
        _bind_value,
        group="K",
    ),
    BenchmarkQuery(
        "K6.app_past",
        "K6 at a past system time (history access)",
        "SELECT c_custkey, c_acctbal FROM customer"
        " FOR SYSTEM_TIME AS OF :sys_past"
        " FOR BUSINESS_TIME FROM :app_begin TO :app_end"
        " WHERE c_acctbal > :balance",
        _bind_value,
        group="K",
    ),
    BenchmarkQuery(
        "K6.sys",
        "K6 over system time at the current application point",
        "SELECT c_custkey, c_acctbal FROM customer"
        " FOR SYSTEM_TIME FROM :sys_begin TO :sys_end"
        " WHERE c_acctbal > :balance",
        _bind_value,
        group="K",
    ),
]
