"""Class B: bitemporal dimension queries (paper §3.3, Table 3, §5.7).

The non-temporal baseline B3 is a self-join — *"what (other) parts are
supplied by the suppliers who supply part 55?"* — and B3.1–B3.11 vary how
each time dimension participates:

========  ================  =================  =================
query     application time  system time        system-time value
========  ================  =================  =================
B3.1      point             point              current
B3.2      point             point              past
B3.3      correlation       point              current
B3.4      point             correlation        —
B3.5      correlation       correlation        —
B3.6      agnostic          point              current
B3.7      agnostic          point              past
B3.8      agnostic          correlation        —
B3.9      point             agnostic           —
B3.10     correlation       agnostic           —
B3.11     agnostic          agnostic           —
========  ================  =================  =================

*point* pins the dimension with AS OF; *correlation* demands overlapping
periods between the two join sides; *agnostic* ignores the dimension
entirely (FOR ... ALL).
"""

from __future__ import annotations

from . import BenchmarkQuery

_PART = 55

_BODY = (
    "SELECT count(DISTINCT a.ps_partkey)"
    " FROM partsupp{a_clause} a,"
    "      partsupp{b_clause} b"
    " WHERE a.ps_suppkey = b.ps_suppkey"
    "   AND b.ps_partkey = :part"
    "   AND a.ps_partkey <> :part{correlations}"
)


def _query(a_clause="", b_clause="", correlations=""):
    return _BODY.format(
        a_clause=a_clause, b_clause=b_clause, correlations=correlations
    )


def _bind(meta):
    return {
        "part": _PART,
        "app_point": meta.mid_day(),
        "sys_point": meta.mid_tick(),
        "sys_now": meta.last_tick,
        "sys_past": meta.initial_tick,
    }


_APP_POINT = " FOR BUSINESS_TIME AS OF :app_point"
_SYS_NOW = " FOR SYSTEM_TIME AS OF :sys_now"
_SYS_PAST = " FOR SYSTEM_TIME AS OF :sys_past"
_SYS_ALL = " FOR SYSTEM_TIME ALL"

_APP_CORR = (
    "   AND a.ps_valid_begin < b.ps_valid_end"
    "   AND b.ps_valid_begin < a.ps_valid_end"
)
_SYS_CORR = (
    "   AND a.sys_begin < b.sys_end"
    "   AND b.sys_begin < a.sys_end"
)

QUERIES = [
    BenchmarkQuery(
        "B3",
        "non-temporal baseline self-join (current state only)",
        _query(),
        _bind,
        group="B",
    ),
    BenchmarkQuery(
        "B3.1",
        "app point / sys point (current)",
        _query(_APP_POINT, _APP_POINT),
        _bind,
        group="B",
    ),
    BenchmarkQuery(
        "B3.2",
        "app point / sys point (past)",
        _query(_SYS_PAST + _APP_POINT, _SYS_PAST + _APP_POINT),
        _bind,
        group="B",
    ),
    BenchmarkQuery(
        "B3.3",
        "app correlation / sys point (current)",
        _query("", "", _APP_CORR),
        _bind,
        group="B",
    ),
    BenchmarkQuery(
        "B3.4",
        "app point / sys correlation",
        _query(_SYS_ALL + _APP_POINT, _SYS_ALL + _APP_POINT, _SYS_CORR),
        _bind,
        group="B",
    ),
    BenchmarkQuery(
        "B3.5",
        "app correlation / sys correlation",
        _query(_SYS_ALL, _SYS_ALL, _APP_CORR + _SYS_CORR),
        _bind,
        group="B",
    ),
    BenchmarkQuery(
        "B3.6",
        "app agnostic / sys point (current)",
        _query(_SYS_NOW, _SYS_NOW),
        _bind,
        group="B",
    ),
    BenchmarkQuery(
        "B3.7",
        "app agnostic / sys point (past)",
        _query(_SYS_PAST, _SYS_PAST),
        _bind,
        group="B",
    ),
    BenchmarkQuery(
        "B3.8",
        "app agnostic / sys correlation",
        _query(_SYS_ALL, _SYS_ALL, _SYS_CORR),
        _bind,
        group="B",
    ),
    BenchmarkQuery(
        "B3.9",
        "app point / sys agnostic",
        _query(_SYS_ALL + _APP_POINT, _SYS_ALL + _APP_POINT),
        _bind,
        group="B",
    ),
    BenchmarkQuery(
        "B3.10",
        "app correlation / sys agnostic",
        _query(_SYS_ALL, _SYS_ALL, _APP_CORR),
        _bind,
        group="B",
    ),
    BenchmarkQuery(
        "B3.11",
        "app agnostic / sys agnostic (all versions joined)",
        _query(_SYS_ALL, _SYS_ALL),
        _bind,
        group="B",
    ),
]
