"""Benchmark parameter sampling (the Benchmarking Service's job, §4).

The paper's service handles *"particular temporal properties in the
selection of parameters to queries (e.g., the system time interval for
generator execution)"*.  The default binders on each
:class:`~repro.core.queries.BenchmarkQuery` pick one representative value;
this module adds **deterministic samplers** so an experiment can run a
query at many parameter positions (early / mid / late history, hot / cold
keys) and report the spread rather than a single point.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..generator import WorkloadMetadata
from ..rng import Rng


class ParameterSampler:
    """Deterministic parameter variations for one workload."""

    def __init__(self, meta: WorkloadMetadata, seed: int = 99):
        self.meta = meta
        self._rng = Rng(seed)

    # -- time dimensions -----------------------------------------------------

    def sys_ticks(self, count: int) -> List[int]:
        """*count* system-time ticks evenly spread over the history."""
        meta = self.meta
        if count == 1:
            return [meta.mid_tick()]
        span = meta.last_tick - meta.initial_tick
        return [
            meta.initial_tick + (span * i) // (count - 1) for i in range(count)
        ]

    def random_sys_tick(self) -> int:
        return self._rng.uniform_int(self.meta.initial_tick, self.meta.last_tick)

    def app_days(self, count: int) -> List[int]:
        """*count* application days spread over the history window."""
        meta = self.meta
        if count == 1:
            return [meta.mid_day()]
        span = meta.last_history_day - meta.first_history_day
        return [
            meta.first_history_day + (span * i) // (count - 1)
            for i in range(count)
        ]

    def random_app_day(self) -> int:
        return self._rng.uniform_int(
            self.meta.first_history_day, self.meta.last_history_day
        )

    # -- keys -----------------------------------------------------------------

    def customer_keys(self, count: int, include_hottest: bool = True) -> List[int]:
        """Customer keys: the hottest one plus deterministic cold picks."""
        keys: List[int] = []
        if include_hottest and self.meta.hottest_customer is not None:
            keys.append(self.meta.hottest_customer)
        limit = max(1, self.meta.max_custkey)
        while len(keys) < count:
            candidate = self._rng.uniform_int(1, limit)
            if candidate not in keys:
                keys.append(candidate)
        return keys[:count]

    def order_keys(self, count: int) -> List[int]:
        keys: List[int] = []
        if self.meta.hottest_order is not None:
            keys.append(self.meta.hottest_order)
        limit = max(1, self.meta.max_orderkey)
        while len(keys) < count:
            candidate = self._rng.uniform_int(1, limit)
            if candidate not in keys:
                keys.append(candidate)
        return keys[:count]

    # -- query-level variation ------------------------------------------------

    def variations(self, query, count: int = 3) -> Iterator[Dict]:
        """Yield *count* parameter dicts for *query*, spreading every
        time-typed parameter across the history.

        Non-temporal parameters keep their default binding; ``sys_*``
        parameters sweep system time, ``app_*`` parameters sweep the
        application window.
        """
        base = query.params(self.meta)
        ticks = self.sys_ticks(count)
        days = self.app_days(count)
        for index in range(count):
            params = dict(base)
            for name in params:
                if name.startswith("sys_") and isinstance(params[name], int):
                    if name.endswith(("_begin", "_lo")):
                        continue  # keep range starts anchored
                    params[name] = ticks[index]
                elif name.startswith("app_") and isinstance(params[name], int):
                    if name.endswith(("_begin", "_lo", "_end", "_hi")):
                        continue
                    params[name] = days[index]
            yield params


def spread_measure(service, system, query, meta, count=3, seed=99):
    """Measure *query* at *count* parameter positions; returns the cells."""
    sampler = ParameterSampler(meta, seed=seed)
    cells = []
    for index, params in enumerate(sampler.variations(query, count)):
        cells.append(
            service.measure_sql(
                system, query.sql, params,
                qid=f"{query.qid}#{index}",
            )
        )
    return cells
