"""Class R: range-timeslice queries (paper §3.3, §5.6).

Application-derived analyses that fix one time dimension to a point while
ranging over the other.  These are the paper's pain points: temporal
aggregation (R3) costs *"more than two orders of magnitude more ... than a
full access to the history"* on some systems because SQL:2011 offers no
native operator — the rewrites below are exactly the joins-over-boundaries
formulations the paper had to use.
"""

from __future__ import annotations

from ...engine.types import END_OF_TIME
from . import BenchmarkQuery


def _bind(meta):
    return {
        "app_point": meta.mid_day(),
        "sys_point": meta.mid_tick(),
        "sys_end": meta.last_tick,
        "sys_sentinel": END_OF_TIME,
        "price": 400000.0,
        "balance": 5000.0,
    }


QUERIES = [
    # ---- R1: state modeling — captured state changes ------------------------
    BenchmarkQuery(
        "R1",
        "state changes: successive versions whose order status differs",
        "SELECT count(*)"
        " FROM orders FOR SYSTEM_TIME ALL v1,"
        "      orders FOR SYSTEM_TIME ALL v2"
        " WHERE v1.o_orderkey = v2.o_orderkey"
        "   AND v2.sys_begin = v1.sys_end"
        "   AND v1.o_orderstatus <> v2.o_orderstatus",
        _bind,
        group="R",
    ),
    # ---- R2: state durations -------------------------------------------------
    BenchmarkQuery(
        "R2",
        "state durations: how long orders stay in each status (system time)",
        # The duration average must ignore still-open versions: their
        # ``sys_end`` is the END_OF_TIME sentinel, and ``sys_end - sys_begin``
        # would count them as astronomically long states.  The default bind
        # (``sys_end < :sys_end`` at last_tick) happens to exclude them, but a
        # current-inclusive bind would silently corrupt the average without
        # the CASE clamp.
        "SELECT o_orderstatus, count(*),"
        "       avg(CASE WHEN sys_end < :sys_sentinel"
        "                THEN sys_end - sys_begin ELSE NULL END)"
        " FROM orders FOR SYSTEM_TIME ALL"
        " WHERE sys_end < :sys_end"
        " GROUP BY o_orderstatus",
        _bind,
        group="R",
    ),
    # ---- R3: temporal aggregation ------------------------------------------------
    BenchmarkQuery(
        "R3a",
        "temporal aggregation (count) — one result row per version boundary",
        # The boundary list must union *both* interval endpoints: a version
        # that ends without a successor still changes the aggregate at its
        # ``sys_end``, and begins-only misses that boundary entirely.  (The
        # begins-only variant also undercounts whenever a deletion is the
        # only event at a tick.)  This both-endpoints UNION shape is what the
        # ``temporal-fusion`` rewrite recognises and replaces with the native
        # sweep operator.
        "SELECT b.t, count(*)"
        " FROM (SELECT sys_begin AS t FROM orders FOR SYSTEM_TIME ALL"
        "       UNION"
        "       SELECT sys_end AS t FROM orders FOR SYSTEM_TIME ALL) b,"
        "      orders FOR SYSTEM_TIME ALL o"
        " WHERE o.sys_begin <= b.t AND o.sys_end > b.t"
        " GROUP BY b.t",
        _bind,
        group="R",
    ),
    BenchmarkQuery(
        "R3b",
        "temporal aggregation (sum of open order value) per boundary",
        "SELECT b.t, sum(o.o_totalprice)"
        " FROM (SELECT sys_begin AS t FROM orders FOR SYSTEM_TIME ALL"
        "       UNION"
        "       SELECT sys_end AS t FROM orders FOR SYSTEM_TIME ALL) b,"
        "      orders FOR SYSTEM_TIME ALL o"
        " WHERE o.sys_begin <= b.t AND o.sys_end > b.t"
        " GROUP BY b.t",
        _bind,
        group="R",
    ),
    # ---- R4: smallest stock-level difference over the history -------------------------
    BenchmarkQuery(
        "R4",
        "products with the smallest stock-level spread over their history",
        "SELECT ps_partkey, ps_suppkey,"
        "       max(ps_availqty) - min(ps_availqty) AS spread"
        " FROM partsupp FOR SYSTEM_TIME ALL"
        " GROUP BY ps_partkey, ps_suppkey"
        " HAVING count(*) > 1"
        " ORDER BY spread ASC, ps_partkey, ps_suppkey"
        " LIMIT 10",
        _bind,
        group="R",
    ),
    # ---- R5: temporal join ---------------------------------------------------------------
    BenchmarkQuery(
        "R5",
        "temporal join: low-balance customers while placing expensive orders",
        "SELECT count(DISTINCT c.c_custkey)"
        " FROM customer FOR SYSTEM_TIME ALL c,"
        "      orders FOR SYSTEM_TIME ALL o"
        " WHERE c.c_custkey = o.o_custkey"
        "   AND c.c_acctbal < :balance"
        "   AND o.o_totalprice > :price"
        "   AND c.sys_begin < o.sys_end AND o.sys_begin < c.sys_end",
        _bind,
        group="R",
    ),
    # ---- R6: temporal aggregation + join ----------------------------------------------------
    BenchmarkQuery(
        "R6",
        "temporal aggregation joined with a temporal table",
        "SELECT n.n_name, count(*)"
        " FROM customer FOR SYSTEM_TIME ALL c,"
        "      orders FOR SYSTEM_TIME ALL o,"
        "      nation n"
        " WHERE c.c_custkey = o.o_custkey"
        "   AND n.n_nationkey = c.c_nationkey"
        "   AND c.sys_begin < o.sys_end AND o.sys_begin < c.sys_end"
        " GROUP BY n.n_name",
        _bind,
        group="R",
    ),
    # ---- R7: previous-version deltas for all keys ---------------------------------------------
    BenchmarkQuery(
        "R7",
        "suppliers raising a price by more than 7.5% in one update",
        "SELECT DISTINCT v2.ps_suppkey"
        " FROM partsupp FOR SYSTEM_TIME ALL v1,"
        "      partsupp FOR SYSTEM_TIME ALL v2"
        " WHERE v1.ps_partkey = v2.ps_partkey"
        "   AND v1.ps_suppkey = v2.ps_suppkey"
        "   AND v2.sys_begin = v1.sys_end"
        "   AND v2.ps_supplycost > 1.075 * v1.ps_supplycost",
        _bind,
        group="R",
    ),
]
