"""Class T: synthetic time travel (paper §3.3 / §5.3).

Dimension naming follows the experiments:

* ``.app`` — vary application time at (implicit) current system time;
* ``.sys`` — vary system time at the current application time point;
* point queries aggregate a single value so the measured cost is the
  temporal access itself, not result shipping.

T1 runs on PARTSUPP (*"stable cardinality, many updates"* — the paper's T1
uses CUSTOMER in the text and PARTSUPP in the example; both variants are
provided), T2 on the growing ORDERS table, T5 is the ALL yardstick, T6 the
slicing pair, T7 implicit-vs-explicit, T8/T9 the simulated-application-time
twins of T2/T6.
"""

from __future__ import annotations

from . import BenchmarkQuery

# NOTE on parameters: :sys_point is a system-time tick, :app_point an
# application-time day; binders pick representative values from the
# generator metadata (mid-history by default).


def _bind_mid(meta):
    return {"sys_point": meta.mid_tick(), "app_point": meta.mid_day()}


def _bind_past_sys(meta):
    # "as recorded in the system yesterday": just after the initial load
    return {"sys_point": meta.initial_tick, "app_point": meta.mid_day()}


QUERIES = [
    # ---- T1: point-point on a stable relation ---------------------------------
    BenchmarkQuery(
        "T1.app",
        "point TT on PARTSUPP: vary application time, current system time",
        "SELECT avg(ps_supplycost), count(*) FROM partsupp"
        " FOR BUSINESS_TIME AS OF :app_point",
        _bind_mid,
        group="T",
    ),
    BenchmarkQuery(
        "T1.sys",
        "point TT on PARTSUPP: vary system time, current application time",
        "SELECT avg(ps_supplycost), count(*) FROM partsupp"
        " FOR SYSTEM_TIME AS OF :sys_point"
        " FOR BUSINESS_TIME AS OF :app_point",
        _bind_mid,
        group="T",
    ),
    BenchmarkQuery(
        "T1c.app",
        "point TT on CUSTOMER (many updates, stable cardinality): vary app time",
        "SELECT avg(c_acctbal), count(*) FROM customer"
        " FOR BUSINESS_TIME AS OF :app_point",
        _bind_mid,
        group="T",
    ),
    BenchmarkQuery(
        "T1c.sys",
        "point TT on CUSTOMER: vary system time",
        "SELECT avg(c_acctbal), count(*) FROM customer"
        " FOR SYSTEM_TIME AS OF :sys_point"
        " FOR BUSINESS_TIME AS OF :app_point",
        _bind_mid,
        group="T",
    ),
    # ---- T2: point-point on a growing relation ----------------------------------
    BenchmarkQuery(
        "T2.app",
        "point TT on ORDERS (growing, insert-focused): vary application time",
        "SELECT avg(o_totalprice), count(*) FROM orders"
        " FOR BUSINESS_TIME AS OF :app_point",
        _bind_mid,
        group="T",
    ),
    BenchmarkQuery(
        "T2.sys",
        "point TT on ORDERS: vary system time",
        "SELECT avg(o_totalprice), count(*) FROM orders"
        " FOR SYSTEM_TIME AS OF :sys_point"
        " FOR BUSINESS_TIME AS OF :app_point",
        _bind_mid,
        group="T",
    ),
    # ---- T3: two time travels on the same table (sharing opportunity) ------------
    BenchmarkQuery(
        "T3",
        "two system-time snapshots of ORDERS combined (shared TT)",
        "SELECT count(*) FROM ("
        " SELECT o_orderkey FROM orders FOR SYSTEM_TIME AS OF :sys_a"
        " UNION ALL"
        " SELECT o_orderkey FROM orders FOR SYSTEM_TIME AS OF :sys_b"
        ") both_snaps",
        lambda meta: {"sys_a": meta.initial_tick, "sys_b": meta.last_tick},
        group="T",
    ),
    # ---- T4: early stop ------------------------------------------------------------
    BenchmarkQuery(
        "T4",
        "time travel with early stop (LIMIT)",
        "SELECT o_orderkey, o_totalprice FROM orders"
        " FOR SYSTEM_TIME AS OF :sys_point"
        " ORDER BY o_orderkey LIMIT 10",
        _bind_mid,
        group="T",
    ),
    # ---- T5 / ALL: the yardstick ------------------------------------------------------
    BenchmarkQuery(
        "T5.all",
        "ALL: retrieve the complete history of ORDERS (upper bound)",
        "SELECT count(*), avg(o_totalprice) FROM orders FOR SYSTEM_TIME ALL",
        lambda meta: {},
        group="T",
    ),
    # ---- T6: temporal slicing ----------------------------------------------------------
    BenchmarkQuery(
        "T6.appslice",
        "slice: fix application time, all of system time",
        "SELECT count(*), avg(o_totalprice) FROM orders"
        " FOR SYSTEM_TIME ALL"
        " FOR BUSINESS_TIME AS OF :app_point",
        _bind_mid,
        group="T",
    ),
    BenchmarkQuery(
        "T6.sysslice",
        "slice: fix system time, all of application time",
        "SELECT count(*), avg(o_totalprice) FROM orders"
        " FOR SYSTEM_TIME AS OF :sys_point",
        _bind_mid,
        group="T",
    ),
    # ---- T7: implicit vs explicit current time travel ------------------------------------
    BenchmarkQuery(
        "T7.implicit",
        "current state without a system-time clause (implicit current)",
        "SELECT count(*), avg(o_totalprice) FROM orders",
        lambda meta: {},
        group="T",
    ),
    BenchmarkQuery(
        "T7.explicit",
        "current state via an explicit AS OF <now> (Fig 6: history not pruned)",
        "SELECT count(*), avg(o_totalprice) FROM orders"
        " FOR SYSTEM_TIME AS OF :sys_now",
        lambda meta: {"sys_now": meta.last_tick},
        group="T",
    ),
    # ---- T8/T9: simulated application time (plain predicates) --------------------------------
    BenchmarkQuery(
        "T8",
        "T2 with simulated application time (plain value predicates)",
        "SELECT avg(o_totalprice), count(*) FROM orders"
        " WHERE o_active_begin <= :app_point AND o_active_end > :app_point",
        _bind_mid,
        group="T",
    ),
    BenchmarkQuery(
        "T9",
        "T6 slicing with simulated application time",
        "SELECT count(*), avg(o_totalprice) FROM orders"
        " FOR SYSTEM_TIME ALL"
        " WHERE o_active_begin <= :app_point AND o_active_end > :app_point",
        _bind_mid,
        group="T",
    ),
]
