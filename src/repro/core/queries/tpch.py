"""Class H: the 22 TPC-H queries under time travel (paper §3.3, §5.4).

Because the TPC-BiH schema is a superset of TPC-H, the original queries run
unmodified on the *current* state; the benchmark then "lets them move
through time" by attaching a time-travel clause to every temporal table
reference.  Queries are stored as templates with ``{table}`` placeholders;
:func:`tpch_query` renders them in one of three modes:

* ``plain`` — bare table names (the non-temporal baseline of §5.4);
* ``app``   — ``FOR BUSINESS_TIME AS OF :app_tt`` on every table with an
  application period (current system time implicit);
* ``sys``   — ``FOR SYSTEM_TIME AS OF :sys_tt`` on every versioned table.

Query text follows the TPC-H specification with two mechanical adaptations
for the engine dialect: ``LIMIT n`` instead of vendor Top-N syntax, and
Q19's join predicate hoisted out of the OR (the standard rewrite).
"""

from __future__ import annotations

from typing import Dict, List

from . import BenchmarkQuery

#: which tables carry which clause in each mode
_APP_TABLES = ("part", "partsupp", "customer", "orders", "lineitem")
_SYS_TABLES = ("supplier", "part", "partsupp", "customer", "orders", "lineitem")
_ALL_TABLES = ("region", "nation") + _SYS_TABLES

QUERY_TEMPLATES: Dict[int, str] = {}

QUERY_TEMPLATES[1] = """
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM {lineitem}
WHERE l_shipdate <= date '1998-12-01' - interval '90' day
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

QUERY_TEMPLATES[2] = """
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone
FROM {part} p, {supplier} s, {partsupp} ps, {nation} n, {region} r
WHERE p.p_partkey = ps.ps_partkey
  AND s.s_suppkey = ps.ps_suppkey
  AND p_size = 15
  AND p_type LIKE '%BRASS'
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'EUROPE'
  AND ps_supplycost = (
      SELECT min(ps2.ps_supplycost)
      FROM {partsupp} ps2, {supplier} s2, {nation} n2, {region} r2
      WHERE ps2.ps_partkey = p.p_partkey
        AND s2.s_suppkey = ps2.ps_suppkey
        AND s2.s_nationkey = n2.n_nationkey
        AND n2.n_regionkey = r2.r_regionkey
        AND r2.r_name = 'EUROPE')
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
LIMIT 100
"""

QUERY_TEMPLATES[3] = """
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM {customer}, {orders}, {lineitem}
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < date '1995-03-15'
  AND l_shipdate > date '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""

QUERY_TEMPLATES[4] = """
SELECT o_orderpriority, count(*) AS order_count
FROM {orders} o
WHERE o_orderdate >= date '1993-07-01'
  AND o_orderdate < date '1993-07-01' + interval '3' month
  AND EXISTS (
      SELECT 1 FROM {lineitem} l
      WHERE l.l_orderkey = o.o_orderkey
        AND l.l_commitdate < l.l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority
"""

QUERY_TEMPLATES[5] = """
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM {customer}, {orders}, {lineitem}, {supplier}, {nation}, {region}
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= date '1994-01-01'
  AND o_orderdate < date '1994-01-01' + interval '1' year
GROUP BY n_name
ORDER BY revenue DESC
"""

QUERY_TEMPLATES[6] = """
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM {lineitem}
WHERE l_shipdate >= date '1994-01-01'
  AND l_shipdate < date '1994-01-01' + interval '1' year
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24
"""

QUERY_TEMPLATES[7] = """
SELECT supp_nation, cust_nation, l_year, sum(volume) AS revenue
FROM (
  SELECT n1.n_name AS supp_nation,
         n2.n_name AS cust_nation,
         extract(year FROM l_shipdate) AS l_year,
         l_extendedprice * (1 - l_discount) AS volume
  FROM {supplier} s, {lineitem} l, {orders} o, {customer} c,
       {nation} n1, {nation} n2
  WHERE s.s_suppkey = l.l_suppkey
    AND o.o_orderkey = l.l_orderkey
    AND c.c_custkey = o.o_custkey
    AND s.s_nationkey = n1.n_nationkey
    AND c.c_nationkey = n2.n_nationkey
    AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
      OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
    AND l_shipdate BETWEEN date '1995-01-01' AND date '1996-12-31'
) shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year
"""

QUERY_TEMPLATES[8] = """
SELECT o_year,
       sum(CASE WHEN nationx = 'BRAZIL' THEN volume ELSE 0 END) / sum(volume)
         AS mkt_share
FROM (
  SELECT extract(year FROM o_orderdate) AS o_year,
         l_extendedprice * (1 - l_discount) AS volume,
         n2.n_name AS nationx
  FROM {part} p, {supplier} s, {lineitem} l, {orders} o, {customer} c,
       {nation} n1, {nation} n2, {region} r
  WHERE p.p_partkey = l.l_partkey
    AND s.s_suppkey = l.l_suppkey
    AND l.l_orderkey = o.o_orderkey
    AND o.o_custkey = c.c_custkey
    AND c.c_nationkey = n1.n_nationkey
    AND n1.n_regionkey = r.r_regionkey
    AND r.r_name = 'AMERICA'
    AND s.s_nationkey = n2.n_nationkey
    AND o_orderdate BETWEEN date '1995-01-01' AND date '1996-12-31'
    AND p_type = 'ECONOMY ANODIZED STEEL'
) all_nations
GROUP BY o_year
ORDER BY o_year
"""

QUERY_TEMPLATES[9] = """
SELECT nationx, o_year, sum(amount) AS sum_profit
FROM (
  SELECT n_name AS nationx,
         extract(year FROM o_orderdate) AS o_year,
         l_extendedprice * (1 - l_discount)
           - ps_supplycost * l_quantity AS amount
  FROM {part} p, {supplier} s, {lineitem} l, {partsupp} ps, {orders} o,
       {nation} n
  WHERE s.s_suppkey = l.l_suppkey
    AND ps.ps_suppkey = l.l_suppkey
    AND ps.ps_partkey = l.l_partkey
    AND p.p_partkey = l.l_partkey
    AND o.o_orderkey = l.l_orderkey
    AND s.s_nationkey = n.n_nationkey
    AND p_name LIKE '%green%'
) profit
GROUP BY nationx, o_year
ORDER BY nationx, o_year DESC
"""

QUERY_TEMPLATES[10] = """
SELECT c_custkey, c_name,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone
FROM {customer}, {orders}, {lineitem}, {nation}
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= date '1993-10-01'
  AND o_orderdate < date '1993-10-01' + interval '3' month
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address
ORDER BY revenue DESC
LIMIT 20
"""

QUERY_TEMPLATES[11] = """
SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS part_value
FROM {partsupp}, {supplier}, {nation}
WHERE ps_suppkey = s_suppkey
  AND s_nationkey = n_nationkey
  AND n_name = 'GERMANY'
GROUP BY ps_partkey
HAVING sum(ps_supplycost * ps_availqty) > (
    SELECT sum(ps_supplycost * ps_availqty) * 0.0001
    FROM {partsupp}, {supplier}, {nation}
    WHERE ps_suppkey = s_suppkey
      AND s_nationkey = n_nationkey
      AND n_name = 'GERMANY')
ORDER BY part_value DESC
"""

QUERY_TEMPLATES[12] = """
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT'
                  OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END)
         AS high_line_count,
       sum(CASE WHEN o_orderpriority <> '1-URGENT'
                 AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END)
         AS low_line_count
FROM {orders}, {lineitem}
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= date '1994-01-01'
  AND l_receiptdate < date '1994-01-01' + interval '1' year
GROUP BY l_shipmode
ORDER BY l_shipmode
"""

QUERY_TEMPLATES[13] = """
SELECT c_count, count(*) AS custdist
FROM (
  SELECT c.c_custkey AS c_custkey, count(o.o_orderkey) AS c_count
  FROM {customer} c LEFT JOIN {orders} o
    ON c.c_custkey = o.o_custkey
   AND o.o_comment NOT LIKE '%special%requests%'
  GROUP BY c.c_custkey
) c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC
"""

QUERY_TEMPLATES[14] = """
SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END)
       / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM {lineitem}, {part}
WHERE l_partkey = p_partkey
  AND l_shipdate >= date '1995-09-01'
  AND l_shipdate < date '1995-09-01' + interval '1' month
"""

QUERY_TEMPLATES[15] = """
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM {supplier}, (
  SELECT l_suppkey AS supplier_no,
         sum(l_extendedprice * (1 - l_discount)) AS total_revenue
  FROM {lineitem}
  WHERE l_shipdate >= date '1996-01-01'
    AND l_shipdate < date '1996-01-01' + interval '3' month
  GROUP BY l_suppkey
) revenue0
WHERE s_suppkey = supplier_no
  AND total_revenue = (
      SELECT max(total_revenue)
      FROM (
        SELECT l_suppkey AS supplier_no,
               sum(l_extendedprice * (1 - l_discount)) AS total_revenue
        FROM {lineitem}
        WHERE l_shipdate >= date '1996-01-01'
          AND l_shipdate < date '1996-01-01' + interval '3' month
        GROUP BY l_suppkey
      ) revenue1)
ORDER BY s_suppkey
"""

QUERY_TEMPLATES[16] = """
SELECT p_brand, p_type, p_size,
       count(DISTINCT ps_suppkey) AS supplier_cnt
FROM {partsupp}, {part}
WHERE p_partkey = ps_partkey
  AND p_brand <> 'Brand#45'
  AND p_type NOT LIKE 'MEDIUM POLISHED%'
  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
  AND ps_suppkey NOT IN (
      SELECT s_suppkey FROM {supplier}
      WHERE s_comment LIKE '%Customer%Complaints%')
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size
"""

QUERY_TEMPLATES[17] = """
SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM {lineitem} l, {part} p
WHERE p.p_partkey = l.l_partkey
  AND p_brand = 'Brand#23'
  AND p_container = 'MED BOX'
  AND l.l_quantity < (
      SELECT 0.2 * avg(l2.l_quantity)
      FROM {lineitem} l2
      WHERE l2.l_partkey = p.p_partkey)
"""

QUERY_TEMPLATES[18] = """
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       sum(l_quantity) AS total_qty
FROM {customer}, {orders}, {lineitem}
WHERE o_orderkey IN (
      SELECT l_orderkey FROM {lineitem}
      GROUP BY l_orderkey
      HAVING sum(l_quantity) > 200)
  AND c_custkey = o_custkey
  AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100
"""

QUERY_TEMPLATES[19] = """
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM {lineitem}, {part}
WHERE p_partkey = l_partkey
  AND l_shipmode IN ('AIR', 'REG AIR')
  AND l_shipinstruct = 'DELIVER IN PERSON'
  AND ((p_brand = 'Brand#12'
        AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        AND l_quantity >= 1 AND l_quantity <= 11
        AND p_size BETWEEN 1 AND 5)
    OR (p_brand = 'Brand#23'
        AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        AND l_quantity >= 10 AND l_quantity <= 20
        AND p_size BETWEEN 1 AND 10)
    OR (p_brand = 'Brand#34'
        AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        AND l_quantity >= 20 AND l_quantity <= 30
        AND p_size BETWEEN 1 AND 15))
"""

QUERY_TEMPLATES[20] = """
SELECT s_name, s_address
FROM {supplier}, {nation}
WHERE s_suppkey IN (
      SELECT ps_suppkey FROM {partsupp} ps
      WHERE ps.ps_partkey IN (
            SELECT p_partkey FROM {part} WHERE p_name LIKE 'forest%')
        AND ps.ps_availqty > (
            SELECT 0.5 * sum(l_quantity)
            FROM {lineitem} l
            WHERE l.l_partkey = ps.ps_partkey
              AND l.l_suppkey = ps.ps_suppkey
              AND l.l_shipdate >= date '1994-01-01'
              AND l.l_shipdate < date '1994-01-01' + interval '1' year))
  AND s_nationkey = n_nationkey
  AND n_name = 'CANADA'
ORDER BY s_name
"""

QUERY_TEMPLATES[21] = """
SELECT s_name, count(*) AS numwait
FROM {supplier} s, {lineitem} l1, {orders} o, {nation} n
WHERE s.s_suppkey = l1.l_suppkey
  AND o.o_orderkey = l1.l_orderkey
  AND o.o_orderstatus = 'F'
  AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (
      SELECT 1 FROM {lineitem} l2
      WHERE l2.l_orderkey = l1.l_orderkey
        AND l2.l_suppkey <> l1.l_suppkey)
  AND NOT EXISTS (
      SELECT 1 FROM {lineitem} l3
      WHERE l3.l_orderkey = l1.l_orderkey
        AND l3.l_suppkey <> l1.l_suppkey
        AND l3.l_receiptdate > l3.l_commitdate)
  AND s.s_nationkey = n.n_nationkey
  AND n.n_name = 'SAUDI ARABIA'
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100
"""

QUERY_TEMPLATES[22] = """
SELECT cntrycode, count(*) AS numcust, sum(c_acctbal) AS totacctbal
FROM (
  SELECT substring(c_phone FROM 1 FOR 2) AS cntrycode, c_acctbal
  FROM {customer} c
  WHERE substring(c_phone FROM 1 FOR 2) IN
        ('13', '31', '23', '29', '30', '18', '17')
    AND c_acctbal > (
        SELECT avg(c_acctbal) FROM {customer}
        WHERE c_acctbal > 0.00
          AND substring(c_phone FROM 1 FOR 2) IN
              ('13', '31', '23', '29', '30', '18', '17'))
    AND NOT EXISTS (
        SELECT 1 FROM {orders} o WHERE o.o_custkey = c.c_custkey)
) custsale
GROUP BY cntrycode
ORDER BY cntrycode
"""


def _substitutions(mode: str) -> Dict[str, str]:
    subs = {}
    for table in _ALL_TABLES:
        if mode == "plain":
            subs[table] = table
        elif mode == "app":
            if table in _APP_TABLES:
                subs[table] = f"{table} FOR BUSINESS_TIME AS OF :app_tt"
            else:
                subs[table] = table
        elif mode == "app_slice":
            # the application-time *slice*: every current app version takes
            # part, which exposes the version-volume cost of the bitemporal
            # representation (EXPERIMENTS.md discusses point vs slice)
            if table in _APP_TABLES:
                subs[table] = (
                    f"{table} FOR BUSINESS_TIME FROM :app_lo TO :app_hi"
                )
            else:
                subs[table] = table
        elif mode == "sys":
            if table in _SYS_TABLES:
                subs[table] = f"{table} FOR SYSTEM_TIME AS OF :sys_tt"
            else:
                subs[table] = table
        else:
            raise ValueError(f"unknown mode {mode!r}")
    return subs


def tpch_query(number: int, mode: str = "plain") -> str:
    """Render TPC-H query *number* (1..22) in the given temporal mode."""
    template = QUERY_TEMPLATES[number]
    return template.format(**_substitutions(mode)).strip()


def tpch_params(meta, mode: str) -> Dict:
    """Parameter bindings for the rendered query."""
    if mode == "app":
        # a valid application-time point: the middle of the history window
        return {"app_tt": meta.mid_day()}
    if mode == "app_slice":
        from ...engine.types import END_OF_TIME

        return {"app_lo": 0, "app_hi": END_OF_TIME}
    if mode == "sys":
        # "directly before the history evolution" (§5.4.2)
        return {"sys_tt": meta.initial_tick}
    return {}


def all_numbers() -> List[int]:
    return sorted(QUERY_TEMPLATES)


def as_benchmark_queries(mode: str) -> List[BenchmarkQuery]:
    """The H class as BenchmarkQuery objects (H1.app, H1.sys, ...)."""
    out = []
    for number in all_numbers():
        out.append(
            BenchmarkQuery(
                qid=f"H{number}.{mode}",
                description=f"TPC-H Q{number} in {mode} mode",
                sql=tpch_query(number, mode),
                bind=lambda meta, _m=mode: tpch_params(meta, _m),
                group="H",
            )
        )
    return out
