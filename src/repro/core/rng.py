"""Deterministic randomness for the generator.

All benchmark data derives from a single seed so that every (h, m, seed)
combination is exactly reproducible across runs and across systems — the
paper's requirement that *"the same input can be applied for the population
of all database systems"* (§4.1).
"""

from __future__ import annotations

import random
from typing import List, Sequence

DEFAULT_SEED = 19920101  # the TPC-H epoch date, because why not


class Rng:
    """Thin wrapper over random.Random with benchmark helpers."""

    def __init__(self, seed=DEFAULT_SEED):
        self._random = random.Random(seed)

    def uniform_int(self, low, high):
        """Inclusive integer range."""
        return self._random.randint(low, high)

    def uniform(self, low, high):
        return self._random.uniform(low, high)

    def random(self):
        return self._random.random()

    def choice(self, options: Sequence):
        return options[self._random.randrange(len(options))]

    def sample(self, options: Sequence, count):
        return self._random.sample(options, count)

    def shuffle(self, items: List):
        self._random.shuffle(items)

    def weighted_choice(self, options: Sequence, weights: Sequence[float]):
        """Pick one option with the given (not necessarily normalised) weights."""
        total = sum(weights)
        roll = self._random.random() * total
        acc = 0.0
        for option, weight in zip(options, weights):
            acc += weight
            if roll < acc:
                return option
        return options[-1]

    def skewed_index(self, count, exponent=1.2):
        """A Zipf-ish index in [0, count): small indexes are favoured.

        Used to make the application-time access pattern non-uniform, as
        §3 requires ("non-uniform distributions along the application time
        dimension").
        """
        if count <= 1:
            return 0
        u = self._random.random()
        index = int(count * (u ** exponent))
        return min(index, count - 1)

    def text(self, min_len=8, max_len=24):
        """Pseudo-comment text (deterministic, low entropy)."""
        words = _WORDS
        out = []
        length = self.uniform_int(min_len, max_len)
        while sum(len(w) + 1 for w in out) < length:
            out.append(self.choice(words))
        return " ".join(out)


_WORDS = (
    "furiously", "quickly", "carefully", "slyly", "blithely", "ironic",
    "final", "pending", "express", "regular", "special", "bold", "even",
    "silent", "requests", "deposits", "accounts", "packages", "ideas",
    "theodolites", "instructions", "platelets", "foxes",
)
