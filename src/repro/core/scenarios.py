"""The nine update scenarios of the history generator (paper Table 1).

Probabilities follow Table 1; two entries are illegible in the available
copy of the paper (Update Supplier, Manipulate Order Data) and are
reconstructed so the mix sums to 1.0 — documented in DESIGN.md.  The "New
Customer" / "Select existing Customer" rows of Table 1 are conditional
sub-choices inside the New Order scenario (0.5 / 0.5).

Each scenario mutates the :class:`~repro.core.history.GeneratorStore` *and*
appends replayable operations to the current transaction, so the same
scenario stream can later populate any system under test (§4.1: a
system-independent intermediate result).

Operation tuples (the archive format):

* ``("insert", table, values_dict)``
* ``("update", table, key, changes_dict)`` — non-temporal update
* ``("seq_update", table, key, changes, period, lo, hi)``
* ``("seq_delete", table, key, period, lo, hi)``
* ``("delete", table, key)``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..engine.types import END_OF_TIME, Period
from .dbgen import (
    INSTRUCTIONS,
    PRIORITIES,
    SEGMENTS,
    SHIPMODES,
    retail_price,
    supplier_for_part,
)
from .history import GeneratorStore
from .rng import Rng


@dataclass
class ScenarioContext:
    """Mutable state threaded through scenario execution."""

    store: GeneratorStore
    rng: Rng
    day: int                      # current application-time day
    next_orderkey: int
    next_custkey: int
    part_count: int
    supplier_count: int
    ops: List[tuple] = field(default_factory=list)
    #: orders currently open ('O') / delivered with open receivable
    open_orders: List[int] = field(default_factory=list)
    receivable_orders: List[int] = field(default_factory=list)
    #: orderkey -> linenumbers, so scenarios avoid scanning all lineitems
    order_lines: Dict[int, List[int]] = field(default_factory=dict)
    executed: Dict[str, int] = field(default_factory=dict)
    skipped: Dict[str, int] = field(default_factory=dict)

    def emit(self, op: tuple):
        self.ops.append(op)

    def record(self, name, applied: bool):
        bucket = self.executed if applied else self.skipped
        bucket[name] = bucket.get(name, 0) + 1


# ---------------------------------------------------------------------------
# individual scenarios
# ---------------------------------------------------------------------------


def _lineitems_for_order(ctx: ScenarioContext, orderkey: int, tick: int):
    rng = ctx.rng
    count = rng.uniform_int(1, 7)
    totalprice = 0.0
    rows = []
    for linenumber in range(1, count + 1):
        partkey = rng.uniform_int(1, ctx.part_count)
        suppkey = supplier_for_part(
            partkey, rng.uniform_int(0, 3), ctx.supplier_count
        )
        quantity = rng.uniform_int(1, 50)
        extendedprice = round(quantity * retail_price(partkey), 2)
        discount = rng.uniform_int(0, 10) / 100.0
        tax = rng.uniform_int(0, 8) / 100.0
        values = {
            "l_orderkey": orderkey,
            "l_partkey": partkey,
            "l_suppkey": suppkey,
            "l_linenumber": linenumber,
            "l_quantity": float(quantity),
            "l_extendedprice": extendedprice,
            "l_discount": discount,
            "l_tax": tax,
            "l_returnflag": "N",
            "l_linestatus": "O",
            "l_shipdate": ctx.day + rng.uniform_int(1, 60),
            "l_commitdate": ctx.day + rng.uniform_int(14, 45),
            "l_receiptdate": ctx.day + rng.uniform_int(2, 90),
            "l_shipinstruct": rng.choice(INSTRUCTIONS),
            "l_shipmode": rng.choice(SHIPMODES),
            "l_comment": "pending line",
            "l_active_begin": ctx.day,
            "l_active_end": END_OF_TIME,
        }
        totalprice += extendedprice * (1 + tax) * (1 - discount)
        rows.append(values)
    return rows, round(totalprice, 2)


def new_order(ctx: ScenarioContext, tick: int) -> bool:
    """New Order (p=0.30): insert an order + lineitems, touching CUSTOMER
    either with an insert (new customer, 50%) or a balance update."""
    rng = ctx.rng
    customers = ctx.store.table("customer")
    if rng.random() < 0.5 or not customers.chains:
        custkey = ctx.next_custkey
        ctx.next_custkey += 1
        values = {
            "c_custkey": custkey,
            "c_name": f"Customer#{custkey:09d}",
            "c_address": "new customer address",
            "c_nationkey": rng.uniform_int(0, 24),
            "c_phone": "00-000-000-0000",
            "c_acctbal": round(rng.uniform(0.0, 9999.99), 2),
            "c_mktsegment": rng.choice(SEGMENTS),
            "c_comment": "joined during history",
            "c_visible_begin": ctx.day,
            "c_visible_end": END_OF_TIME,
        }
        customers.insert(values, tick)
        ctx.emit(("insert", "customer", values))
    else:
        keys = customers.live_keys()
        custkey = keys[rng.skewed_index(len(keys))][0]
        delta = round(rng.uniform(-500.0, 500.0), 2)
        chain = customers.chain((custkey,))
        base = chain.tail.values["c_acctbal"] if chain and chain.tail else 0.0
        changes = {"c_acctbal": round(base + delta, 2)}
        portion = Period(ctx.day, END_OF_TIME)
        customers.sequenced_update(
            (custkey,), changes, portion, tick, period_name="visible_time",
            overwrite=True,
        )
        ctx.emit(
            ("seq_update", "customer", (custkey,), changes, "visible_time",
             ctx.day, END_OF_TIME)
        )

    orderkey = ctx.next_orderkey
    ctx.next_orderkey += 1
    lineitems, totalprice = _lineitems_for_order(ctx, orderkey, tick)
    order = {
        "o_orderkey": orderkey,
        "o_custkey": custkey,
        "o_orderstatus": "O",
        "o_totalprice": totalprice,
        "o_orderdate": ctx.day,
        "o_orderpriority": rng.choice(PRIORITIES),
        "o_clerk": f"Clerk#{rng.uniform_int(1, 1000):09d}",
        "o_shippriority": 0,
        "o_comment": "history order",
        "o_active_begin": ctx.day,
        "o_active_end": END_OF_TIME,
        "o_receivable_begin": END_OF_TIME - 1,
        "o_receivable_end": END_OF_TIME,
    }
    ctx.store.table("orders").insert(order, tick)
    ctx.emit(("insert", "orders", order))
    lineitem_table = ctx.store.table("lineitem")
    ctx.order_lines[orderkey] = []
    for values in lineitems:
        lineitem_table.insert(values, tick)
        ctx.emit(("insert", "lineitem", values))
        ctx.order_lines[orderkey].append(values["l_linenumber"])
    ctx.open_orders.append(orderkey)
    return True


def cancel_order(ctx: ScenarioContext, tick: int) -> bool:
    """Cancel Order (p=0.05): delete an open order and its lineitems."""
    if not ctx.open_orders:
        return False
    rng = ctx.rng
    index = rng.uniform_int(0, len(ctx.open_orders) - 1)
    orderkey = ctx.open_orders.pop(index)
    orders = ctx.store.table("orders")
    if orders.chain((orderkey,)) is None:
        return False
    orders.delete((orderkey,), tick)
    ctx.emit(("delete", "orders", (orderkey,)))
    lineitems = ctx.store.table("lineitem")
    for linenumber in ctx.order_lines.pop(orderkey, []):
        key = (orderkey, linenumber)
        if lineitems.chain(key) is not None:
            lineitems.delete(key, tick)
            ctx.emit(("delete", "lineitem", key))
    return True


def deliver_order(ctx: ScenarioContext, tick: int) -> bool:
    """Deliver Order (p=0.25): close the active period, open the
    receivable period, flip statuses."""
    if not ctx.open_orders:
        return False
    rng = ctx.rng
    index = rng.uniform_int(0, len(ctx.open_orders) - 1)
    orderkey = ctx.open_orders.pop(index)
    orders = ctx.store.table("orders")
    chain = orders.chain((orderkey,))
    if chain is None or chain.head is None:
        return False
    begin = chain.head.values["o_active_begin"]
    day = max(ctx.day, begin + 1)
    changes = {
        "o_orderstatus": "F",
        "o_active_end": day,
        "o_receivable_begin": day,
        "o_receivable_end": END_OF_TIME,
    }
    orders.nontemporal_update((orderkey,), changes, tick)
    ctx.emit(("update", "orders", (orderkey,), changes))
    # roughly half of the lineitems get their final status recorded now
    lineitems = ctx.store.table("lineitem")
    for linenumber in ctx.order_lines.get(orderkey, []):
        key = (orderkey, linenumber)
        if lineitems.chain(key) is None or rng.random() < 0.5:
            continue
        line_changes = {
            "l_linestatus": "F",
            "l_returnflag": rng.choice("RAN"),
            "l_receiptdate": day,
            "l_active_end": day,
        }
        lineitems.nontemporal_update(key, line_changes, tick)
        ctx.emit(("update", "lineitem", key, line_changes))
    ctx.receivable_orders.append(orderkey)
    return True


def receive_payment(ctx: ScenarioContext, tick: int) -> bool:
    """Receive Payment (p=0.20): close the receivable period; book the
    amount on the customer's balance (an app-time CUSTOMER update)."""
    if not ctx.receivable_orders:
        return False
    rng = ctx.rng
    index = rng.uniform_int(0, len(ctx.receivable_orders) - 1)
    orderkey = ctx.receivable_orders.pop(index)
    orders = ctx.store.table("orders")
    chain = orders.chain((orderkey,))
    if chain is None or chain.head is None:
        return False
    values = chain.head.values
    day = max(ctx.day, values["o_receivable_begin"] + 1)
    if rng.random() < 0.5:
        changes = {"o_receivable_end": day}
        orders.nontemporal_update((orderkey,), changes, tick)
        ctx.emit(("update", "orders", (orderkey,), changes))
    custkey = values["o_custkey"]
    customers = ctx.store.table("customer")
    cust_chain = customers.chain((custkey,))
    if cust_chain is not None and cust_chain.tail is not None:
        base = cust_chain.tail.values["c_acctbal"]
        changes = {"c_acctbal": round(base - values["o_totalprice"], 2)}
        customers.sequenced_update(
            (custkey,), changes, Period(day, END_OF_TIME), tick,
            period_name="visible_time", overwrite=True,
        )
        ctx.emit(
            ("seq_update", "customer", (custkey,), changes, "visible_time",
             day, END_OF_TIME)
        )
    return True


def update_stock(ctx: ScenarioContext, tick: int) -> bool:
    """Update Stock (p=0.05): new available quantity from today onwards."""
    rng = ctx.rng
    partsupp = ctx.store.table("partsupp")
    keys = partsupp.live_keys()
    if not keys:
        return False
    key = keys[rng.skewed_index(len(keys))]
    changes = {"ps_availqty": rng.uniform_int(0, 9999)}
    portion = Period(ctx.day, END_OF_TIME)
    partsupp.sequenced_update(
        key, changes, portion, tick, period_name="validity_time", overwrite=True
    )
    ctx.emit(("seq_update", "partsupp", key, changes, "validity_time",
              ctx.day, END_OF_TIME))
    return True


def delay_availability(ctx: ScenarioContext, tick: int) -> bool:
    """Delay Availability (p=0.05): punch an unavailability window into a
    part's availability period (an app-time overwrite on PART)."""
    rng = ctx.rng
    parts = ctx.store.table("part")
    keys = parts.live_keys()
    if not keys:
        return False
    key = keys[rng.skewed_index(len(keys))]
    gap_begin = ctx.day + rng.uniform_int(0, 14)
    gap_end = gap_begin + rng.uniform_int(7, 30)
    affected = parts.sequenced_delete(
        key, Period(gap_begin, gap_end), tick, period_name="availability_time"
    )
    if not affected:
        return False
    ctx.emit(("seq_delete", "part", key, "availability_time", gap_begin, gap_end))
    return True


def change_price(ctx: ScenarioContext, tick: int) -> bool:
    """Change Price by Supplier (p=0.05): new supply cost from today on."""
    rng = ctx.rng
    partsupp = ctx.store.table("partsupp")
    keys = partsupp.live_keys()
    if not keys:
        return False
    key = keys[rng.skewed_index(len(keys))]
    chain = partsupp.chain(key)
    base = chain.tail.values["ps_supplycost"] if chain and chain.tail else 100.0
    factor = 1.0 + rng.uniform(-0.15, 0.15)
    changes = {"ps_supplycost": round(max(0.01, base * factor), 2)}
    portion = Period(ctx.day, END_OF_TIME)
    partsupp.sequenced_update(
        key, changes, portion, tick, period_name="validity_time", overwrite=True
    )
    ctx.emit(("seq_update", "partsupp", key, changes, "validity_time",
              ctx.day, END_OF_TIME))
    return True


def update_supplier(ctx: ScenarioContext, tick: int) -> bool:
    """Update Supplier (p=0.04): balance/address change on the degenerate
    (system-time-only) SUPPLIER table."""
    rng = ctx.rng
    suppliers = ctx.store.table("supplier")
    keys = suppliers.live_keys()
    if not keys:
        return False
    key = keys[rng.skewed_index(len(keys))]
    changes = {"s_acctbal": round(rng.uniform(-999.99, 9999.99), 2)}
    if rng.random() < 0.25:
        changes["s_address"] = f"relocated on day {ctx.day}"
    suppliers.nontemporal_update(key, changes, tick)
    ctx.emit(("update", "supplier", key, changes))
    return True


def manipulate_order(ctx: ScenarioContext, tick: int) -> bool:
    """Manipulate Order Data (p=0.01): retroactive correction of an order,
    overwriting part of its recorded active period."""
    rng = ctx.rng
    orders = ctx.store.table("orders")
    keys = orders.live_keys()
    if not keys:
        return False
    key = keys[rng.skewed_index(len(keys))]
    chain = orders.chain(key)
    if chain is None or chain.head is None:
        return False
    begin = chain.head.values["o_active_begin"]
    changes = {"o_orderpriority": rng.choice(PRIORITIES),
               "o_clerk": f"Clerk#{rng.uniform_int(1, 1000):09d}"}
    portion = Period(begin, begin + rng.uniform_int(3, 10))
    orders.sequenced_update(
        key, changes, portion, tick, period_name="active_time", overwrite=True
    )
    ctx.emit(("seq_update", "orders", key, changes, "active_time",
              portion.begin, portion.end))
    return True


@dataclass(frozen=True)
class Scenario:
    name: str
    probability: float
    run: Callable[[ScenarioContext, int], bool]


#: Table 1 of the paper (see module docstring for the reconstruction note)
SCENARIOS: Tuple[Scenario, ...] = (
    Scenario("new_order", 0.30, new_order),
    Scenario("cancel_order", 0.05, cancel_order),
    Scenario("deliver_order", 0.25, deliver_order),
    Scenario("receive_payment", 0.20, receive_payment),
    Scenario("update_stock", 0.05, update_stock),
    Scenario("delay_availability", 0.05, delay_availability),
    Scenario("change_price", 0.05, change_price),
    Scenario("update_supplier", 0.04, update_supplier),
    Scenario("manipulate_order", 0.01, manipulate_order),
)


def scenario_table() -> List[Tuple[str, float]]:
    """(name, probability) pairs — reproduces Table 1."""
    return [(s.name, s.probability) for s in SCENARIOS]


def pick_scenario(rng: Rng) -> Scenario:
    return rng.weighted_choice(SCENARIOS, [s.probability for s in SCENARIOS])
