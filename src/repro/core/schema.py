"""The TPC-BiH schema (paper Fig 1).

TPC-H extended with temporal columns so that *"any query defined on the
TPC-H schema can run on our benchmark"* (§3.1).  Temporal specialisation per
table:

* REGION, NATION — unversioned (*"this information rarely changes"*);
* SUPPLIER — degenerate: only a system time, which doubles as its
  application time;
* PART (availability_time), PARTSUPP (validity_time), CUSTOMER
  (visible_time), LINEITEM (active_time) — fully bitemporal with one
  application period;
* ORDERS — bitemporal with **two** application periods: active_time (order
  placed but not delivered) and receivable_time (invoiced but not paid).

Every period maps to a (begin, end) column pair; system-time columns are
uniformly named ``sys_begin`` / ``sys_end``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..engine.catalog import Column, PeriodDef, TableSchema
from ..engine.types import SqlType

_I = SqlType.INTEGER
_D = SqlType.DECIMAL
_S = SqlType.VARCHAR
_DATE = SqlType.DATE
_TS = SqlType.TIMESTAMP


def _sys_cols():
    return [Column("sys_begin", _TS), Column("sys_end", _TS)]


def _sys_period():
    return PeriodDef("system_time", "sys_begin", "sys_end", is_system=True)


def region_schema() -> TableSchema:
    return TableSchema(
        "region",
        [
            Column("r_regionkey", _I, nullable=False),
            Column("r_name", _S),
            Column("r_comment", _S),
        ],
        primary_key=("r_regionkey",),
    )


def nation_schema() -> TableSchema:
    return TableSchema(
        "nation",
        [
            Column("n_nationkey", _I, nullable=False),
            Column("n_name", _S),
            Column("n_regionkey", _I),
            Column("n_comment", _S),
        ],
        primary_key=("n_nationkey",),
    )


def supplier_schema() -> TableSchema:
    """Degenerate temporal table: system time only (§3.1)."""
    return TableSchema(
        "supplier",
        [
            Column("s_suppkey", _I, nullable=False),
            Column("s_name", _S),
            Column("s_address", _S),
            Column("s_nationkey", _I),
            Column("s_phone", _S),
            Column("s_acctbal", _D),
            Column("s_comment", _S),
        ]
        + _sys_cols(),
        primary_key=("s_suppkey",),
        periods=[_sys_period()],
    )


def part_schema() -> TableSchema:
    return TableSchema(
        "part",
        [
            Column("p_partkey", _I, nullable=False),
            Column("p_name", _S),
            Column("p_mfgr", _S),
            Column("p_brand", _S),
            Column("p_type", _S),
            Column("p_size", _I),
            Column("p_container", _S),
            Column("p_retailprice", _D),
            Column("p_comment", _S),
            Column("p_avail_begin", _DATE),
            Column("p_avail_end", _DATE),
        ]
        + _sys_cols(),
        primary_key=("p_partkey",),
        periods=[
            PeriodDef("availability_time", "p_avail_begin", "p_avail_end"),
            _sys_period(),
        ],
    )


def partsupp_schema() -> TableSchema:
    return TableSchema(
        "partsupp",
        [
            Column("ps_partkey", _I, nullable=False),
            Column("ps_suppkey", _I, nullable=False),
            Column("ps_availqty", _I),
            Column("ps_supplycost", _D),
            Column("ps_comment", _S),
            Column("ps_valid_begin", _DATE),
            Column("ps_valid_end", _DATE),
        ]
        + _sys_cols(),
        primary_key=("ps_partkey", "ps_suppkey"),
        periods=[
            PeriodDef("validity_time", "ps_valid_begin", "ps_valid_end"),
            _sys_period(),
        ],
    )


def customer_schema() -> TableSchema:
    return TableSchema(
        "customer",
        [
            Column("c_custkey", _I, nullable=False),
            Column("c_name", _S),
            Column("c_address", _S),
            Column("c_nationkey", _I),
            Column("c_phone", _S),
            Column("c_acctbal", _D),
            Column("c_mktsegment", _S),
            Column("c_comment", _S),
            Column("c_visible_begin", _DATE),
            Column("c_visible_end", _DATE),
        ]
        + _sys_cols(),
        primary_key=("c_custkey",),
        periods=[
            PeriodDef("visible_time", "c_visible_begin", "c_visible_end"),
            _sys_period(),
        ],
    )


def orders_schema() -> TableSchema:
    """The multi-application-time case of §3.1."""
    return TableSchema(
        "orders",
        [
            Column("o_orderkey", _I, nullable=False),
            Column("o_custkey", _I),
            Column("o_orderstatus", _S),
            Column("o_totalprice", _D),
            Column("o_orderdate", _DATE),
            Column("o_orderpriority", _S),
            Column("o_clerk", _S),
            Column("o_shippriority", _I),
            Column("o_comment", _S),
            Column("o_active_begin", _DATE),
            Column("o_active_end", _DATE),
            Column("o_receivable_begin", _DATE),
            Column("o_receivable_end", _DATE),
        ]
        + _sys_cols(),
        primary_key=("o_orderkey",),
        periods=[
            PeriodDef("active_time", "o_active_begin", "o_active_end"),
            PeriodDef("receivable_time", "o_receivable_begin", "o_receivable_end"),
            _sys_period(),
        ],
    )


def lineitem_schema() -> TableSchema:
    return TableSchema(
        "lineitem",
        [
            Column("l_orderkey", _I, nullable=False),
            Column("l_partkey", _I),
            Column("l_suppkey", _I),
            Column("l_linenumber", _I, nullable=False),
            Column("l_quantity", _D),
            Column("l_extendedprice", _D),
            Column("l_discount", _D),
            Column("l_tax", _D),
            Column("l_returnflag", _S),
            Column("l_linestatus", _S),
            Column("l_shipdate", _DATE),
            Column("l_commitdate", _DATE),
            Column("l_receiptdate", _DATE),
            Column("l_shipinstruct", _S),
            Column("l_shipmode", _S),
            Column("l_comment", _S),
            Column("l_active_begin", _DATE),
            Column("l_active_end", _DATE),
        ]
        + _sys_cols(),
        primary_key=("l_orderkey", "l_linenumber"),
        periods=[
            PeriodDef("active_time", "l_active_begin", "l_active_end"),
            _sys_period(),
        ],
    )


def benchmark_schemas() -> List[TableSchema]:
    """All eight TPC-BiH table schemas in load order."""
    return [
        region_schema(),
        nation_schema(),
        supplier_schema(),
        part_schema(),
        partsupp_schema(),
        customer_schema(),
        orders_schema(),
        lineitem_schema(),
    ]


#: tables that carry a system-time period
VERSIONED_TABLES = ("supplier", "part", "partsupp", "customer", "orders", "lineitem")

#: application-period name per table (first one for ORDERS)
APP_PERIODS: Dict[str, Optional[str]] = {
    "region": None,
    "nation": None,
    "supplier": None,  # degenerate: system time doubles as app time
    "part": "availability_time",
    "partsupp": "validity_time",
    "customer": "visible_time",
    "orders": "active_time",
    "lineitem": "active_time",
}


def create_benchmark_tables(db, temporal=True) -> None:
    """Create the benchmark tables in *db*.

    With ``temporal=False`` the period columns are stripped — the
    non-temporal baseline of §5.4, which *"contains the same data as the
    selected version"*.
    """
    for schema in benchmark_schemas():
        db.create_table(schema if temporal else schema.without_periods())


def nontemporal_schemas() -> List[TableSchema]:
    return [schema.without_periods() for schema in benchmark_schemas()]
