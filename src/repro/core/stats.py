"""Operation-mix accounting — reproduces the paper's Table 2.

Table 2 reports, per table and per million scenarios: application-time
inserts/updates, non-temporal inserts/updates, deletes, the history growth
ratio (history operations per initial tuple at ``h = m``), and whether
existing application-time periods get overwritten.
"""

from __future__ import annotations

from typing import Dict, List

from .generator import GeneratedWorkload

TABLE_ORDER = [
    "nation",
    "region",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "lineitem",
    "orders",
]


def operations_table(workload: GeneratedWorkload) -> List[dict]:
    """One row per table with the Table 2 columns."""
    rows = []
    for name in TABLE_ORDER:
        table = workload.store.table(name)
        stats = table.stats
        initial = table.initial_count
        history_ops = stats.total()
        growth = history_ops / initial if initial else 0.0
        rows.append(
            {
                "table": name,
                "app_time_insert": stats.app_time_inserts,
                "app_time_update": stats.app_time_updates,
                "nontemporal_insert": stats.nontemporal_inserts,
                "nontemporal_update": stats.nontemporal_updates,
                "delete": stats.deletes,
                "history_growth_ratio": round(growth, 3),
                "overwrite_app_time": stats.app_time_overwrites > 0,
            }
        )
    return rows


def insert_update_shares(workload: GeneratedWorkload) -> Dict[str, Dict[str, float]]:
    """Fraction of inserts / updates / deletes per table (the §3.2 claims:
    LINEITEM insert-dominated, CUSTOMER update-dominated, ...)."""
    shares = {}
    for row in operations_table(workload):
        total = (
            row["app_time_insert"]
            + row["app_time_update"]
            + row["nontemporal_insert"]
            + row["nontemporal_update"]
            + row["delete"]
        )
        if total == 0:
            shares[row["table"]] = {"insert": 0.0, "update": 0.0, "delete": 0.0}
            continue
        shares[row["table"]] = {
            "insert": (row["app_time_insert"] + row["nontemporal_insert"]) / total,
            "update": (row["app_time_update"] + row["nontemporal_update"]) / total,
            "delete": row["delete"] / total,
        }
    return shares


def format_operations_table(workload: GeneratedWorkload) -> str:
    """ASCII rendering in the paper's Table 2 layout."""
    rows = operations_table(workload)
    header = (
        f"{'Table':<10} {'AppIns':>8} {'AppUpd':>8} {'NTIns':>8} "
        f"{'NTUpd':>8} {'Delete':>8} {'Growth':>8} {'Overwr':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['table']:<10} {row['app_time_insert']:>8} "
            f"{row['app_time_update']:>8} {row['nontemporal_insert']:>8} "
            f"{row['nontemporal_update']:>8} {row['delete']:>8} "
            f"{row['history_growth_ratio']:>8.3f} "
            f"{'yes' if row['overwrite_app_time'] else 'no':>7}"
        )
    return "\n".join(lines)


def scenario_mix(workload: GeneratedWorkload) -> Dict[str, float]:
    """Observed scenario frequencies (validates Table 1 probabilities)."""
    counts: Dict[str, int] = {}
    for name, _applied in workload.scenario_log:
        counts[name] = counts.get(name, 0) + 1
    total = max(1, len(workload.scenario_log))
    return {name: count / total for name, count in sorted(counts.items())}
