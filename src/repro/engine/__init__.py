"""The embedded bitemporal relational engine.

Public surface:

* :class:`Database` — create tables, run SQL, manage transactions
* :func:`repro.engine.dbapi.connect` — PEP 249 driver
* :mod:`repro.engine.types` — Period, END_OF_TIME, date conversions
"""

from .catalog import Catalog, Column, IndexDef, PeriodDef, TableSchema
from .database import ArchitectureProfile, Database
from .storage.versioned import StorageOptions, VersionedTable
from .types import ALL_TIME, END_OF_TIME, Period, SqlType, date_to_day, day_to_date

__all__ = [
    "Database",
    "ArchitectureProfile",
    "StorageOptions",
    "VersionedTable",
    "Catalog",
    "Column",
    "IndexDef",
    "PeriodDef",
    "TableSchema",
    "SqlType",
    "Period",
    "ALL_TIME",
    "END_OF_TIME",
    "date_to_day",
    "day_to_date",
]
