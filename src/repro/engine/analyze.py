"""Static semantic analyzer: temporal query lint over the logical plan IR.

The paper's headline finding is that innocuous workload variations cause
order-of-magnitude slowdowns — history access costs 26x/73x/7x/2.1x over
current-data access across the four commercial systems (PAPER.md §5) —
and most of those cliffs are *statically detectable* from the query shape
before execution.  This module walks the logical plan **after** rewrite
(so pushdown has already decided which conjuncts reach which scan, exactly
the index-vs-scan boundary of §5.3.3) and emits structured diagnostics
without executing anything.

Each diagnostic carries a stable code (``TQ001``..), a severity, the plan
node path, and — thanks to the token spans the parser threads onto AST
nodes — the line/column and source fragment of the offending SQL text.

Severities:

* ``error`` — the query is almost certainly wrong (contradictory range,
  duplicate temporal clause);
* ``warning`` — the shape silently changes semantics or falls off a
  measured performance cliff that a rewrite would avoid;
* ``info`` — the cost is real but often deliberate (the benchmark's own
  time-travel queries scan history on purpose), so figure runs report it
  without failing anything.

Per-archetype gating: ``ArchitectureProfile.lint_suppressions`` lists
codes that do not apply to a system — System D's implicit time travel
(§5.8) legitimately omits the predicates System A must spell out.

Entry points: :func:`analyze_sql` / :func:`analyze_select`; surfaced as
``EXPLAIN (LINT)`` in the session layer and ``repro lint`` in the CLI.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .analyze_domains import scan_domain_map
from .errors import CatalogError, PlanError, ProgrammingError
from .plan.logical import (
    LogicalAlignJoin,
    LogicalDerived,
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalProduct,
    LogicalScan,
    build_logical,
    collect_column_refs,
    split_conjuncts,
)
from .plan.rewrite import (
    conjunct_bindings,
    match_align_join_rewrite,
    match_temporal_aggregate_rewrite,
    rewrite_logical,
)
from .sql import ast
from .sql.lexer import line_col
from .sql.parser import parse_statement
from .types import SqlType, date_to_day

SEVERITIES = ("info", "warning", "error")
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")
_FRAGMENT_LIMIT = 48

#: plausible day-number window for TQ013 (years 1900..2199).  Dates are
#: integers counting days from the 1992 epoch, so a numeric literal far
#: outside this window — most often a ``yyyymmdd`` integer like 20200101
#: — can never match a date column.  System-time columns are exempt:
#: they hold small logical commit ticks, not day numbers.
_DAY_DOMAIN = (
    date_to_day(datetime.date(1900, 1, 1)),
    date_to_day(datetime.date(2199, 12, 31)),
)

#: coarse comparability classes for TQ011 — types in the same category
#: compare meaningfully, types across categories do not.
_TYPE_CATEGORY = {
    SqlType.INTEGER: "numeric",
    SqlType.DECIMAL: "numeric",
    SqlType.VARCHAR: "string",
    SqlType.BOOLEAN: "boolean",
    SqlType.DATE: "date",
    SqlType.TIMESTAMP: "timestamp",
}


# ---------------------------------------------------------------------------
# rule registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """One analyzer rule: identity, severity and its paper grounding."""

    code: str
    name: str
    severity: str
    summary: str
    paper: str  # the measurement/section that motivates the rule
    hint: str  # suggested fix, shown with every diagnostic


_RULE_LIST = (
    Rule(
        "TQ001",
        "full-history-scan",
        "info",
        "FOR SYSTEM_TIME ALL reads the entire history partition",
        "§5.5: history access costs 26x/73x/7x/2.1x over current data",
        "bound the range (AS OF / FROM..TO) if the full history is not needed",
    ),
    Rule(
        "TQ002",
        "explicit-current-as-of",
        "warning",
        "AS OF <current time> spelled explicitly forces a history probe",
        "§5.5 Fig 6: explicit current timestamps lose the current-partition "
        "pruning that implicit time travel gets for free",
        "drop the temporal clause (implicit current) or use a parameter the "
        "planner can prune",
    ),
    Rule(
        "TQ003",
        "non-sargable-temporal",
        "warning",
        "expression wraps a period column, defeating timeline/R-tree indexes",
        "§5.3.3: indexes only help very selective predicates; a wrapped "
        "column is never matched to an index at all",
        "rewrite so the bare period column stands alone on one side of the "
        "comparison",
    ),
    Rule(
        "TQ004",
        "contradictory-temporal-range",
        "error",
        "temporal range is empty (lower bound not below upper bound)",
        "SQL:2011 period semantics: FROM..TO is half-open, BETWEEN closed",
        "swap or widen the bounds; an empty range returns no versions",
    ),
    Rule(
        "TQ005",
        "left-join-filter-degeneration",
        "warning",
        "WHERE filter on the NULL-extended side degenerates LEFT JOIN to INNER",
        "§5.6: the TPC-H Q13 pattern — the predicate belongs in the ON clause",
        "move the predicate into the join's ON clause or guard it with IS NULL",
    ),
    Rule(
        "TQ006",
        "cartesian-product",
        "warning",
        "FROM units have no connecting join predicate",
        "§5.6: join order and edges decide intermediate sizes; a cross "
        "product is quadratic before the first filter runs",
        "add the missing join predicate between the disconnected tables",
    ),
    Rule(
        "TQ007",
        "unindexed-history-probe",
        "info",
        "key-in-time probe reaches a history partition with no matching index",
        "§5.3.3: the history partition is scanned unless an index on the "
        "probe column covers it",
        "CREATE INDEX ... ON <table> HISTORY (<column>) to cover the probe",
    ),
    Rule(
        "TQ008",
        "simulated-application-time",
        "info",
        "application-time clause on an archetype without native support",
        "§2.6: System C has no specific support for application time; the "
        "clause is rewritten into plain column predicates",
        "expect plain-predicate performance, not period-index performance",
    ),
    Rule(
        "TQ009",
        "duplicate-temporal-clause",
        "error",
        "two temporal clauses resolve to the same period of one table",
        "SQL:2011 allows at most one clause per period per table reference",
        "keep a single clause per period",
    ),
    Rule(
        "TQ010",
        "history-star-projection",
        "info",
        "SELECT * over history versions returns duplicate business keys",
        "§5.2: versioned tables hold many rows per key; * exposes all of "
        "them plus the period columns",
        "project explicit columns (and version timestamps if wanted)",
    ),
    Rule(
        "TQ011",
        "join-type-mismatch",
        "warning",
        "join predicate compares columns of incompatible types",
        "§5.6: join edges decide intermediate sizes; a mistyped edge can "
        "never use an index probe and usually selects nothing",
        "join on columns of the same domain, or cast explicitly so the "
        "mismatch is deliberate",
    ),
    Rule(
        "TQ012",
        "cross-period-join",
        "error",
        "application-period column compared against a system-period column",
        "§2/§4: application time counts days, system time counts commit "
        "ticks — the domains never align, so the comparison is meaningless",
        "compare application periods with application periods and system "
        "periods with system periods",
    ),
    Rule(
        "TQ013",
        "temporal-literal-domain",
        "warning",
        "date/period column compared against a literal outside the date domain",
        "§4: application time counts days since the epoch; a bare numeric "
        "literal outside the day-number window (e.g. a yyyymmdd integer) "
        "matches nothing — the predicate silently selects an empty range",
        "write the bound as DATE '...' so the literal lives in the column's "
        "day-number domain",
    ),
    Rule(
        "TQ014",
        "subsumed-temporal-constraint",
        "warning",
        "temporal predicate is implied by the other constraints on its column",
        "§5.5: every redundant period predicate is another chance to fall "
        "off the history-access cliff; the interval domain proves this one "
        "adds nothing",
        "drop the wider predicate — the remaining constraints already imply it",
    ),
    Rule(
        "TQ015",
        "contradictory-constraints",
        "error",
        "temporal constraints are contradictory: the query provably returns "
        "no rows",
        "interval-domain analysis: the intersection of the clause and "
        "predicate intervals on one period column is empty",
        "widen or fix the bounds; as written the scan can never match a "
        "version",
    ),
    Rule(
        "TQ016",
        "tautological-temporal-clause",
        "warning",
        "temporal constraint spans the column's whole recorded domain",
        "§5.5: a clause wider than the stats min/max selects everything "
        "anyway — it only forces the history partition to be read",
        "drop the constraint, or narrow it to the range actually needed",
    ),
    Rule(
        "TQ017",
        "rewrite-shaped-temporal-operator",
        "info",
        "query spells a native temporal operator as its SQL:2011 rewrite",
        "§5.6/§5.7: the boundaries-self-join aggregation and the "
        "inequality-pair overlap join cost orders of magnitude more than "
        "the native sweep operators this engine provides",
        "use GROUP BY TEMPORAL(<period>) or TEMPORAL JOIN, or run on a "
        "profile with the 'temporal-fusion' rewrite enabled",
    ),
)

RULES: Dict[str, Rule] = {rule.code: rule for rule in _RULE_LIST}


# ---------------------------------------------------------------------------
# diagnostics
# ---------------------------------------------------------------------------


@dataclass
class Diagnostic:
    """One analyzer finding, source-anchored when spans are available."""

    code: str
    severity: str
    message: str
    hint: str
    plan_path: str
    span: Optional[Tuple[int, int]] = None
    line: Optional[int] = None
    column: Optional[int] = None
    fragment: Optional[str] = None

    @property
    def rule(self) -> Rule:
        return RULES[self.code]

    def render(self) -> str:
        where = f"{self.line}:{self.column}: " if self.line is not None else ""
        out = f"{self.severity}[{self.code}] {where}{self.message}"
        if self.fragment:
            out += f"  <{self.fragment}>"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out


def analyze_sql(db, sql: str, profile=None) -> List[Diagnostic]:
    """Parse *sql* and statically analyze it (SELECT / EXPLAIN ... SELECT)."""
    stmt = parse_statement(sql)
    if isinstance(stmt, ast.Explain):
        stmt = stmt.statement
    if not isinstance(stmt, ast.Select):
        raise ProgrammingError("the analyzer only lints SELECT statements")
    return analyze_select(db, stmt, sql=sql, profile=profile)


def analyze_select(db, select: ast.Select, sql=None, profile=None) -> List[Diagnostic]:
    """Analyze an already-parsed SELECT against *db*'s catalog and profile."""
    profile = profile if profile is not None else getattr(db, "profile", None)
    analysis = _Analysis(db, profile, sql)
    analysis.check_select(select, "query")
    return analysis.finish()


# ---------------------------------------------------------------------------
# the walker
# ---------------------------------------------------------------------------


class _Analysis:
    def __init__(self, db, profile, sql):
        self.db = db
        self.profile = profile
        self.sql = sql
        self.diagnostics: List[Diagnostic] = []
        self.suppressed: Set[str] = set(
            getattr(profile, "lint_suppressions", ()) or ()
        )

    # -- emission --------------------------------------------------------

    def emit(self, code, message, node=None, path="query"):
        if code in self.suppressed:
            return
        rule = RULES[code]
        span = ast.span_of(node) if node is not None else None
        line = column = fragment = None
        if span is not None and self.sql:
            line, column = line_col(self.sql, span[0])
            text = " ".join(self.sql[span[0]:span[1]].split())
            if len(text) > _FRAGMENT_LIMIT:
                text = text[:_FRAGMENT_LIMIT] + "..."
            fragment = text or None
        self.diagnostics.append(
            Diagnostic(
                code=code,
                severity=rule.severity,
                message=message,
                hint=rule.hint,
                plan_path=path,
                span=span,
                line=line,
                column=column,
                fragment=fragment,
            )
        )

    def finish(self) -> List[Diagnostic]:
        self.diagnostics.sort(
            key=lambda d: (
                -_SEVERITY_RANK[d.severity],
                d.code,
                d.span[0] if d.span else 1 << 30,
            )
        )
        return self.diagnostics

    # -- traversal -------------------------------------------------------

    def check_select(self, select: ast.Select, path: str):
        core = select
        index = 0
        while core is not None:
            core_path = path if index == 0 else f"{path}/union[{index}]"
            self.check_core(core, core_path)
            core = core.set_op[1] if core.set_op is not None else None
            index += 1

    def check_core(self, select: ast.Select, path: str):
        try:
            query = build_logical(select, self.db)
            # lint the pre-pruning plan: constraint pruning would delete
            # exactly the evidence TQ014/TQ015/TQ016 report on
            query = rewrite_logical(
                query, self.db, self.profile, exclude=("constraint-pruning",)
            )
        except (CatalogError, PlanError, ProgrammingError):
            # lowering/execution reports these as hard errors; there is no
            # plan shape to lint
            self._recurse_subqueries(select, path)
            return
        relation = query.relation
        self._check_native_operators(query.select, relation, path)
        self._check_scans(relation, path)
        self._check_sargability(relation, path)
        self._check_left_join_filters(relation, path)
        self._check_connectivity(relation, path)
        self._check_join_predicates(relation, path)
        self._check_literal_domains(relation, path)
        self._check_domains(relation, path)
        self._check_projection(select, relation, path)
        for derived in _derived_in(relation):
            self.check_select(derived.select, f"{path}/derived:{derived.alias}")
        self._recurse_subqueries(select, path)

    def _recurse_subqueries(self, select: ast.Select, path: str):
        count = 0
        for expr in _expressions_of(select):
            for node in ast.walk_expr(expr):
                if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
                    self.check_select(node.subquery, f"{path}/subquery[{count}]")
                    count += 1

    # -- native temporal operators (TQ017) --------------------------------

    def _check_native_operators(self, select: ast.Select, relation, path: str):
        """Flag rewrite shapes the native operators replace.

        Runs on the *post*-rewrite plan: on a profile with the
        ``temporal-fusion`` rule the shape has already been fused into
        :class:`LogicalTemporalAggregate` / :class:`LogicalAlignJoin`, the
        matchers see nothing, and the rule is automatically silent.
        """
        if match_temporal_aggregate_rewrite(select, relation) is not None:
            self.emit(
                "TQ017",
                "boundaries-self-join temporal aggregation could use the "
                "native sweep operator (GROUP BY TEMPORAL(...))",
                select,
                path,
            )
        elif match_align_join_rewrite(select, relation) is not None:
            self.emit(
                "TQ017",
                "inequality-pair overlap join could use the native "
                "period-align operator (TEMPORAL JOIN)",
                select,
                path,
            )

    # -- per-scan rules (TQ001/TQ002/TQ004/TQ007/TQ008/TQ009) -------------

    def _check_scans(self, relation: LogicalNode, path: str):
        for scan in _scans_in(relation):
            scan_path = f"{path}/scan:{scan.binding}"
            table = self._table_of(scan)
            has_split = bool(table is not None and table.has_split)
            seen_periods: Dict[Tuple[str, str], ast.TemporalClause] = {}
            for clause in scan.ref.temporal:
                period = _clause_period(scan.schema, clause)
                if period is None:
                    continue
                key = (period.begin_column, period.end_column)
                if key in seen_periods:
                    self.emit(
                        "TQ009",
                        f"table {scan.schema.name!r} has two temporal clauses "
                        f"for period {period.name!r}",
                        clause,
                        scan_path,
                    )
                else:
                    seen_periods[key] = clause
                self._check_range(scan, clause, period, scan_path)
                if period.is_system:
                    self._check_system_clause(
                        scan, clause, period, has_split, scan_path
                    )
                elif self.profile is not None and not getattr(
                    self.profile, "supports_application_time", True
                ):
                    self.emit(
                        "TQ008",
                        f"application-time clause on {scan.schema.name!r} is "
                        f"simulated on archetype "
                        f"{getattr(self.profile, 'name', '?')!r}",
                        clause,
                        scan_path,
                    )

    def _check_system_clause(self, scan, clause, period, has_split, scan_path):
        if clause.mode == "all" and has_split:
            self.emit(
                "TQ001",
                f"FOR SYSTEM_TIME ALL scans the full history of "
                f"{scan.schema.name!r}",
                clause,
                scan_path,
            )
        if (
            clause.mode == "as_of"
            and has_split
            and isinstance(clause.low, ast.Literal)
            and not getattr(self.profile, "prunes_explicit_current", False)
        ):
            try:
                is_current = clause.low.value >= self.db.now()
            except TypeError:
                is_current = False
            if is_current:
                self.emit(
                    "TQ002",
                    f"explicit AS OF the current time on {scan.schema.name!r} "
                    f"probes the history partition a bare reference would skip",
                    clause,
                    scan_path,
                )
        if has_split and getattr(self.profile, "uses_indexes", True):
            self._check_history_probe(scan, clause, scan_path)

    def _check_history_probe(self, scan, clause, scan_path):
        indexed = set()
        for index in self.db.catalog.indexes_on(scan.schema.name):
            if index.partition in ("history", "single"):
                indexed.add(index.columns[0])
        for conjunct in scan.pushed:
            column = _probe_column(conjunct, scan)
            if column is not None and column not in indexed:
                self.emit(
                    "TQ007",
                    f"probe on {scan.schema.name}.{column} reaches the "
                    f"history partition without a covering index",
                    conjunct,
                    scan_path,
                )

    def _check_range(self, scan, clause, period, scan_path):
        low = clause.low.value if isinstance(clause.low, ast.Literal) else None
        high = clause.high.value if isinstance(clause.high, ast.Literal) else None
        if low is None or high is None:
            return
        try:
            empty = (low >= high) if clause.mode == "from_to" else (
                (low > high) if clause.mode == "between" else False
            )
        except TypeError:
            return
        if empty:
            self.emit(
                "TQ004",
                f"temporal range on {scan.schema.name!r} is empty "
                f"({low!r} .. {high!r}, mode {clause.mode})",
                clause,
                scan_path,
            )

    # -- sargability (TQ003) ----------------------------------------------

    def _check_sargability(self, relation: LogicalNode, path: str):
        period_columns = self._period_columns(relation)
        if not period_columns:
            return
        for conjunct, where in _predicate_conjuncts(relation, path):
            sides = _comparison_sides(conjunct)
            for side in sides:
                if isinstance(side, ast.ColumnRef) or side is None:
                    continue
                wrapped = [
                    ref
                    for ref in collect_column_refs(side)
                    if _is_period_column(ref, period_columns)
                ]
                if wrapped:
                    ref = wrapped[0]
                    self.emit(
                        "TQ003",
                        f"period column {ref.name!r} is wrapped in an "
                        f"expression; the predicate cannot use a temporal index",
                        conjunct,
                        where,
                    )
                    break

    def _period_columns(self, relation) -> Dict[Optional[str], Set[str]]:
        """binding -> period column names (None key: unqualified lookup)."""
        out: Dict[Optional[str], Set[str]] = {None: set()}
        for scan in _scans_in(relation):
            cols = {
                col
                for period in scan.schema.periods
                for col in (period.begin_column, period.end_column)
            }
            out[scan.binding] = cols
            out[None] |= cols
        return out

    # -- LEFT JOIN hazards (TQ005) ----------------------------------------

    def _check_left_join_filters(self, relation: LogicalNode, path: str):
        for node in _nodes_in(relation):
            if not isinstance(node, LogicalFilter):
                continue
            null_sides = _null_extended_bindings(node.child)
            if not null_sides:
                continue
            units = list(_scans_in(node.child)) + list(_derived_in(node.child))
            for conjunct in split_conjuncts(node.predicate):
                if any(
                    isinstance(sub, ast.IsNull) and not sub.negated
                    for sub in ast.walk_expr(conjunct)
                ):
                    continue  # the anti-join idiom keeps NULL-extended rows
                bindings = conjunct_bindings(conjunct, units)
                if not bindings:
                    continue
                for side in null_sides:
                    if bindings <= side:
                        self.emit(
                            "TQ005",
                            "filter on the NULL-extended side of a LEFT JOIN "
                            "discards the NULL-extended rows (degenerates to "
                            "INNER JOIN)",
                            conjunct,
                            f"{path}/filter:{node.label}",
                        )
                        break

    # -- cartesian products (TQ006) ---------------------------------------

    def _check_connectivity(self, relation: LogicalNode, path: str):
        leaves = list(_scans_in(relation)) + list(_derived_in(relation))
        if len(leaves) < 2:
            return
        parent = {id(leaf): id(leaf) for leaf in leaves}

        def find(key):
            while parent[key] != key:
                parent[key] = parent[parent[key]]
                key = parent[key]
            return key

        def union(a, b):
            parent[find(a)] = find(b)

        by_binding = {}
        for leaf in leaves:
            for binding in leaf.bindings:
                by_binding[binding] = id(leaf)
        for conjunct, _where in _predicate_conjuncts(relation, path):
            bindings = conjunct_bindings(conjunct, leaves) or set()
            keys = sorted({by_binding[b] for b in bindings if b in by_binding})
            for other in keys[1:]:
                union(keys[0], other)
        # an align join's implicit overlap predicate connects its sides
        # even when it carries no equality conjuncts
        for node in _nodes_in(relation):
            if isinstance(node, LogicalAlignJoin):
                keys = sorted(
                    {
                        by_binding[b]
                        for b in (node.left.bindings | node.right.bindings)
                        if b in by_binding
                    }
                )
                for other in keys[1:]:
                    union(keys[0], other)
        components = {find(id(leaf)) for leaf in leaves}
        if len(components) > 1:
            names = ", ".join(sorted(b for leaf in leaves for b in leaf.bindings))
            self.emit(
                "TQ006",
                f"{len(components)} disconnected FROM groups ({names}) form "
                f"a cartesian product",
                None,
                path,
            )

    # -- join-predicate domains (TQ011/TQ012) ------------------------------

    def _check_join_predicates(self, relation: LogicalNode, path: str):
        """Column-vs-column comparisons whose sides live in different value
        domains: incompatible SQL types across a join edge (TQ011), or an
        application-period column against a system-period column (TQ012)."""
        scans = _scans_in(relation)
        if not scans:
            return
        by_binding = {scan.binding: scan for scan in scans}
        for conjunct, where in _predicate_conjuncts(relation, path):
            if not (
                isinstance(conjunct, ast.Binary)
                and conjunct.op in _COMPARISONS
                and isinstance(conjunct.left, ast.ColumnRef)
                and isinstance(conjunct.right, ast.ColumnRef)
            ):
                continue
            left = self._resolve_ref(conjunct.left, by_binding, scans)
            right = self._resolve_ref(conjunct.right, by_binding, scans)
            if left is None or right is None:
                continue
            left_scan, left_ref = left
            right_scan, right_ref = right
            kinds = {
                _period_kind(left_scan.schema, left_ref.name),
                _period_kind(right_scan.schema, right_ref.name),
            }
            if kinds == {"system", "application"}:
                self.emit(
                    "TQ012",
                    f"{_qualified(left_scan, left_ref)} and "
                    f"{_qualified(right_scan, right_ref)} belong to different "
                    f"period kinds (application days vs system ticks)",
                    conjunct,
                    where,
                )
                continue  # the type mismatch is implied; one finding suffices
            if left_scan.binding == right_scan.binding:
                continue  # same-table comparison is not a join edge
            left_cat = _TYPE_CATEGORY.get(left_scan.schema.column(left_ref.name).type)
            right_cat = _TYPE_CATEGORY.get(right_scan.schema.column(right_ref.name).type)
            if left_cat and right_cat and left_cat != right_cat:
                self.emit(
                    "TQ011",
                    f"join predicate compares {_qualified(left_scan, left_ref)} "
                    f"({left_cat}) with {_qualified(right_scan, right_ref)} "
                    f"({right_cat})",
                    conjunct,
                    where,
                )

    # -- literal domains (TQ013) -------------------------------------------

    def _check_literal_domains(self, relation: LogicalNode, path: str):
        """Date/period columns compared against numeric literals that can
        never be day numbers (TQ013) — the classic ``yyyymmdd`` integer
        bug.  System-period columns are skipped: they count commit ticks,
        where small integers are exactly the right domain."""
        scans = _scans_in(relation)
        if not scans:
            return
        by_binding = {scan.binding: scan for scan in scans}
        for conjunct, where in _predicate_conjuncts(relation, path):
            for ref, literal in _column_literal_pairs(conjunct):
                resolved = self._resolve_ref(ref, by_binding, scans)
                if resolved is None:
                    continue
                scan, ref = resolved
                kind = _period_kind(scan.schema, ref.name)
                if kind == "system":
                    continue
                if kind != "application" and (
                    scan.schema.column(ref.name).type is not SqlType.DATE
                ):
                    continue
                value = literal.value
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                if _DAY_DOMAIN[0] <= value <= _DAY_DOMAIN[1]:
                    continue
                self.emit(
                    "TQ013",
                    f"{_qualified(scan, ref)} holds day numbers but is "
                    f"compared against {value!r}, outside the date domain",
                    conjunct,
                    where,
                )

    # -- interval domains (TQ014/TQ015/TQ016) ------------------------------

    def _check_domains(self, relation: LogicalNode, path: str):
        """Per-scan interval-domain analysis over temporal constraints.

        The shared constraint engine (:mod:`..analyze_domains`) folds every
        temporal clause and pushed predicate into per-column intervals;
        an empty intersection means the scan provably matches nothing
        (TQ015), a predicate containing the intersection of the others is
        dead weight (TQ014), and a constraint containing the stats
        min/max of every column it touches selects everything anyway
        (TQ016 — only with a valid ANALYZE snapshot)."""
        for scan in _scans_in(relation):
            scan_path = f"{path}/scan:{scan.binding}"
            domains = scan_domain_map(scan)
            if not domains.contributions:
                continue
            empty_keys = set()
            for (binding, column), contributions in domains.empty_columns():
                empty_keys.add((binding, column))
                node = next(
                    (c.source for c in contributions if ast.span_of(c.source)),
                    contributions[-1].source,
                )
                self.emit(
                    "TQ015",
                    f"constraints on {binding}.{column} intersect to the "
                    f"empty interval; the scan can never match a version",
                    node,
                    scan_path,
                )
            for contribution in domains.redundant_predicates():
                if (contribution.binding, contribution.column) in empty_keys:
                    continue  # TQ015 already explains this column
                self.emit(
                    "TQ014",
                    f"predicate on {contribution.binding}.{contribution.column} "
                    f"(interval {contribution.interval.describe()}) is implied "
                    f"by the other temporal constraints",
                    contribution.source,
                    scan_path,
                )
            stats_getter = getattr(self.db, "stats_for", None)
            if stats_getter is None:
                continue
            snapshot = stats_getter(scan.schema.name)
            if snapshot is None:
                continue  # no (valid) ANALYZE snapshot: TQ016 stays quiet

            def stats_of(_binding, column, _snapshot=snapshot):
                return _snapshot.merged_column(column)

            for source, contributions in domains.tautological_sources(stats_of):
                if any(
                    (c.binding, c.column) in empty_keys for c in contributions
                ):
                    continue
                what = (
                    "temporal clause"
                    if isinstance(source, ast.TemporalClause)
                    else "predicate"
                )
                columns = ", ".join(
                    sorted({f"{c.binding}.{c.column}" for c in contributions})
                )
                self.emit(
                    "TQ016",
                    f"{what} on {columns} spans the whole recorded domain "
                    f"(stats min/max): it filters nothing",
                    source,
                    scan_path,
                )

    def _resolve_ref(self, ref: ast.ColumnRef, by_binding, scans):
        """The (scan, ref) a column reference resolves to, or None when the
        binding is unknown/ambiguous or the column is not a base column."""
        if ref.table is not None:
            scan = by_binding.get(ref.table)
            if scan is not None and scan.schema.has_column(ref.name):
                return scan, ref
            return None
        owners = [s for s in scans if s.schema.has_column(ref.name)]
        if len(owners) == 1:
            return owners[0], ref
        return None

    # -- projection shape (TQ010) -----------------------------------------

    def _check_projection(self, select, relation, path):
        star = next(
            (item.expr for item in select.items if isinstance(item.expr, ast.Star)),
            None,
        )
        if star is None:
            return
        for scan in _scans_in(relation):
            if star.table is not None and star.table != scan.binding:
                continue
            for clause in scan.ref.temporal:
                period = _clause_period(scan.schema, clause)
                if period is not None and period.is_system and clause.mode != "as_of":
                    self.emit(
                        "TQ010",
                        f"SELECT * over the version history of "
                        f"{scan.schema.name!r} returns one row per version",
                        star,
                        f"{path}/scan:{scan.binding}",
                    )
                    return

    # -- helpers ----------------------------------------------------------

    def _table_of(self, scan: LogicalScan):
        try:
            return self.db.table(scan.schema.name)
        except CatalogError:
            return None


# ---------------------------------------------------------------------------
# plan/AST helpers
# ---------------------------------------------------------------------------


def _nodes_in(node: LogicalNode):
    yield node
    for child in node.children():
        yield from _nodes_in(child)


def _scans_in(node: LogicalNode) -> List[LogicalScan]:
    return [n for n in _nodes_in(node) if isinstance(n, LogicalScan)]


def _derived_in(node: LogicalNode) -> List[LogicalDerived]:
    return [n for n in _nodes_in(node) if isinstance(n, LogicalDerived)]


def _predicate_conjuncts(relation: LogicalNode, path: str):
    """Every predicate conjunct in the tree with a rough location label."""
    for node in _nodes_in(relation):
        if isinstance(node, LogicalFilter):
            for conjunct in split_conjuncts(node.predicate):
                yield conjunct, f"{path}/filter:{node.label}"
        elif isinstance(node, LogicalJoin):
            for conjunct in node.conjuncts:
                yield conjunct, f"{path}/join"
        elif isinstance(node, LogicalProduct):
            for _bindings, conjunct in node.edges:
                yield conjunct, f"{path}/join"
        elif isinstance(node, LogicalAlignJoin):
            for conjunct in node.conjuncts:
                yield conjunct, f"{path}/join"
        elif isinstance(node, LogicalScan):
            for conjunct in node.pushed:
                yield conjunct, f"{path}/scan:{node.binding}"


def _clause_period(schema, clause: ast.TemporalClause):
    """Mirror of the planner's period resolution, returning None on failure."""
    if clause.period == "system_time":
        return schema.system_period
    if clause.period == "business_time":
        app = schema.application_periods
        return app[0] if app else None
    try:
        return schema.period(clause.period)
    except CatalogError:
        return None


def _period_kind(schema, column_name: str) -> Optional[str]:
    """``"system"``/``"application"`` if the column belongs to a period."""
    for period in schema.periods:
        if column_name in (period.begin_column, period.end_column):
            return "system" if period.is_system else "application"
    return None


def _qualified(scan: LogicalScan, ref: ast.ColumnRef) -> str:
    return f"{scan.binding}.{ref.name}"


def _column_literal_pairs(conjunct):
    """(column ref, literal) pairs of a comparison or BETWEEN conjunct."""
    if isinstance(conjunct, ast.Binary) and conjunct.op in _COMPARISONS:
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal):
            yield left, right
        elif isinstance(right, ast.ColumnRef) and isinstance(left, ast.Literal):
            yield right, left
    elif isinstance(conjunct, ast.Between) and isinstance(
        conjunct.operand, ast.ColumnRef
    ):
        for bound in (conjunct.low, conjunct.high):
            if isinstance(bound, ast.Literal):
                yield conjunct.operand, bound


def _comparison_sides(conjunct):
    if isinstance(conjunct, ast.Binary) and conjunct.op in _COMPARISONS:
        return (conjunct.left, conjunct.right)
    if isinstance(conjunct, ast.Between):
        return (conjunct.operand,)
    return ()


def _is_period_column(ref: ast.ColumnRef, period_columns) -> bool:
    if ref.table is not None:
        return ref.name in period_columns.get(ref.table, ())
    return ref.name in period_columns[None]


def _probe_column(conjunct, scan: LogicalScan) -> Optional[str]:
    """The column of a ``col = <constant>`` equality pushed onto *scan*."""
    if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="):
        return None
    for column_side, value_side in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        if not isinstance(column_side, ast.ColumnRef):
            continue
        if column_side.table not in (None, scan.binding):
            continue
        if not scan.schema.has_column(column_side.name):
            continue
        if isinstance(value_side, (ast.Literal, ast.Param)):
            return column_side.name
    return None


def _null_extended_bindings(node: LogicalNode) -> List[Set[str]]:
    """Binding sets sitting on the right side of a LEFT JOIN under *node*."""
    out: List[Set[str]] = []
    for sub in _nodes_in(node):
        if isinstance(sub, LogicalJoin) and sub.kind == "left":
            out.append(set(sub.right.bindings))
    return out


def _expressions_of(select: ast.Select):
    for item in select.items:
        yield item.expr
    if select.where is not None:
        yield select.where
    for expr in select.group_by:
        yield expr
    if select.having is not None:
        yield select.having
    for item in select.order_by:
        yield item.expr
    for from_item in select.from_items:
        yield from _from_item_expressions(from_item)


def _from_item_expressions(item):
    if isinstance(item, ast.Join):
        yield from _from_item_expressions(item.left)
        yield from _from_item_expressions(item.right)
        if item.on is not None:
            yield item.on
    elif isinstance(item, ast.TableRef):
        for clause in item.temporal:
            if clause.low is not None:
                yield clause.low
            if clause.high is not None:
                yield clause.high


__all__ = [
    "Diagnostic",
    "Rule",
    "RULES",
    "SEVERITIES",
    "analyze_select",
    "analyze_sql",
]
