"""Interval-domain abstract interpretation over temporal constraints.

This is the shared constraint engine behind analyzer rules TQ014/TQ015/
TQ016 and the ``constraint-pruning`` rewrite rule: it normalizes every
temporal constraint on a scan — ``AS OF`` / ``FROM .. TO`` / ``BETWEEN``
clauses and raw comparisons pushed onto period or date columns — into
per-(binding, column) **interval lattices**: intersection for
conjunction, convex hull for disjunction, an explicit empty element for
contradictions and ``TOP`` (unbounded) for everything the domain cannot
represent.

The abstraction is deliberately faithful to how the engine *executes*
each construct, not to SQL:2011 on paper:

* ``AS OF t``       ⇒ ``begin <= t`` and ``end > t`` (NULL end = open now)
* ``FROM l TO h``   ⇒ ``begin < h`` and ``end > l``  (half-open overlap)
* ``BETWEEN l, h``  ⇒ ``begin <= h`` and ``end > l`` (closed overlap)
* ``FOR .. ALL``    ⇒ no constraint

Two soundness subtleties are encoded as flags on each contribution:

* ``null_rejecting`` — whether a NULL column value fails the constraint.
  Clause *begin* constraints and every raw predicate reject NULL; clause
  *end* constraints do **not** (a NULL end means "still current" and
  compares as end-of-time).  Emptiness and redundancy proofs must keep a
  null-rejecting witness, or dropping a predicate could leak NULL rows.
* ``exact`` — whether the interval equals the constraint (vs. an
  over-approximation such as an OR-hull or IN-list hull).  Only exact
  contributions may be *dropped* as redundant or *flagged* as
  tautological; over-approximations remain sound as subsumers and as
  emptiness evidence.

All bounds are closed integers (ticks for system periods, day numbers
for application periods and dates); ``None`` means ±infinity.  Strict
comparisons are normalized away (``> v`` becomes ``low = v + 1``), which
is exact because the domains are integral.

The module depends only on the SQL AST, the type enum and catalog
errors, so both ``analyze`` and ``plan.rewrite`` can import it freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .errors import CatalogError
from .sql import ast
from .types import SqlType

_COMPARISONS = ("=", "<", "<=", ">", ">=")


# ---------------------------------------------------------------------------
# the interval lattice
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` bounds mean ±infinity.

    The lattice element for one column: ``TOP`` is ``(None, None)``,
    bottom is any interval with ``low > high`` (canonicalized by
    :meth:`is_empty`; empty intervals compare equal through it, not
    through ``==``).
    """

    low: Optional[int] = None
    high: Optional[int] = None

    def is_empty(self) -> bool:
        return (
            self.low is not None and self.high is not None and self.low > self.high
        )

    def is_top(self) -> bool:
        return self.low is None and self.high is None

    def intersect(self, other: "Interval") -> "Interval":
        low = _max_bound(self.low, other.low)
        high = _min_bound(self.high, other.high)
        return Interval(low, high)

    def hull(self, other: "Interval") -> "Interval":
        """Convex hull — the join of the lattice (over-approximates OR)."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        low = None
        if self.low is not None and other.low is not None:
            low = min(self.low, other.low)
        high = None
        if self.high is not None and other.high is not None:
            high = max(self.high, other.high)
        return Interval(low, high)

    def contains(self, other: "Interval") -> bool:
        """True when *other* ⊆ *self* (empty ⊆ anything)."""
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        if self.low is not None and (other.low is None or other.low < self.low):
            return False
        if self.high is not None and (other.high is None or other.high > self.high):
            return False
        return True

    def describe(self) -> str:
        if self.is_empty():
            return "(empty)"
        low = "-inf" if self.low is None else str(self.low)
        high = "+inf" if self.high is None else str(self.high)
        return f"[{low}, {high}]"


TOP = Interval(None, None)
EMPTY = Interval(1, 0)


def _max_bound(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _min_bound(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _int_literal(expr) -> Optional[int]:
    """The int value of a Literal, or None (bools are not ints here)."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    return None


# ---------------------------------------------------------------------------
# contributions: one constraint's effect on one column
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Contribution:
    """One constraint's interval on one ``(binding, column)``.

    ``source`` is the AST node the constraint came from (a
    :class:`~repro.engine.sql.ast.TemporalClause` or a predicate
    expression) — it anchors diagnostics and identifies what the rewrite
    may drop.  ``origin`` is ``"clause"`` or ``"predicate"``.
    """

    binding: str
    column: str
    interval: Interval
    source: object
    origin: str
    null_rejecting: bool
    exact: bool
    op: Optional[str] = None  # comparison op for predicate atoms
    clause_mode: Optional[str] = None  # as_of / from_to / between


class DomainMap:
    """The per-scan constraint map: ``(binding, column) -> [Contribution]``.

    Insertion order is preserved so diagnostics and rewrite decisions are
    deterministic.
    """

    def __init__(self):
        self.contributions: List[Contribution] = []
        self._by_key: Dict[Tuple[str, str], List[Contribution]] = {}

    def add(self, contribution: Contribution):
        self.contributions.append(contribution)
        key = (contribution.binding, contribution.column)
        self._by_key.setdefault(key, []).append(contribution)

    def keys(self) -> List[Tuple[str, str]]:
        return list(self._by_key)

    def at(self, key: Tuple[str, str]) -> List[Contribution]:
        return list(self._by_key.get(key, ()))

    def domain(self, key: Tuple[str, str]) -> Interval:
        """The meet (intersection) of every contribution on *key*."""
        interval = TOP
        for contribution in self._by_key.get(key, ()):
            interval = interval.intersect(contribution.interval)
        return interval

    def predicate_domain(self, key: Tuple[str, str]) -> Interval:
        """The meet of the *predicate* contributions only (no clauses)."""
        interval = TOP
        for contribution in self._by_key.get(key, ()):
            if contribution.origin == "predicate":
                interval = interval.intersect(contribution.interval)
        return interval

    # -- the three analyses ------------------------------------------------

    def empty_columns(self) -> List[Tuple[Tuple[str, str], List[Contribution]]]:
        """Columns whose constraint intersection is provably empty.

        Sound including NULL rows: an empty intersection always involves
        a finite upper bound, and every finite-upper-bound contribution
        (clause begin constraints, raw predicates) is null-rejecting —
        we require the witness explicitly anyway.
        """
        out = []
        for key, contributions in self._by_key.items():
            if not self.domain(key).is_empty():
                continue
            if not any(c.null_rejecting for c in contributions):
                continue  # cannot prove NULL rows are excluded
            out.append((key, list(contributions)))
        return out

    def redundant_predicates(self) -> List[Contribution]:
        """Predicate contributions implied by the other constraints.

        Greedy with a dropped-set so mutually-subsuming duplicates drop
        only one side.  A candidate must be an *exact* predicate atom and
        not an equality (equalities drive primary-key probes and hash
        indexes; dropping them could change the access path).  The
        remaining constraints must keep a null-rejecting witness, their
        intersection must be non-empty (emptiness is TQ015's business),
        and it must lie inside the candidate's interval.
        """
        dropped: List[Contribution] = []
        for key, contributions in self._by_key.items():
            for candidate in contributions:
                if candidate.origin != "predicate" or not candidate.exact:
                    continue
                if candidate.op == "=":
                    continue
                rest = [
                    c
                    for c in contributions
                    if c is not candidate and c not in dropped
                ]
                if not rest or not any(c.null_rejecting for c in rest):
                    continue
                remaining = TOP
                for c in rest:
                    remaining = remaining.intersect(c.interval)
                if remaining.is_empty():
                    continue
                if candidate.interval.contains(remaining):
                    dropped.append(candidate)
        return dropped

    def tautological_sources(
        self, stats_of: Callable[[str, str], object]
    ) -> List[Tuple[object, List[Contribution]]]:
        """Sources whose constraints span the whole recorded domain.

        *stats_of* maps ``(binding, column)`` to a per-column stats
        object (``min_value``/``max_value``/``nulls``) or None; without
        stats nothing is tautological.  ``AS OF`` clauses keep snapshot
        semantics regardless of width and equality predicates are never
        flagged; every contribution of the source must be exact, and a
        null-rejecting contribution additionally needs ``nulls == 0``
        (otherwise it really does filter the NULL rows out).
        """
        by_source: Dict[int, Tuple[object, List[Contribution]]] = {}
        for contribution in self.contributions:
            entry = by_source.setdefault(
                id(contribution.source), (contribution.source, [])
            )
            entry[1].append(contribution)
        out = []
        for source, contributions in by_source.values():
            if any(c.clause_mode == "as_of" for c in contributions):
                continue
            if any(c.op == "=" for c in contributions):
                continue
            if not all(c.exact for c in contributions):
                continue
            if all(c.interval.is_top() for c in contributions):
                continue
            tautological = True
            for c in contributions:
                stats = stats_of(c.binding, c.column)
                low = getattr(stats, "min_value", None)
                high = getattr(stats, "max_value", None)
                if (
                    stats is None
                    or not isinstance(low, int)
                    or isinstance(low, bool)
                    or not isinstance(high, int)
                    or isinstance(high, bool)
                ):
                    tautological = False
                    break
                if c.null_rejecting and getattr(stats, "nulls", 1) != 0:
                    tautological = False
                    break
                if not c.interval.contains(Interval(low, high)):
                    tautological = False
                    break
            if tautological:
                out.append((source, contributions))
        return out


# ---------------------------------------------------------------------------
# building the map from a logical scan
# ---------------------------------------------------------------------------


def period_of(schema, clause) -> Optional[object]:
    """The period a temporal clause resolves to (the planner's rules)."""
    if clause.period == "system_time":
        return schema.system_period
    if clause.period == "business_time":
        app = schema.application_periods
        return app[0] if app else None
    try:
        return schema.period(clause.period)
    except CatalogError:
        return None


def tracked_columns(schema) -> Dict[str, str]:
    """column name -> kind (``period-begin``/``period-end``/``date``)."""
    out: Dict[str, str] = {}
    for column in schema.columns:
        if column.type is SqlType.DATE:
            out[column.name] = "date"
    for period in schema.periods:
        out[period.begin_column] = "period-begin"
        out[period.end_column] = "period-end"
    return out


def scan_domain_map(scan) -> DomainMap:
    """The :class:`DomainMap` of one logical scan: its temporal clauses
    plus the predicate conjuncts pushdown placed on it, restricted to
    period and date columns."""
    domains = DomainMap()
    tracked = tracked_columns(scan.schema)
    for clause in scan.ref.temporal:
        _add_clause(domains, scan, clause)
    for conjunct in scan.pushed:
        _add_predicate(domains, scan, conjunct, tracked)
    return domains


def _add_clause(domains: DomainMap, scan, clause):
    if clause.mode == "all":
        return
    period = period_of(scan.schema, clause)
    if period is None:
        return
    low = _int_literal(clause.low)
    high = _int_literal(clause.high)

    def add(column, interval, null_rejecting):
        domains.add(
            Contribution(
                binding=scan.binding,
                column=column,
                interval=interval,
                source=clause,
                origin="clause",
                null_rejecting=null_rejecting,
                exact=True,
                clause_mode=clause.mode,
            )
        )

    # begin constraints reject NULL (an unset begin never matches); end
    # constraints do not (NULL end means "still current" = end of time).
    if clause.mode == "as_of":
        if low is None:
            return
        add(period.begin_column, Interval(None, low), True)
        add(period.end_column, Interval(low + 1, None), False)
    elif clause.mode == "from_to":
        if low is None or high is None:
            return
        add(period.begin_column, Interval(None, high - 1), True)
        add(period.end_column, Interval(low + 1, None), False)
    elif clause.mode == "between":
        if low is None or high is None:
            return
        add(period.begin_column, Interval(None, high), True)
        add(period.end_column, Interval(low + 1, None), False)


def _add_predicate(domains: DomainMap, scan, conjunct, tracked):
    extracted = _interval_of(conjunct, scan, tracked)
    if extracted is None:
        return
    column, interval, exact, op = extracted
    domains.add(
        Contribution(
            binding=scan.binding,
            column=column,
            interval=interval,
            source=conjunct,
            origin="predicate",
            null_rejecting=True,  # NULL compares UNKNOWN and is filtered
            exact=exact,
            op=op,
        )
    )


def _interval_of(expr, scan, tracked):
    """``(column, interval, exact, op)`` of a predicate over one tracked
    column, or None when the expression falls outside the domain."""
    if isinstance(expr, ast.Binary) and expr.op in ("and", "or"):
        left = _interval_of(expr.left, scan, tracked)
        right = _interval_of(expr.right, scan, tracked)
        if left is None or right is None or left[0] != right[0]:
            return None
        combine = Interval.intersect if expr.op == "and" else Interval.hull
        # hulls over-approximate; intersections of exact parts stay exact
        exact = expr.op == "and" and left[2] and right[2]
        return (left[0], combine(left[1], right[1]), exact, None)
    if isinstance(expr, ast.Binary) and expr.op in _COMPARISONS:
        column = op = None
        value = None
        if isinstance(expr.left, ast.ColumnRef):
            column, op, value = expr.left, expr.op, _int_literal(expr.right)
        elif isinstance(expr.right, ast.ColumnRef):
            column = expr.right
            op = _FLIPPED[expr.op]
            value = _int_literal(expr.left)
        if column is None or value is None:
            return None
        name = _tracked_name(column, scan, tracked)
        if name is None:
            return None
        interval = {
            "=": Interval(value, value),
            "<": Interval(None, value - 1),
            "<=": Interval(None, value),
            ">": Interval(value + 1, None),
            ">=": Interval(value, None),
        }[op]
        return (name, interval, True, op)
    if isinstance(expr, ast.Between) and not expr.negated:
        name = _tracked_name(expr.operand, scan, tracked)
        low = _int_literal(expr.low)
        high = _int_literal(expr.high)
        if name is None or low is None or high is None:
            return None
        return (name, Interval(low, high), True, "between")
    if isinstance(expr, ast.InList) and not expr.negated:
        name = _tracked_name(expr.operand, scan, tracked)
        if name is None:
            return None
        values = [_int_literal(item) for item in expr.items]
        if not values or any(v is None for v in values):
            return None
        # the hull of the points: sound but inexact (gaps are lost)
        return (name, Interval(min(values), max(values)), len(values) == 1, "in")
    return None


_FLIPPED = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _tracked_name(expr, scan, tracked) -> Optional[str]:
    if not isinstance(expr, ast.ColumnRef):
        return None
    if expr.table not in (None, scan.binding):
        return None
    if not scan.schema.has_column(expr.name):
        return None
    return expr.name if expr.name in tracked else None


__all__ = [
    "Contribution",
    "DomainMap",
    "EMPTY",
    "Interval",
    "TOP",
    "period_of",
    "scan_domain_map",
    "tracked_columns",
]
