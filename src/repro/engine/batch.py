"""Chunked row-batches: the unit of data flow through the execution engine.

Every physical operator consumes and produces :class:`Batch` objects
instead of bare row lists.  A batch is a fixed-capacity chunk of rows in
one of two layouts:

* **row-major** — a list of tuples, the natural shape for join outputs
  and anything that re-arranges whole rows;
* **column-major** — a list of per-column value lists, the natural shape
  straight out of the column store, where handing over array slices
  avoids per-row tuple construction entirely.

Both layouts answer the same protocol (``column(slot)``, ``to_rows()``,
``take(indices)``) so operators never branch on layout; conversion is
lazy and cached.  The materialization boundary — where batches become
the ``list[tuple]`` the DBAPI surface promises — is
:func:`rows_from_batches`, which always builds a *fresh* list so cached
subplan results are aliasing-safe.

Module-level knobs (`batch size`, `vectorized on/off`) exist for the
equivalence test-suite: forcing batch size 1 with vectorization off
reproduces the historical row-at-a-time engine exactly, which is the
reference oracle the batch path is checked against byte-for-byte.
"""

from __future__ import annotations

from contextlib import contextmanager
from sys import getsizeof
from typing import Iterable, Iterator, List, Optional, Sequence

DEFAULT_BATCH_SIZE = 1024

_CONFIG = {"size": DEFAULT_BATCH_SIZE, "vectorized": True}


def batch_size() -> int:
    """The configured rows-per-batch for operators that chunk output."""
    return _CONFIG["size"]


def set_batch_size(size: int) -> None:
    if size < 1:
        raise ValueError("batch size must be >= 1")
    _CONFIG["size"] = int(size)


def vectorized_enabled() -> bool:
    """Whether chunk-wise expression evaluation is in use.

    When off, every operator falls back to its per-row evaluation path —
    the reference semantics the vectorized path must match exactly.
    """
    return _CONFIG["vectorized"]


def set_vectorized(enabled: bool) -> None:
    _CONFIG["vectorized"] = bool(enabled)


@contextmanager
def execution_config(size: Optional[int] = None,
                     vectorized: Optional[bool] = None):
    """Temporarily override the batch size and/or vectorization flag."""
    saved = dict(_CONFIG)
    try:
        if size is not None:
            set_batch_size(size)
        if vectorized is not None:
            set_vectorized(vectorized)
        yield
    finally:
        _CONFIG.update(saved)


class Batch:
    """A chunk of rows in row-major or column-major layout.

    ``to_rows()`` may return an internal list; callers must treat it as
    read-only (materialization points copy via :func:`rows_from_batches`).
    """

    __slots__ = ("_rows", "_columns", "length", "width")

    def __init__(self, rows=None, columns=None, length=0, width=0):
        self._rows = rows
        self._columns = columns
        self.length = length
        self.width = width

    @classmethod
    def from_rows(cls, rows: List[tuple], width: Optional[int] = None) -> "Batch":
        if width is None:
            width = len(rows[0]) if rows else 0
        return cls(rows=rows, length=len(rows), width=width)

    @classmethod
    def from_columns(cls, columns: List[list],
                     length: Optional[int] = None) -> "Batch":
        if length is None:
            length = len(columns[0]) if columns else 0
        return cls(columns=columns, length=length, width=len(columns))

    def column(self, slot: int) -> list:
        """The values of one column across the batch (zero-copy when
        column-major)."""
        if self._columns is not None:
            return self._columns[slot]
        return [row[slot] for row in self._rows]

    def to_rows(self) -> List[tuple]:
        """The batch as a list of tuples (cached for column-major)."""
        if self._rows is None:
            if self._columns:
                self._rows = list(zip(*self._columns))
            else:
                self._rows = [()] * self.length
        return self._rows

    def take(self, indices: Sequence[int]) -> "Batch":
        """A new batch holding the rows at *indices* (in that order),
        preserving layout.  Also used for reordering, so no identity
        shortcut — callers skip the call when taking everything."""
        if self._rows is not None:
            rows = self._rows
            return Batch.from_rows([rows[i] for i in indices], self.width)
        columns = [[col[i] for i in indices] for col in self._columns]
        return Batch(columns=columns, length=len(indices), width=self.width)

    def estimated_bytes(self) -> int:
        """Rough in-memory size of the batch's payload, for working-set
        accounting.

        Sampling-based, not exact: the first row (or the head of each
        column) is measured with ``sys.getsizeof`` and scaled by the batch
        length, assuming rows are shape-homogeneous — which the fixed-width
        operator protocol guarantees.  Container overhead of the backing
        lists is included; per-value object sharing (interned ints,
        repeated strings) is not discounted, so this is an upper-ish
        estimate that is cheap enough to compute per operator call.
        """
        if self.length == 0:
            return 0
        if self._columns is not None:
            per_row = sum(
                getsizeof(col[0]) if col else 0 for col in self._columns
            )
            container = sum(getsizeof(col) for col in self._columns)
            return container + per_row * self.length
        first = self._rows[0]
        per_row = getsizeof(first) + sum(getsizeof(v) for v in first)
        return getsizeof(self._rows) + per_row * self.length

    def __len__(self) -> int:
        return self.length


def rows_from_batches(batches: Iterable[Batch]) -> List[tuple]:
    """Materialize batches into one fresh list of tuples.

    This is the row-level boundary: PlannedQuery results, cached subplan
    rows and the DBAPI surface all pass through here, and the returned
    list is always newly built so in-place consumer mutation can never
    leak back into a batch.
    """
    out: List[tuple] = []
    for batch in batches:
        out.extend(batch.to_rows())
    return out


def batches_from_rows(rows: Sequence[tuple],
                      size: Optional[int] = None) -> List[Batch]:
    """Chunk a row list into row-major batches (slices are fresh lists,
    so the source list is never aliased by any batch)."""
    if size is None:
        size = _CONFIG["size"]
    if not rows:
        return []
    width = len(rows[0])
    if len(rows) <= size:
        return [Batch.from_rows(list(rows), width)]
    return [
        Batch.from_rows(list(rows[start:start + size]), width)
        for start in range(0, len(rows), size)
    ]


def iter_batches_from_rows(rows: Iterable[tuple],
                           size: Optional[int] = None) -> Iterator[Batch]:
    """Chunk an arbitrary row iterable into row-major batches lazily."""
    if size is None:
        size = _CONFIG["size"]
    chunk: List[tuple] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= size:
            yield Batch.from_rows(chunk)
            chunk = []
    if chunk:
        yield Batch.from_rows(chunk)


__all__ = [
    "Batch",
    "DEFAULT_BATCH_SIZE",
    "batch_size",
    "batches_from_rows",
    "execution_config",
    "iter_batches_from_rows",
    "rows_from_batches",
    "set_batch_size",
    "set_vectorized",
    "vectorized_enabled",
]
