"""Catalog: tables, columns, periods, primary keys and index metadata.

The catalog is deliberately explicit about *temporal* structure because the
paper's systems differ exactly there: which columns form the system-time
period, which the application-time period(s), and whether those columns are
stored inline, vertically partitioned, or absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import CatalogError
from .types import SqlType


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    type: SqlType
    nullable: bool = True

    def __str__(self):
        return f"{self.name} {self.type.value}"


@dataclass(frozen=True)
class PeriodDef:
    """A named period made of a begin and an end column.

    ``SYS_TIME`` is the system-time period; every other name is an
    application-time period (the benchmark schema has up to two, see
    ORDERS in Fig 1).
    """

    name: str
    begin_column: str
    end_column: str
    is_system: bool = False


@dataclass
class IndexDef:
    """Metadata describing one secondary index."""

    name: str
    table: str
    columns: Tuple[str, ...]
    kind: str = "btree"  # "btree" | "hash" | "rtree"
    #: which partition the index lives on: "current", "history" or "single"
    partition: str = "current"

    def __post_init__(self):
        if self.kind not in ("btree", "hash", "rtree"):
            raise CatalogError(f"unknown index kind {self.kind!r}")
        if self.kind == "rtree" and len(self.columns) != 2:
            raise CatalogError("an rtree index needs exactly (begin, end) columns")


@dataclass
class TableSchema:
    """Logical schema of one table, temporal structure included."""

    name: str
    columns: List[Column]
    primary_key: Tuple[str, ...] = ()
    periods: List[PeriodDef] = field(default_factory=list)

    def __post_init__(self):
        self.name = self.name.lower()
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column in table {self.name}")
        self._positions: Dict[str, int] = {c.name: i for i, c in enumerate(self.columns)}
        for key in self.primary_key:
            if key not in self._positions:
                raise CatalogError(f"primary key column {key!r} not in {self.name}")
        for period in self.periods:
            for col in (period.begin_column, period.end_column):
                if col not in self._positions:
                    raise CatalogError(
                        f"period {period.name} references unknown column {col!r}"
                    )

    # -- lookups ---------------------------------------------------------

    def position(self, column_name):
        """Ordinal of *column_name* in a row tuple."""
        try:
            return self._positions[column_name]
        except KeyError:
            raise CatalogError(f"no column {column_name!r} in table {self.name}") from None

    def has_column(self, column_name):
        return column_name in self._positions

    def column(self, column_name):
        return self.columns[self.position(column_name)]

    def column_names(self):
        return [c.name for c in self.columns]

    @property
    def system_period(self) -> Optional[PeriodDef]:
        for period in self.periods:
            if period.is_system:
                return period
        return None

    @property
    def application_periods(self) -> List[PeriodDef]:
        return [p for p in self.periods if not p.is_system]

    def period(self, name) -> PeriodDef:
        for p in self.periods:
            if p.name.lower() == name.lower():
                return p
        raise CatalogError(f"no period {name!r} on table {self.name}")

    @property
    def is_temporal(self):
        return bool(self.periods)

    def key_of(self, row):
        """Primary-key tuple extracted from a row tuple."""
        return tuple(row[self._positions[k]] for k in self.primary_key)

    def without_periods(self) -> "TableSchema":
        """A copy of this schema with all period columns and metadata removed.

        Used to build the *non-temporal baseline* tables of §5.4.
        """
        period_cols = set()
        for p in self.periods:
            period_cols.add(p.begin_column)
            period_cols.add(p.end_column)
        return TableSchema(
            name=self.name,
            columns=[c for c in self.columns if c.name not in period_cols],
            primary_key=tuple(k for k in self.primary_key if k not in period_cols),
            periods=[],
        )


class Catalog:
    """Registry of table schemas and index definitions for one database."""

    def __init__(self):
        self._tables: Dict[str, TableSchema] = {}
        self._indexes: Dict[str, IndexDef] = {}
        #: per-object DDL version counters; plans record the versions of the
        #: objects they reference, so the plan cache invalidates per name
        #: instead of clearing wholesale on any DDL
        self._versions: Dict[str, int] = {}
        #: per-table ANALYZE snapshots (repro.engine.stats.TableStats);
        #: validity is checked against _versions and the storage mutation
        #: marker by Database.stats_for, not here
        self._stats: Dict[str, object] = {}
        self.version: int = 0

    # -- versioning ------------------------------------------------------

    def bump(self, name: str):
        """Record a DDL change to the named object."""
        key = name.lower()
        self._versions[key] = self._versions.get(key, 0) + 1
        self.version += 1

    def version_of(self, name: str) -> int:
        return self._versions.get(name.lower(), 0)

    # -- statistics ------------------------------------------------------

    def set_stats(self, name: str, stats):
        """Store an ANALYZE snapshot for the named table."""
        self._stats[name.lower()] = stats

    def stats_of(self, name: str):
        """Raw snapshot lookup; staleness is the caller's concern."""
        return self._stats.get(name.lower())

    # -- tables ----------------------------------------------------------

    def add_table(self, schema: TableSchema):
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._tables[schema.name] = schema
        self.bump(schema.name)
        return schema

    def drop_table(self, name):
        name = name.lower()
        if name not in self._tables:
            raise CatalogError(f"no table {name!r}")
        del self._tables[name]
        self._stats.pop(name, None)
        for index_name in [n for n, d in self._indexes.items() if d.table == name]:
            del self._indexes[index_name]
        self.bump(name)

    def table(self, name) -> TableSchema:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def has_table(self, name):
        return name.lower() in self._tables

    def tables(self):
        return list(self._tables.values())

    # -- indexes ---------------------------------------------------------

    def add_index(self, index: IndexDef):
        if index.name in self._indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        schema = self.table(index.table)
        for col in index.columns:
            if not schema.has_column(col):
                raise CatalogError(
                    f"index {index.name} references unknown column {col!r}"
                )
        self._indexes[index.name] = index
        # an index changes the table's access paths: invalidate its plans
        self.bump(index.table)
        return index

    def drop_index(self, name):
        if name not in self._indexes:
            raise CatalogError(f"no index {name!r}")
        table = self._indexes[name].table
        del self._indexes[name]
        self.bump(table)

    def indexes_on(self, table_name) -> List[IndexDef]:
        table_name = table_name.lower()
        return [d for d in self._indexes.values() if d.table == table_name]

    def indexes(self):
        return list(self._indexes.values())
