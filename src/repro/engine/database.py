"""The embedded database: catalog + tables + transactions + SQL entry point.

A :class:`Database` is parameterised with a default :class:`StorageOptions`
(supplied by the system archetype in :mod:`repro.systems`) and an
:class:`ArchitectureProfile` describing optimizer-visible behaviour.  The
SQL layer (`execute_sql`) is attached lazily to avoid an import cycle with
the planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from . import temporal
from .catalog import Catalog, IndexDef, TableSchema
from .errors import CatalogError, IntegrityError
from .obs import MetricsRegistry, SlowQueryLog, StatementStatsStore, Tracer
from .obs import introspect
from .obs.telemetry import render_openmetrics
from .storage.versioned import StorageOptions, VersionedTable
from .txn import TransactionManager
from .types import END_OF_TIME, Period

#: auto-ANALYZE mutation threshold armed by the CLI/bench entry points for
#: long-lived databases (ROADMAP, PR 6 leftover).  Not the Database default:
#: direct engine instantiations (tests, libraries) keep statistics strictly
#: manual so no measurement pays a surprise ANALYZE mid-run.
DEFAULT_AUTO_ANALYZE_THRESHOLD = 256


@dataclass
class ArchitectureProfile:
    """Optimizer- and semantics-level traits of a system archetype.

    These complement the storage-level knobs in :class:`StorageOptions`:

    * ``supports_application_time`` — System C has *"no specific support for
      application time"* (§2.6); its loader stores app-time columns as plain
      data and the planner refuses native BUSINESS_TIME clauses.
    * ``uses_indexes`` — System C *"does not benefit at all from the
      additional B-Tree index"*; its planner always scans.
    * ``prunes_explicit_current`` — none of A/B/C recognise that AS OF
      <current time> could skip the history partition (Fig 6); left
      switchable for the ablation benchmark.
    * ``index_selectivity_threshold`` — fraction of a partition a range
      predicate must select *below* for the planner to prefer an index scan
      (the paper: indexes "only work on very selective workloads").
    """

    name: str = "generic"
    supports_application_time: bool = True
    supports_system_time: bool = True
    uses_indexes: bool = True
    prunes_explicit_current: bool = False
    manual_system_time: bool = False  # System D: client sets SYS_TIME itself
    index_selectivity_threshold: float = 0.15
    #: logical-plan rewrite rules the optimizer applies (see plan.rewrite);
    #: individually switchable for ablation benchmarks
    rewrite_rules: Tuple[str, ...] = (
        "constant-folding",
        "predicate-pushdown",
        "join-reorder",
        "constraint-pruning",
    )
    #: analyzer diagnostic codes (see repro.engine.analyze) that do not
    #: apply to this archetype — e.g. System D's implicit time travel
    #: legitimately omits the predicates System A must spell out
    lint_suppressions: Tuple[str, ...] = ()


class Database:
    """One database instance with a fixed architecture."""

    def __init__(
        self,
        options: Optional[StorageOptions] = None,
        profile: Optional[ArchitectureProfile] = None,
        name: str = "db",
    ):
        self.name = name
        self.catalog = Catalog()
        self.default_options = options or StorageOptions()
        self.profile = profile or ArchitectureProfile()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.slow_query_log: Optional[SlowQueryLog] = None
        #: pg_stat_statements-style workload telemetry; disabled by default
        #: so the execute hot path stays unobserved until someone asks
        self.telemetry = StatementStatsStore()
        self.txns = TransactionManager(metrics=self.metrics)
        self._tables: Dict[str, VersionedTable] = {}
        self._views: Dict[str, object] = {}  # name -> Select AST
        self._sql_engine = None  # created on first execute()
        #: when set, a table is re-ANALYZEd automatically once this many
        #: mutations accumulate since its last snapshot (None = manual only)
        self.auto_analyze_threshold: Optional[int] = None

    # -- DDL -------------------------------------------------------------

    @staticmethod
    def _check_reserved(name: str):
        if name.lower().startswith(introspect.SYSTEM_VIEW_PREFIX):
            raise CatalogError(
                f"the {introspect.SYSTEM_VIEW_PREFIX!r} prefix is reserved "
                f"for system views (cannot create {name!r})"
            )

    def create_table(
        self, schema: TableSchema, options: Optional[StorageOptions] = None
    ) -> VersionedTable:
        self._check_reserved(schema.name)
        self.catalog.add_table(schema)
        table = VersionedTable(
            schema, options or self.default_options, metrics=self.metrics
        )
        self._tables[schema.name] = table
        return table

    def drop_table(self, name):
        self.catalog.drop_table(name)
        del self._tables[name.lower()]

    def create_index(self, index: IndexDef):
        self.catalog.add_index(index)
        return self.table(index.table).create_index(index)

    def drop_index(self, name):
        index = None
        for candidate in self.catalog.indexes():
            if candidate.name == name:
                index = candidate
                break
        if index is None:
            raise CatalogError(f"no index {name!r}")
        self.catalog.drop_index(name)
        self.table(index.table).drop_index(name)

    def create_view(self, name, select_ast):
        name = name.lower()
        self._check_reserved(name)
        if self.catalog.has_table(name) or name in self._views:
            raise CatalogError(f"name {name!r} already in use")
        self._views[name] = select_ast
        self.catalog.bump(name)

    def drop_view(self, name):
        try:
            del self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"no view {name!r}") from None
        self.catalog.bump(name)

    def view(self, name):
        return self._views.get(name.lower())

    def table(self, name) -> VersionedTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def tables(self) -> List[VersionedTable]:
        return list(self._tables.values())

    # -- system views (introspection) ----------------------------------------

    def system_view_columns(self, name) -> Optional[Tuple[str, ...]]:
        """Column layout of a ``repro_stat_*`` system view, or ``None``
        when *name* is not a system view (the SQL layer then falls through
        to ordinary view/table resolution)."""
        return introspect.view_columns(name)

    def system_view_rows(self, name) -> List[tuple]:
        """Materialise one system view over this database's live state."""
        return introspect.view_rows(self, name)

    # -- transactions -------------------------------------------------------

    def begin(self, meta=None):
        return self.txns.begin(meta=meta)

    def _tick(self) -> int:
        """System-time tick for the current operation.

        Inside an explicit transaction every operation shares the txn's
        tick; otherwise each operation autocommits with its own tick.
        """
        txn = self.txns.current()
        if txn is not None:
            return txn.tick
        with self.txns.begin() as auto:
            return auto.tick

    def now(self) -> int:
        """The current (last committed) system time."""
        return self.txns.last_committed

    # -- row-level DML (used by the loader and the SQL executor) ------------------

    def insert_row(self, table_name, values_by_column: Dict[str, object]) -> int:
        table = self.table(table_name)
        schema = table.schema
        row: List[object] = [None] * len(schema.columns)
        for column, value in values_by_column.items():
            row[schema.position(column)] = schema.column(column).type.validate(value)
        if table.is_versioned:
            rid = temporal.temporal_insert(table, row, self._tick())
        else:
            rid = table.insert_version(row, sys_begin=None)
        self._maybe_auto_analyze(table_name)
        return rid

    def insert_row_explicit(
        self, table_name, values_by_column: Dict[str, object], sys_begin, sys_end
    ) -> int:
        """Bulk-load path: the client sets the system time itself.

        Only legal on archetypes with ``manual_system_time`` (System D,
        §5.8: *"its cost is much lower since we can set the timestamps
        manually and perform a bulk load"*).
        """
        if not self.profile.manual_system_time:
            raise IntegrityError(
                f"{self.profile.name}: system time is immutable and set at commit"
            )
        table = self.table(table_name)
        schema = table.schema
        row: List[object] = [None] * len(schema.columns)
        for column, value in values_by_column.items():
            row[schema.position(column)] = value
        if table.is_versioned and not table.has_split:
            rid = table.insert_version_explicit(row, sys_begin, sys_end)
        else:
            rid = table.insert_version(row, sys_begin=sys_begin)
            if schema.system_period is not None and sys_end != END_OF_TIME:
                table.invalidate(rid, sys_end)
        if sys_begin is not None:
            self.txns.set_clock(max(self.txns.clock, sys_begin + 1))
        self._maybe_auto_analyze(table_name)
        return rid

    def update_by_key(self, table_name, key, changes: Dict[str, object]) -> int:
        table = self.table(table_name)
        if table.is_versioned:
            count = temporal.nontemporal_update(
                table, tuple(key), changes, self._tick()
            )
            self._maybe_auto_analyze(table_name)
            return count
        count = 0
        schema = table.schema
        for rid, row in temporal.current_versions_for_key(table, tuple(key)):
            new_row = list(row)
            for column, value in changes.items():
                new_row[schema.position(column)] = value
            table.plain_update(rid, new_row)
            count += 1
        self._maybe_auto_analyze(table_name)
        return count

    def sequenced_update_by_key(
        self, table_name, key, changes, period_name, begin, end
    ) -> int:
        table = self.table(table_name)
        count = temporal.sequenced_update(
            table, tuple(key), changes, period_name, Period(begin, end), self._tick()
        )
        self._maybe_auto_analyze(table_name)
        return count

    def sequenced_delete_by_key(self, table_name, key, period_name, begin, end) -> int:
        table = self.table(table_name)
        count = temporal.sequenced_delete(
            table, tuple(key), period_name, Period(begin, end), self._tick()
        )
        self._maybe_auto_analyze(table_name)
        return count

    def delete_by_key(self, table_name, key) -> int:
        table = self.table(table_name)
        if table.is_versioned:
            count = temporal.temporal_delete(table, tuple(key), self._tick())
        else:
            count = 0
            for rid, _row in temporal.current_versions_for_key(table, tuple(key)):
                table.plain_delete(rid)
                count += 1
        self._maybe_auto_analyze(table_name)
        return count

    # -- statistics -----------------------------------------------------------

    def _maybe_auto_analyze(self, table_name) -> None:
        """Re-ANALYZE *table_name* when its mutation count since the last
        snapshot crosses ``auto_analyze_threshold`` (a table never analyzed
        counts every mutation it has ever seen).

        Called after every row-level DML entry point; a disabled threshold
        (None) keeps statistics strictly manual, which is the default so
        benchmark runs never pay a surprise ANALYZE mid-measurement.
        """
        threshold = self.auto_analyze_threshold
        if threshold is None:
            return
        from . import stats as stats_mod

        table = self._tables.get(table_name.lower())
        if table is None:
            return
        snapshot = self.catalog.stats_of(table_name)
        baseline = snapshot.mutation_marker if snapshot is not None else 0
        if stats_mod.mutation_marker(table) - baseline >= threshold:
            self.analyze(table_name)
            self.metrics.inc("stats.auto_analyze_runs")

    def analyze(self, table_name: Optional[str] = None) -> List["stats_mod.TableStats"]:
        """Collect per-column statistics (the ``ANALYZE [TABLE]`` statement).

        Analyzing bumps each table's catalog version so cached plans that
        were built without (or with older) statistics replan against the
        fresh snapshot — the same invalidation channel DDL uses.
        """
        from . import stats as stats_mod

        if table_name is not None:
            self.table(table_name)  # raises CatalogError when unknown
            names = [table_name.lower()]
        else:
            names = sorted(self._tables)
        collected = []
        for name in names:
            table = self._tables[name]
            snapshot = stats_mod.collect_table_stats(table)
            self.catalog.bump(name)
            snapshot.catalog_version = self.catalog.version_of(name)
            snapshot.mutation_marker = stats_mod.mutation_marker(table)
            self.catalog.set_stats(name, snapshot)
            collected.append(snapshot)
            self.metrics.inc("stats.tables_analyzed")
        self.metrics.inc("stats.analyze_runs")
        return collected

    def stats_for(self, table_name: str):
        """Return the table's ANALYZE snapshot, or None when absent/stale.

        A snapshot is stale when DDL moved the table's catalog version or
        DML moved its storage mutation marker since collection; the
        planner then falls back to the greedy pre-statistics heuristics.
        """
        from . import stats as stats_mod

        self.metrics.inc("stats.lookups")
        snapshot = self.catalog.stats_of(table_name)
        if snapshot is None:
            self.metrics.inc("stats.misses")
            return None
        table = self._tables.get(table_name.lower())
        if (
            table is None
            or snapshot.catalog_version != self.catalog.version_of(table_name)
            or snapshot.mutation_marker != stats_mod.mutation_marker(table)
        ):
            self.metrics.inc("stats.stale")
            return None
        self.metrics.inc("stats.hits")
        return snapshot

    # -- SQL ------------------------------------------------------------------

    def _engine(self):
        if self._sql_engine is None:
            from .session import SqlEngine  # deferred: avoids import cycle

            self._sql_engine = SqlEngine(self)
        return self._sql_engine

    def execute(self, sql, params=None, timeout_s=None):
        """Parse, plan and run one SQL statement; returns a Result."""
        return self._engine().execute(sql, params, timeout_s=timeout_s)

    def explain(self, sql, params=None) -> str:
        return self._engine().explain(sql, params)

    def explain_analyze(self, sql, params=None) -> str:
        return self._engine().explain_analyze(sql, params)

    def lint(self, sql):
        """Static diagnostics for one SELECT (see repro.engine.analyze)."""
        return self._engine().lint(sql)

    def cache_stats(self) -> Dict[str, int]:
        """Plan-cache counters of the attached SQL engine."""
        return self._engine().cache_stats()

    # -- observability ---------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Dict]:
        """Counters + histogram summaries of this database's registry."""
        return self.metrics.snapshot()

    def reset_metrics(self):
        self.metrics.reset()

    def enable_telemetry(self, enabled: bool = True) -> StatementStatsStore:
        """Switch the statement-statistics store on (or off).  Entries
        survive toggling; call ``telemetry.reset()`` to drop them."""
        self.telemetry.enabled = enabled
        return self.telemetry

    def telemetry_snapshot(
        self, top: Optional[int] = None, sort: str = "time"
    ) -> Dict[str, object]:
        """Workload-level view: registry snapshot + statement statistics."""
        snapshot = self.metrics.snapshot()
        snapshot["statements"] = self.telemetry.snapshot(top=top, sort=sort)
        snapshot["statements_tracked"] = len(self.telemetry)
        snapshot["statements_evicted"] = self.telemetry.evicted
        return snapshot

    def openmetrics(self, top: int = 10) -> str:
        """This database's registry + top-K statement stats + per-partition
        and per-index access counters as an OpenMetrics text exposition."""
        return render_openmetrics(
            self.metrics,
            self.telemetry,
            top=top,
            extra=introspect.introspection_openmetrics(self),
        )

    def set_slow_query_log(
        self, threshold_s: Optional[float], path: Optional[str] = None,
        capacity: int = 256, max_bytes: Optional[int] = None,
    ) -> Optional[SlowQueryLog]:
        """Enable (or, with ``None``, disable) the slow-query log.

        Enabling forces span collection on so every threshold breach has a
        complete tree to record; disabling releases that again.
        ``max_bytes`` (or ``$REPRO_SLOWLOG_MAX_BYTES``) bounds the JSONL
        file, truncating oldest entries first.
        """
        if threshold_s is None:
            self.slow_query_log = None
            self.tracer.force_tracing = False
            return None
        self.slow_query_log = SlowQueryLog(
            threshold_s, path=path, capacity=capacity, max_bytes=max_bytes
        )
        self.tracer.force_tracing = True
        return self.slow_query_log

    # -- maintenance -----------------------------------------------------------

    def drain_all_undo(self):
        for table in self._tables.values():
            table.drain_undo() if table.options.undo_log else None

    def merge_all(self):
        for table in self._tables.values():
            table.merge_column_store()

    def storage_report(self) -> Dict[str, Dict[str, int]]:
        """Per-table partition sizes (the §5.2 architecture analysis)."""
        report = {}
        for name, table in self._tables.items():
            report[name] = {
                "current": table.current_count(),
                "history": table.history_count(),
                "total": len(table),
            }
        return report
