"""PEP 249 (DB-API 2.0) driver for the embedded engine.

The benchmark's calibration note asks for "easy data generation and query
driving via DB-API" — this module provides exactly that surface::

    import repro.engine.dbapi as dbapi

    conn = dbapi.connect(system="A")
    cur = conn.cursor()
    cur.execute("SELECT count(*) FROM orders FOR SYSTEM_TIME AS OF ?", [42])
    print(cur.fetchone())

``connect`` accepts either a prebuilt :class:`~repro.engine.database.Database`
or a system archetype name ("A".."D"), in which case the corresponding
architecture from :mod:`repro.systems` is instantiated.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .database import Database
from .errors import (  # noqa: F401 - re-exported per PEP 249
    DataError,
    DatabaseError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    Warning,
)

apilevel = "2.0"
threadsafety = 1  # threads may share the module, not connections
paramstyle = "qmark"  # also accepts :named


class Cursor:
    """PEP 249 cursor over one Database."""

    arraysize = 1

    def __init__(self, connection: "Connection"):
        self._connection = connection
        self._result = None
        self._position = 0
        self.rowcount = -1
        self.description: Optional[List[Tuple]] = None
        self._closed = False

    # -- helpers ---------------------------------------------------------

    def _check_open(self):
        if self._closed or self._connection._closed:
            raise InterfaceError("cursor is closed")

    @property
    def connection(self):
        return self._connection

    # -- execution -------------------------------------------------------

    def execute(self, operation, parameters=None):
        self._check_open()
        result = self._connection._db.execute(
            operation, parameters, timeout_s=self._connection.timeout_s
        )
        self._result = result
        self._position = 0
        self.rowcount = result.rowcount
        if result.columns:
            self.description = [
                (name, None, None, None, None, None, None)
                for name in result.columns
            ]
        else:
            self.description = None
        return self

    def executemany(self, operation, seq_of_parameters: Sequence):
        self._check_open()
        total = 0
        for parameters in seq_of_parameters:
            result = self._connection._db.execute(operation, parameters)
            if result.rowcount > 0:
                total += result.rowcount
        self.rowcount = total
        self._result = None
        self.description = None
        return self

    # -- fetching ------------------------------------------------------------

    def fetchone(self):
        self._check_open()
        if self._result is None:
            raise ProgrammingError("no result set: call execute() first")
        if self._position >= len(self._result.rows):
            return None
        row = self._result.rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size=None):
        self._check_open()
        if self._result is None:
            raise ProgrammingError("no result set: call execute() first")
        size = size or self.arraysize
        rows = self._result.rows[self._position:self._position + size]
        self._position += len(rows)
        return list(rows)

    def fetchall(self):
        self._check_open()
        if self._result is None:
            raise ProgrammingError("no result set: call execute() first")
        rows = self._result.rows[self._position:]
        self._position = len(self._result.rows)
        return list(rows)

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- no-ops required by the spec ---------------------------------------------

    def setinputsizes(self, sizes):
        pass

    def setoutputsize(self, size, column=None):
        pass

    def close(self):
        self._closed = True
        self._result = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


class Connection:
    """PEP 249 connection wrapping one Database instance.

    The engine autocommits row operations with per-statement transactions;
    ``begin()`` opens an explicit transaction so several statements share
    one system-time tick (the loader's batching mode).
    """

    def __init__(self, db: Database):
        self._db = db
        self._closed = False
        self._txn = None
        #: per-connection statement timeout in seconds (None = no limit),
        #: enforced cooperatively by the executor
        self.timeout_s = None

    @property
    def database(self) -> Database:
        return self._db

    def lint(self, operation):
        """Static diagnostics for a SELECT without executing it."""
        if self._closed:
            raise InterfaceError("connection is closed")
        return self._db.lint(operation)

    def cache_stats(self):
        """Plan-cache counters of the underlying engine."""
        if self._closed:
            raise InterfaceError("connection is closed")
        return self._db.cache_stats()

    def cursor(self) -> Cursor:
        if self._closed:
            raise InterfaceError("connection is closed")
        return Cursor(self)

    def begin(self):
        if self._txn is not None and self._txn.is_active:
            raise OperationalError("transaction already in progress")
        self._txn = self._db.begin()
        return self._txn

    def commit(self):
        if self._closed:
            raise InterfaceError("connection is closed")
        if self._txn is not None and self._txn.is_active:
            self._txn.commit()
        self._txn = None

    def rollback(self):
        if self._closed:
            raise InterfaceError("connection is closed")
        if self._txn is not None and self._txn.is_active:
            self._txn.rollback()
        self._txn = None

    def close(self):
        if self._txn is not None and self._txn.is_active:
            self._txn.rollback()
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        self.close()
        return False


def connect(database: Optional[Database] = None, system: Optional[str] = None) -> Connection:
    """Open a connection to an embedded database.

    Exactly one of *database* (an existing instance) or *system* (an
    archetype name: "A", "B", "C" or "D") should be given; with neither, a
    generic database is created.
    """
    if database is not None and system is not None:
        raise InterfaceError("pass either a database or a system name, not both")
    if database is None:
        if system is not None:
            from ..systems import make_system

            database = make_system(system).db
        else:
            database = Database()
    return Connection(database)
