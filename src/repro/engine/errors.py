"""Error hierarchy for the engine.

The hierarchy doubles as the PEP 249 exception ladder so that
:mod:`repro.engine.dbapi` can re-export these classes unchanged.
"""


class Warning(Exception):  # noqa: A001 - PEP 249 requires this name
    """Non-fatal warning raised by the driver."""


class Error(Exception):
    """Base class of all engine errors."""


class InterfaceError(Error):
    """Error related to the database interface rather than the engine."""


class DatabaseError(Error):
    """Base class of errors raised by the engine itself."""


class DataError(DatabaseError):
    """Problems with the processed data (bad value, overflow, ...)."""


class OperationalError(DatabaseError):
    """Errors related to the engine's operation (timeouts, aborted txns)."""


class IntegrityError(DatabaseError):
    """Constraint violations (primary key, temporal overlap, ...)."""


class InternalError(DatabaseError):
    """The engine reached an inconsistent internal state."""


class ProgrammingError(DatabaseError):
    """User errors: unknown table, SQL syntax error, wrong parameters."""


class NotSupportedError(DatabaseError):
    """A requested feature is not supported by this system archetype."""


class SqlSyntaxError(ProgrammingError):
    """Raised by the SQL lexer/parser with position information.

    When the token's line/column are known (the lexer records them on every
    token) the message reads ``(at line 2, column 7)``; a bare character
    offset remains the fallback for callers that only track offsets.
    """

    def __init__(self, message, position=None, fragment=None, line=None, column=None):
        detail = message
        if line is not None and column is not None:
            detail = f"{message} (at line {line}, column {column})"
        elif position is not None:
            detail = f"{message} (at offset {position})"
        if fragment:
            detail = f"{detail} near {fragment!r}"
        super().__init__(detail)
        self.position = position
        self.fragment = fragment
        self.line = line
        self.column = column


class CatalogError(ProgrammingError):
    """Unknown or duplicate catalog object."""


class PlanError(InternalError):
    """A logical plan could not be converted into a physical plan."""


class QueryTimeout(OperationalError):
    """A query exceeded the benchmark harness timeout."""


class QueryCancelled(OperationalError):
    """A query was cancelled cooperatively through its ExecutionContext."""
