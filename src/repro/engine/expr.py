"""Expression compilation and evaluation with SQL semantics.

Expressions are compiled once per query into Python closures over a *scope*
(which maps qualified column names to row slots).  Evaluation follows SQL's
three-valued logic: comparisons involving NULL yield NULL, AND/OR use
Kleene logic, and WHERE treats NULL as false.

Dates are integer day numbers (see :mod:`repro.engine.types`); ``INTERVAL``
arithmetic therefore converts through the proleptic calendar so that
``DATE '1994-01-01' + INTERVAL '3' MONTH`` is exact, as TPC-H requires.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from .errors import ProgrammingError
from .sql import ast
from .types import date_to_day, day_to_date

# ---------------------------------------------------------------------------
# scopes: name -> row slot
# ---------------------------------------------------------------------------


class Scope:
    """Resolves column references against the executor's row layout.

    The layout is a list of (binding, column_name) pairs; *binding* is the
    table alias (or name) the column came from.  An optional *outer* scope
    makes correlated subqueries work: unresolved names are looked up there
    and read from ``env.outer_row``.
    """

    def __init__(self, layout: List[Tuple[str, str]], outer: Optional["Scope"] = None):
        self.layout = list(layout)
        self.outer = outer
        self._by_qualified: Dict[Tuple[str, str], int] = {}
        self._by_name: Dict[str, List[int]] = {}
        for slot, (binding, column) in enumerate(self.layout):
            self._by_qualified[(binding, column)] = slot
            self._by_name.setdefault(column, []).append(slot)

    def resolve(self, ref: ast.ColumnRef) -> Tuple[int, int]:
        """Return (depth, slot); depth 0 = local row, 1.. = outer rows."""
        if ref.table is not None:
            slot = self._by_qualified.get((ref.table, ref.name))
            if slot is not None:
                return (0, slot)
        else:
            slots = self._by_name.get(ref.name, [])
            if len(slots) == 1:
                return (0, slots[0])
            if len(slots) > 1:
                raise ProgrammingError(f"ambiguous column {ref.name!r}")
        if self.outer is not None:
            depth, slot = self.outer.resolve(ref)
            return (depth + 1, slot)
        raise ProgrammingError(f"unknown column {ref}")

    def slots_for_binding(self, binding) -> List[Tuple[int, str]]:
        return [
            (slot, column)
            for slot, (b, column) in enumerate(self.layout)
            if b == binding
        ]

    def __len__(self):
        return len(self.layout)


class Env:
    """Runtime evaluation environment for one query execution.

    ``cache`` is shared across nesting levels; uncorrelated subqueries use
    it to run once per statement execution instead of once per outer row.
    """

    __slots__ = ("params", "outer_rows", "cache")

    def __init__(self, params=None, outer_rows=None, cache=None):
        self.params = params if params is not None else {}
        self.outer_rows: List[tuple] = outer_rows or []
        self.cache: Dict[int, object] = cache if cache is not None else {}

    def nested(self, outer_row) -> "Env":
        return Env(self.params, [outer_row] + self.outer_rows, self.cache)

    def param(self, index=None, name=None):
        if name is not None:
            try:
                return self.params[name]
            except (KeyError, TypeError):
                raise ProgrammingError(f"missing named parameter :{name}") from None
        try:
            return self.params[index]
        except (KeyError, IndexError, TypeError):
            raise ProgrammingError(f"missing positional parameter {index}") from None


# ---------------------------------------------------------------------------
# interval arithmetic
# ---------------------------------------------------------------------------


class Interval:
    """A calendar interval (result of compiling an IntervalLiteral)."""

    __slots__ = ("days", "months")

    def __init__(self, days=0, months=0):
        self.days = days
        self.months = months

    def __eq__(self, other):
        return (
            isinstance(other, Interval)
            and self.days == other.days
            and self.months == other.months
        )

    def __repr__(self):
        return f"Interval(days={self.days}, months={self.months})"


def _shift_months(day_number: int, months: int) -> int:
    date = day_to_date(day_number)
    total = date.year * 12 + (date.month - 1) + months
    year, month0 = divmod(total, 12)
    month = month0 + 1
    day = date.day
    # clamp to the target month's length
    while True:
        try:
            return date_to_day(date.replace(year=year, month=month, day=day))
        except ValueError:
            day -= 1


def add_interval(day_number, interval: Interval, sign=1):
    if day_number is None:
        return None
    result = day_number
    if interval.months:
        result = _shift_months(result, sign * interval.months)
    return result + sign * interval.days


# ---------------------------------------------------------------------------
# scalar function registry
# ---------------------------------------------------------------------------


def _fn_extract(field, value):
    if value is None:
        return None
    date = day_to_date(value)
    return {"year": date.year, "month": date.month, "day": date.day}[field]


def _fn_substring(value, start, length=None):
    if value is None:
        return None
    begin = max(int(start) - 1, 0)
    if length is None:
        return value[begin:]
    return value[begin:begin + int(length)]


FUNCTIONS: Dict[str, Callable] = {
    "date": lambda s: date_to_day(s) if s is not None else None,
    "timestamp": lambda s: int(s) if not isinstance(s, str) else date_to_day(s),
    "extract": _fn_extract,
    "substring": _fn_substring,
    "substr": _fn_substring,
    "abs": lambda v: None if v is None else abs(v),
    "round": lambda v, n=0: None if v is None else round(v, int(n)),
    "floor": lambda v: None if v is None else int(v // 1),
    "ceil": lambda v: None if v is None else -int((-v) // 1),
    "mod": lambda a, b: None if a is None or b is None else a % b,
    "coalesce": lambda *args: next((a for a in args if a is not None), None),
    "nullif": lambda a, b: None if a == b else a,
    "upper": lambda s: None if s is None else s.upper(),
    "lower": lambda s: None if s is None else s.lower(),
    "length": lambda s: None if s is None else len(s),
    "greatest": lambda *args: None if any(a is None for a in args) else max(args),
    "least": lambda *args: None if any(a is None for a in args) else min(args),
}


def _like_to_regex(pattern: str):
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


_LIKE_CACHE: Dict[str, "re.Pattern"] = {}


def like_match(value, pattern):
    if value is None or pattern is None:
        return None
    regex = _LIKE_CACHE.get(pattern)
    if regex is None:
        regex = _like_to_regex(pattern)
        _LIKE_CACHE[pattern] = regex
    return regex.match(value) is not None


# ---------------------------------------------------------------------------
# arithmetic / comparison with NULL propagation
# ---------------------------------------------------------------------------


def _arith(op, left, right):
    if left is None or right is None:
        return None
    if isinstance(right, Interval):
        if op == "+":
            return add_interval(left, right)
        if op == "-":
            return add_interval(left, right, sign=-1)
        raise ProgrammingError(f"bad interval operator {op!r}")
    if isinstance(left, Interval):
        if op == "+":
            return add_interval(right, left)
        raise ProgrammingError(f"bad interval operator {op!r}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None
        if isinstance(left, int) and isinstance(right, int):
            return left / right
        return left / right
    if op == "%":
        if right == 0:
            return None
        return left % right
    if op == "||":
        return str(left) + str(right)
    raise ProgrammingError(f"unknown operator {op!r}")  # pragma: no cover


def _compare(op, left, right):
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ProgrammingError(f"unknown comparison {op!r}")  # pragma: no cover


def _and(left, right):
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _or(left, right):
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------

#: Signature of the callback the planner supplies to run nested SELECTs:
#: (select_ast, outer_scope) -> fn(env) -> list of row tuples.
SubqueryCompiler = Callable[[ast.Select, Scope], Callable[[Env], List[tuple]]]


def compile_expr(
    expr: ast.Expr,
    scope: Scope,
    subquery_compiler: Optional[SubqueryCompiler] = None,
) -> Callable[[tuple, Env], object]:
    """Compile an AST expression into ``fn(row, env) -> value``."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row, env: value
    if isinstance(expr, ast.ColumnRef):
        depth, slot = scope.resolve(expr)
        if depth == 0:
            return lambda row, env: row[slot]

        def outer_ref(row, env, depth=depth - 1, slot=slot):
            return env.outer_rows[depth][slot]

        return outer_ref
    if isinstance(expr, ast.Param):
        index, name = expr.index, expr.name
        return lambda row, env: env.param(index=index, name=name)
    if isinstance(expr, ast.IntervalLiteral):
        if expr.unit == "day":
            value = Interval(days=expr.value)
        elif expr.unit == "month":
            value = Interval(months=expr.value)
        else:
            value = Interval(months=12 * expr.value)
        return lambda row, env: value
    if isinstance(expr, ast.Unary):
        inner = compile_expr(expr.operand, scope, subquery_compiler)
        if expr.op == "-":
            return lambda row, env: _negate(inner(row, env))
        if expr.op == "+":
            return inner
        if expr.op == "not":
            return lambda row, env: _not(inner(row, env))
        raise ProgrammingError(f"unknown unary {expr.op!r}")
    if isinstance(expr, ast.Binary):
        left = compile_expr(expr.left, scope, subquery_compiler)
        right = compile_expr(expr.right, scope, subquery_compiler)
        op = expr.op
        if op == "and":
            return lambda row, env: _and(
                _truth(left(row, env)), _truth(right(row, env))
            )
        if op == "or":
            return lambda row, env: _or(
                _truth(left(row, env)), _truth(right(row, env))
            )
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda row, env: _compare(op, left(row, env), right(row, env))
        return lambda row, env: _arith(op, left(row, env), right(row, env))
    if isinstance(expr, ast.FuncCall):
        fn = FUNCTIONS.get(expr.name)
        if fn is None:
            raise ProgrammingError(f"unknown function {expr.name!r}")
        args = [compile_expr(a, scope, subquery_compiler) for a in expr.args]
        return lambda row, env: fn(*[a(row, env) for a in args])
    if isinstance(expr, ast.Case):
        branches = [
            (
                compile_expr(cond, scope, subquery_compiler),
                compile_expr(result, scope, subquery_compiler),
            )
            for cond, result in expr.branches
        ]
        default = (
            compile_expr(expr.default, scope, subquery_compiler)
            if expr.default is not None
            else None
        )

        def run_case(row, env):
            for cond, result in branches:
                if _truth(cond(row, env)) is True:
                    return result(row, env)
            return default(row, env) if default is not None else None

        return run_case
    if isinstance(expr, ast.Between):
        operand = compile_expr(expr.operand, scope, subquery_compiler)
        low = compile_expr(expr.low, scope, subquery_compiler)
        high = compile_expr(expr.high, scope, subquery_compiler)
        negated = expr.negated

        def run_between(row, env):
            value = operand(row, env)
            lo = _and(
                _compare("<=", low(row, env), value),
                _compare("<=", value, high(row, env)),
            )
            return _not(lo) if negated else lo

        return run_between
    if isinstance(expr, ast.Like):
        operand = compile_expr(expr.operand, scope, subquery_compiler)
        pattern = compile_expr(expr.pattern, scope, subquery_compiler)
        negated = expr.negated

        def run_like(row, env):
            result = like_match(operand(row, env), pattern(row, env))
            return _not(result) if negated else result

        return run_like
    if isinstance(expr, ast.IsNull):
        operand = compile_expr(expr.operand, scope, subquery_compiler)
        negated = expr.negated
        return lambda row, env: (operand(row, env) is not None) == negated
    if isinstance(expr, ast.InList):
        operand = compile_expr(expr.operand, scope, subquery_compiler)
        items = [compile_expr(i, scope, subquery_compiler) for i in expr.items]
        negated = expr.negated

        def run_in(row, env):
            value = operand(row, env)
            if value is None:
                return None
            found = False
            saw_null = False
            for item in items:
                candidate = item(row, env)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    found = True
                    break
            if found:
                return not negated
            if saw_null:
                return None
            return negated

        return run_in
    if isinstance(expr, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
        if subquery_compiler is None:
            raise ProgrammingError("subqueries are not allowed in this context")
        return _compile_subquery_expr(expr, scope, subquery_compiler)
    if isinstance(expr, ast.Aggregate):
        raise ProgrammingError(
            "aggregate used outside SELECT list / HAVING"
        )
    if isinstance(expr, ast.Star):
        raise ProgrammingError("'*' is only valid in a select list or COUNT(*)")
    raise ProgrammingError(f"cannot compile expression {expr!r}")


def _compile_subquery_expr(expr, scope, subquery_compiler):
    if isinstance(expr, ast.Exists):
        run = subquery_compiler(expr.subquery, scope)
        negated = expr.negated

        def run_exists(row, env):
            rows = run(env.nested(row))
            found = bool(rows)
            return found != negated

        return run_exists
    if isinstance(expr, ast.InSubquery):
        operand = compile_expr(expr.operand, scope, subquery_compiler)
        run = subquery_compiler(expr.subquery, scope)
        negated = expr.negated

        def run_in_subquery(row, env):
            value = operand(row, env)
            if value is None:
                return None
            saw_null = False
            for sub_row in run(env.nested(row)):
                candidate = sub_row[0]
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return not negated
            if saw_null:
                return None
            return negated

        return run_in_subquery
    # scalar subquery
    run = subquery_compiler(expr.subquery, scope)

    def run_scalar(row, env):
        rows = run(env.nested(row))
        if not rows:
            return None
        if len(rows) > 1:
            raise ProgrammingError("scalar subquery returned more than one row")
        return rows[0][0]

    return run_scalar


# ---------------------------------------------------------------------------
# chunk-wise (batch) compilation
# ---------------------------------------------------------------------------

#: Signature of a compiled batch expression: (batch, env) -> list of values,
#: one per row of the batch, in row order.
BatchFn = Callable[[object, Env], list]


class _NotVectorizable(Exception):
    """Raised during batch compilation when an expression needs per-row
    evaluation (subqueries re-enter the executor per outer row; CASE
    guarantees untaken branches are never evaluated)."""


def compile_batch_expr(
    expr: ast.Expr,
    scope: Scope,
    subquery_compiler: Optional[SubqueryCompiler] = None,
) -> Optional[BatchFn]:
    """Compile *expr* into ``fn(batch, env) -> list`` of per-row values.

    Returns ``None`` when the expression is not vectorizable (contains a
    subquery or CASE); callers then fall back to the per-row closure from
    :func:`compile_expr`.  The two paths are semantically identical: the
    row compiler evaluates both sides of AND/OR unconditionally, so the
    elementwise translation here preserves evaluation behavior exactly.
    """
    try:
        return _compile_batch(expr, scope)
    except _NotVectorizable:
        return None


def _compile_batch(expr: ast.Expr, scope: Scope) -> BatchFn:
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda batch, env: [value] * batch.length
    if isinstance(expr, ast.ColumnRef):
        depth, slot = scope.resolve(expr)
        if depth == 0:
            return lambda batch, env: batch.column(slot)

        def outer_ref(batch, env, depth=depth - 1, slot=slot):
            return [env.outer_rows[depth][slot]] * batch.length

        return outer_ref
    if isinstance(expr, ast.Param):
        index, name = expr.index, expr.name
        return lambda batch, env: [env.param(index=index, name=name)] * batch.length
    if isinstance(expr, ast.IntervalLiteral):
        if expr.unit == "day":
            value = Interval(days=expr.value)
        elif expr.unit == "month":
            value = Interval(months=expr.value)
        else:
            value = Interval(months=12 * expr.value)
        return lambda batch, env: [value] * batch.length
    if isinstance(expr, ast.Unary):
        inner = _compile_batch(expr.operand, scope)
        if expr.op == "-":
            return lambda batch, env: [_negate(v) for v in inner(batch, env)]
        if expr.op == "+":
            return inner
        if expr.op == "not":
            return lambda batch, env: [_not(v) for v in inner(batch, env)]
        raise ProgrammingError(f"unknown unary {expr.op!r}")
    if isinstance(expr, ast.Binary):
        left = _compile_batch(expr.left, scope)
        right = _compile_batch(expr.right, scope)
        op = expr.op
        if op == "and":
            return lambda batch, env: [
                _and(_truth(a), _truth(b))
                for a, b in zip(left(batch, env), right(batch, env))
            ]
        if op == "or":
            return lambda batch, env: [
                _or(_truth(a), _truth(b))
                for a, b in zip(left(batch, env), right(batch, env))
            ]
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda batch, env: [
                _compare(op, a, b)
                for a, b in zip(left(batch, env), right(batch, env))
            ]
        return lambda batch, env: [
            _arith(op, a, b)
            for a, b in zip(left(batch, env), right(batch, env))
        ]
    if isinstance(expr, ast.FuncCall):
        fn = FUNCTIONS.get(expr.name)
        if fn is None:
            raise ProgrammingError(f"unknown function {expr.name!r}")
        args = [_compile_batch(a, scope) for a in expr.args]
        if not args:
            return lambda batch, env: [fn() for _ in range(batch.length)]

        def run_func(batch, env):
            return [fn(*vals) for vals in zip(*[a(batch, env) for a in args])]

        return run_func
    if isinstance(expr, ast.Between):
        operand = _compile_batch(expr.operand, scope)
        low = _compile_batch(expr.low, scope)
        high = _compile_batch(expr.high, scope)
        negated = expr.negated

        def run_between(batch, env):
            out = [
                _and(_compare("<=", lo, value), _compare("<=", value, hi))
                for value, lo, hi in zip(
                    operand(batch, env), low(batch, env), high(batch, env)
                )
            ]
            return [_not(v) for v in out] if negated else out

        return run_between
    if isinstance(expr, ast.Like):
        operand = _compile_batch(expr.operand, scope)
        pattern = _compile_batch(expr.pattern, scope)
        negated = expr.negated

        def run_like(batch, env):
            out = [
                like_match(value, pat)
                for value, pat in zip(operand(batch, env), pattern(batch, env))
            ]
            return [_not(v) for v in out] if negated else out

        return run_like
    if isinstance(expr, ast.IsNull):
        operand = _compile_batch(expr.operand, scope)
        negated = expr.negated
        return lambda batch, env: [
            (value is not None) == negated for value in operand(batch, env)
        ]
    if isinstance(expr, ast.InList):
        operand = _compile_batch(expr.operand, scope)
        items = [_compile_batch(i, scope) for i in expr.items]
        negated = expr.negated

        def run_in(batch, env):
            candidate_lists = [item(batch, env) for item in items]
            out = []
            for pos, value in enumerate(operand(batch, env)):
                if value is None:
                    out.append(None)
                    continue
                found = False
                saw_null = False
                for candidates in candidate_lists:
                    candidate = candidates[pos]
                    if candidate is None:
                        saw_null = True
                    elif candidate == value:
                        found = True
                        break
                if found:
                    out.append(not negated)
                elif saw_null:
                    out.append(None)
                else:
                    out.append(negated)
            return out

        return run_in
    # Case keeps its untaken branches unevaluated; subqueries re-enter
    # the executor once per outer row — both stay on the per-row path.
    raise _NotVectorizable(type(expr).__name__)


def _truth(value):
    """Coerce an evaluation result into SQL boolean (True/False/None)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    return bool(value)


def _not(value):
    truth = _truth(value)
    if truth is None:
        return None
    return not truth


def _negate(value):
    if value is None:
        return None
    return -value


def expr_to_string(expr: ast.Expr) -> str:
    """Readable rendering for EXPLAIN output and error messages."""
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return str(expr)
    if isinstance(expr, ast.Param):
        return f":{expr.name}" if expr.name else f"?{expr.index}"
    if isinstance(expr, ast.Unary):
        return f"({expr.op} {expr_to_string(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({expr_to_string(expr.left)} {expr.op} {expr_to_string(expr.right)})"
    if isinstance(expr, ast.FuncCall):
        args = ", ".join(expr_to_string(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.Aggregate):
        arg = "*" if expr.arg is None else expr_to_string(expr.arg)
        prefix = "distinct " if expr.distinct else ""
        return f"{expr.func}({prefix}{arg})"
    if isinstance(expr, ast.Between):
        return (
            f"({expr_to_string(expr.operand)} between "
            f"{expr_to_string(expr.low)} and {expr_to_string(expr.high)})"
        )
    if isinstance(expr, ast.Like):
        return f"({expr_to_string(expr.operand)} like {expr_to_string(expr.pattern)})"
    if isinstance(expr, ast.IsNull):
        suffix = "is not null" if expr.negated else "is null"
        return f"({expr_to_string(expr.operand)} {suffix})"
    if isinstance(expr, ast.InList):
        items = ", ".join(expr_to_string(i) for i in expr.items)
        return f"({expr_to_string(expr.operand)} in ({items}))"
    if isinstance(expr, ast.InSubquery):
        return f"({expr_to_string(expr.operand)} in (<subquery>))"
    if isinstance(expr, ast.Exists):
        return "exists(<subquery>)"
    if isinstance(expr, ast.ScalarSubquery):
        return "(<scalar subquery>)"
    if isinstance(expr, ast.Case):
        return "case ... end"
    if isinstance(expr, ast.IntervalLiteral):
        return f"interval '{expr.value}' {expr.unit}"
    if isinstance(expr, ast.Star):
        return "*"
    return repr(expr)
