"""Secondary index implementations: B+-Tree, R-Tree (GiST stand-in), hash."""

from .btree import BPlusTree
from .counters import IndexAccessCounters
from .hashindex import HashIndex
from .rtree import RTree

__all__ = [
    "BPlusTree",
    "HashIndex",
    "IndexAccessCounters",
    "RTree",
    "create_index_structure",
]


def create_index_structure(kind, order=64, metrics=None):
    """Factory used by the storage layer to materialise an IndexDef.

    *metrics* is an optional :class:`~repro.engine.obs.MetricsRegistry`;
    when given, the structure counts its probes (``index.btree_probes``,
    ``index.hash_probes``, ``index.rtree_searches``).
    """
    if kind == "btree":
        return BPlusTree(order=order, metrics=metrics)
    if kind == "hash":
        return HashIndex(metrics=metrics)
    if kind == "rtree":
        return RTree(metrics=metrics)
    raise ValueError(f"unknown index kind {kind!r}")
