"""Secondary index implementations: B+-Tree, R-Tree (GiST stand-in), hash."""

from .btree import BPlusTree
from .hashindex import HashIndex
from .rtree import RTree

__all__ = ["BPlusTree", "HashIndex", "RTree", "create_index_structure"]


def create_index_structure(kind, order=64):
    """Factory used by the storage layer to materialise an IndexDef."""
    if kind == "btree":
        return BPlusTree(order=order)
    if kind == "hash":
        return HashIndex()
    if kind == "rtree":
        return RTree()
    raise ValueError(f"unknown index kind {kind!r}")
