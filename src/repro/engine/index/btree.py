"""A B+-Tree supporting duplicate keys and range scans.

This is the "standard index" of the paper: every system archetype that uses
indexes at all maps its *Time*, *Key+Time* and *Value* index settings onto
this structure (§5.1).  Keys may be scalars or tuples of scalars (composite
indexes); values are opaque row identifiers.

Leaves are linked left-to-right so range scans stream without re-descending.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from .counters import IndexAccessCounters


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf):
        self.is_leaf = is_leaf
        self.keys: List[Any] = []
        # internal nodes
        self.children: List["_Node"] = []
        # leaves: one bucket (list of row ids) per key
        self.values: List[List[Any]] = []
        self.next_leaf: Optional["_Node"] = None


class BPlusTree:
    """Ordered multimap from key to row ids."""

    def __init__(self, order=64, metrics=None):
        if order < 4:
            raise ValueError("order must be >= 4")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0  # number of (key, value) pairs
        self._metrics = metrics  # optional obs.MetricsRegistry
        self.access = IndexAccessCounters()

    def __len__(self):
        return self._size

    # -- mutation ---------------------------------------------------------

    def insert(self, key, value):
        """Add *value* under *key* (duplicates allowed)."""
        root = self._root
        result = self._insert(root, key, value)
        if result is not None:
            sep, right = result
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node, key, value):
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx].append(value)
            else:
                node.keys.insert(idx, key)
                node.values.insert(idx, [value])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[idx], key, value)
        if result is not None:
            sep, right = result
            node.keys.insert(idx, sep)
            node.children.insert(idx + 1, right)
            if len(node.keys) > self.order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node):
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    def remove(self, key, value):
        """Remove one (key, value) pair; returns True if it existed.

        The tree uses lazy deletion (no rebalancing): the paper's workloads
        are append-dominated, and empty buckets are pruned from scans.
        """
        leaf, idx = self._find_leaf(key)
        if idx is None:
            return False
        bucket = leaf.values[idx]
        try:
            bucket.remove(value)
        except ValueError:
            return False
        if not bucket:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
        self._size -= 1
        return True

    # -- lookup -----------------------------------------------------------

    def _find_leaf(self, key):
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return node, idx
        return node, None

    def search(self, key) -> List[Any]:
        """All row ids stored under *key* (empty list when absent)."""
        if self._metrics is not None:
            self._metrics.inc("index.btree_probes")
        self.access.probes += 1
        leaf, idx = self._find_leaf(key)
        if idx is None:
            return []
        out = list(leaf.values[idx])
        self.access.rows_returned += len(out)
        return out

    def __contains__(self, key):
        return bool(self.search(key))

    def range_scan(
        self,
        low=None,
        high=None,
        low_inclusive=True,
        high_inclusive=True,
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, row_id) pairs with low <= key <= high, in key order.

        Either bound may be None (unbounded).  Inclusivity flags give the
        four SQL comparison shapes (<, <=, >, >=).
        """
        if self._metrics is not None:
            self._metrics.inc("index.btree_probes")
        access = self.access
        access.range_scans += 1
        node = self._root
        probe = low if low is not None else _MINUS_INF
        while not node.is_leaf:
            if low is None:
                node = node.children[0]
            else:
                node = node.children[bisect.bisect_right(node.keys, probe)]
        if low is None:
            idx = 0
        elif low_inclusive:
            idx = bisect.bisect_left(node.keys, low)
        else:
            idx = bisect.bisect_right(node.keys, low)
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                if high is not None:
                    if high_inclusive and key > high:
                        return
                    if not high_inclusive and key >= high:
                        return
                for value in node.values[idx]:
                    access.rows_returned += 1
                    yield key, value
                idx += 1
            node = node.next_leaf
            idx = 0

    def items(self):
        """All (key, row_id) pairs in key order."""
        return self.range_scan()

    def keys(self):
        """Distinct keys in order."""
        last = _MINUS_INF
        for key, _ in self.range_scan():
            if key != last:
                yield key
                last = key

    def min_key(self):
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0] if node.keys else None

    def max_key(self):
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1] if node.keys else None

    def height(self):
        """Tree height (1 for a lone leaf); exposed for tests/EXPLAIN."""
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h


class _MinusInf:
    """Sentinel ordered before every key (only used for descent probes)."""

    def __lt__(self, other):
        return True

    def __gt__(self, other):
        return False


_MINUS_INF = _MinusInf()
