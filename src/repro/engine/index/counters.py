"""Per-structure access counters backing ``repro_stat_indexes``.

Every index structure owns one :class:`IndexAccessCounters` instance and
bumps it with plain attribute increments on its lookup paths — no registry
indirection, no labels, no branches — so the accounting stays at measured
parity with the un-instrumented engine.  The introspection layer
(:mod:`repro.engine.obs.introspect`) reads the counters when a system view
is scanned; reads never reset or perturb them.

Kept in its own module (not ``index/__init__``) so the structure modules
can import it without a circular import through the package initialiser.
"""

from __future__ import annotations


class IndexAccessCounters:
    """Cheap monotonic access counters for one index structure.

    * ``probes`` — point lookups (equality probe, snapshot lookup);
    * ``range_scans`` — ordered/interval scans and sweeps;
    * ``rows_returned`` — row ids handed back across both shapes.
    """

    __slots__ = ("probes", "range_scans", "rows_returned")

    def __init__(self):
        self.probes = 0
        self.range_scans = 0
        self.rows_returned = 0

    def as_dict(self):
        return {
            "probes": self.probes,
            "range_scans": self.range_scans,
            "rows_returned": self.rows_returned,
        }

    def __repr__(self):
        return (
            f"IndexAccessCounters(probes={self.probes}, "
            f"range_scans={self.range_scans}, "
            f"rows_returned={self.rows_returned})"
        )
