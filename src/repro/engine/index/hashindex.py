"""Hash index: equality-only multimap used for primary-key lookups."""

from __future__ import annotations

from typing import Any, Dict, List

from .counters import IndexAccessCounters


class HashIndex:
    """Unordered multimap from key to row ids.

    Cheaper than a B+-Tree for pure equality probes (the "system-created
    index on the current table" every archetype keeps for its primary key),
    but unable to serve range predicates — the optimizer only considers it
    for ``=`` and ``IN``.
    """

    def __init__(self, metrics=None):
        self._buckets: Dict[Any, List[Any]] = {}
        self._size = 0
        self._metrics = metrics  # optional obs.MetricsRegistry
        self.access = IndexAccessCounters()

    def __len__(self):
        return self._size

    def insert(self, key, value):
        self._buckets.setdefault(key, []).append(value)
        self._size += 1

    def remove(self, key, value):
        bucket = self._buckets.get(key)
        if not bucket:
            return False
        try:
            bucket.remove(value)
        except ValueError:
            return False
        if not bucket:
            del self._buckets[key]
        self._size -= 1
        return True

    def search(self, key) -> List[Any]:
        if self._metrics is not None:
            self._metrics.inc("index.hash_probes")
        self.access.probes += 1
        out = list(self._buckets.get(key, ()))
        self.access.rows_returned += len(out)
        return out

    def __contains__(self, key):
        return key in self._buckets

    def keys(self):
        return self._buckets.keys()

    def items(self):
        for key, bucket in self._buckets.items():
            for value in bucket:
                yield key, value
