"""A one-dimensional R-Tree over periods.

PostgreSQL (the paper's System D) exposes GiST indexes, whose canonical
instantiation is the R-Tree (paper §2.5).  For temporal data the indexed
geometry is a 1-D interval ``[begin, end)``.  This implementation uses the
classic Guttman insertion algorithm with quadratic split, restricted to one
dimension, and supports the two queries temporal predicates need:

* ``search_overlap(lo, hi)`` — all entries whose interval intersects [lo, hi)
* ``search_contains(point)`` — all entries whose interval contains the point

The paper found the GiST index "constantly higher cost than the B-Tree"
(§5.3.3); our benchmarks reproduce that because interval MBRs on
append-ordered history data overlap heavily, forcing multi-path descents.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from .counters import IndexAccessCounters


class _Entry:
    __slots__ = ("lo", "hi", "child", "value")

    def __init__(self, lo, hi, child=None, value=None):
        self.lo = lo
        self.hi = hi
        self.child = child  # _RNode for internal entries
        self.value = value  # row id for leaf entries


class _RNode:
    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf):
        self.is_leaf = is_leaf
        self.entries: List[_Entry] = []


def _enlargement(entry, lo, hi):
    """Area (length) increase needed for *entry* to cover [lo, hi)."""
    new_lo = min(entry.lo, lo)
    new_hi = max(entry.hi, hi)
    return (new_hi - new_lo) - (entry.hi - entry.lo)


class RTree:
    """Guttman R-Tree specialised to 1-D intervals."""

    def __init__(self, max_entries=32, metrics=None):
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 3)
        self._root = _RNode(is_leaf=True)
        self._size = 0
        self._metrics = metrics  # optional obs.MetricsRegistry
        self.access = IndexAccessCounters()

    def __len__(self):
        return self._size

    # -- insertion --------------------------------------------------------

    def insert(self, interval: Tuple[int, int], value: Any):
        lo, hi = interval
        if lo >= hi:
            raise ValueError(f"empty interval [{lo}, {hi})")
        split = self._insert(self._root, lo, hi, value)
        if split is not None:
            left_entry, right_entry = split
            new_root = _RNode(is_leaf=False)
            new_root.entries = [left_entry, right_entry]
            self._root = new_root
        self._size += 1

    def _insert(self, node, lo, hi, value):
        if node.is_leaf:
            node.entries.append(_Entry(lo, hi, value=value))
        else:
            best = min(
                node.entries,
                key=lambda e: (_enlargement(e, lo, hi), e.hi - e.lo),
            )
            split = self._insert(best.child, lo, hi, value)
            best.lo = min(best.lo, lo)
            best.hi = max(best.hi, hi)
            if split is not None:
                node.entries.remove(best)
                node.entries.extend(split)
        if len(node.entries) > self.max_entries:
            return self._split(node)
        return None

    def _split(self, node):
        """Quadratic split: pick the two most wasteful seeds, distribute."""
        entries = node.entries
        worst, seeds = -1, (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                combined = max(entries[i].hi, entries[j].hi) - min(
                    entries[i].lo, entries[j].lo
                )
                waste = combined - (entries[i].hi - entries[i].lo) - (
                    entries[j].hi - entries[j].lo
                )
                if waste > worst:
                    worst, seeds = waste, (i, j)
        i, j = seeds
        left = _RNode(node.is_leaf)
        right = _RNode(node.is_leaf)
        left.entries = [entries[i]]
        right.entries = [entries[j]]
        remaining = [e for k, e in enumerate(entries) if k not in (i, j)]
        for entry in remaining:
            # force-assign to an underfull group near the end
            slack = self.min_entries - len(left.entries)
            if slack >= len(remaining):
                left.entries.append(entry)
                continue
            slack = self.min_entries - len(right.entries)
            if slack >= len(remaining):
                right.entries.append(entry)
                continue
            grow_left = _enlargement(_bounding(left), entry.lo, entry.hi)
            grow_right = _enlargement(_bounding(right), entry.lo, entry.hi)
            (left if grow_left <= grow_right else right).entries.append(entry)
        return _wrap(left), _wrap(right)

    # -- search -----------------------------------------------------------

    def search_overlap(self, lo, hi) -> List[Any]:
        """Row ids whose interval intersects the half-open [lo, hi)."""
        if self._metrics is not None:
            self._metrics.inc("index.rtree_searches")
        self.access.range_scans += 1
        out: List[Any] = []
        self._search(self._root, lo, hi, out)
        self.access.rows_returned += len(out)
        return out

    def search_contains(self, point) -> List[Any]:
        """Row ids whose interval contains *point*."""
        if self._metrics is not None:
            self._metrics.inc("index.rtree_searches")
        self.access.probes += 1
        out: List[Any] = []
        self._search(self._root, point, point + 1, out)
        self.access.rows_returned += len(out)
        return out

    def _search(self, node, lo, hi, out):
        for entry in node.entries:
            if entry.lo < hi and lo < entry.hi:
                if node.is_leaf:
                    out.append(entry.value)
                else:
                    self._search(entry.child, lo, hi, out)

    def all_values(self):
        """Every stored row id (tests use this for completeness checks)."""
        out: List[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if node.is_leaf:
                    out.append(entry.value)
                else:
                    stack.append(entry.child)
        return out

    def height(self):
        h, node = 1, self._root
        while not node.is_leaf:
            node = node.entries[0].child
            h += 1
        return h


def _bounding(node) -> _Entry:
    lo = min(e.lo for e in node.entries)
    hi = max(e.hi for e in node.entries)
    return _Entry(lo, hi)


def _wrap(node) -> _Entry:
    entry = _bounding(node)
    entry.child = node
    return entry
