"""A Timeline Index: the native temporal index the paper's systems lack.

The paper's conclusion notes that none of the tested systems uses dedicated
temporal structures and points to the Timeline Index (Kaufmann et al.,
SIGMOD 2013 — reference [13] of the paper) as the research alternative.
This module implements that structure for the optional **System E**
archetype, so the repository can also demonstrate what the paper's
"future optimizations" buy.

The index is an *event list* over system time: for every version there is
an **activation** event at ``sys_begin`` and (once closed) an
**invalidation** event at ``sys_end``, both ordered by tick.  Periodic
**checkpoints** materialise the set of visible rids, so a snapshot at any
tick is a checkpoint plus a bounded replay — time travel in O(checkpoint +
events-in-between) instead of a full scan.  A single sweep over the events
computes *temporal aggregates* (one result per version boundary), the
operation that costs two orders of magnitude over a full scan when
expressed in SQL:2011 (paper §5.6).
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterator, List, Set, Tuple

from .counters import IndexAccessCounters

ACTIVATE = 1
INVALIDATE = -1


class TimelineIndex:
    """Event list + checkpoints over one table's version history."""

    def __init__(self, checkpoint_interval: int = 1024, metrics=None):
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.checkpoint_interval = checkpoint_interval
        self._metrics = metrics  # optional obs.MetricsRegistry
        self.access = IndexAccessCounters()
        #: events sorted by (tick, order-of-arrival): (tick, kind, rid)
        self._events: List[Tuple[int, int, int]] = []
        self._event_ticks: List[int] = []
        #: checkpoints: (event_offset, frozenset of rids visible after
        #: applying events[0:event_offset]).  Offsets, not ticks: several
        #: events can share one tick, and a checkpoint must never split a
        #: tick's event group ambiguously.
        self._checkpoints: List[Tuple[int, frozenset]] = []
        self._events_since_checkpoint = 0
        self._last_tick = 0

    def __len__(self):
        return len(self._events)

    @property
    def checkpoint_count(self):
        return len(self._checkpoints)

    # -- maintenance -------------------------------------------------------

    def _append(self, tick: int, kind: int, rid: int):
        if tick < self._last_tick:
            raise ValueError(
                f"timeline events must arrive in system-time order "
                f"({tick} < {self._last_tick})"
            )
        self._events.append((tick, kind, rid))
        self._event_ticks.append(tick)
        self._last_tick = tick
        self._events_since_checkpoint += 1
        if self._events_since_checkpoint >= self.checkpoint_interval:
            self._materialise_checkpoint()

    def activate(self, rid: int, tick: int):
        """Record that version *rid* became visible at *tick*."""
        self._append(tick, ACTIVATE, rid)

    def invalidate(self, rid: int, tick: int):
        """Record that version *rid* stopped being visible at *tick*."""
        self._append(tick, INVALIDATE, rid)

    def _materialise_checkpoint(self):
        offset = len(self._events)
        visible, base_offset = self._base_at_offset(offset)
        for index in range(base_offset, offset):
            _tick, kind, rid = self._events[index]
            if kind == ACTIVATE:
                visible.add(rid)
            else:
                visible.discard(rid)
        self._checkpoints.append((offset, frozenset(visible)))
        self._events_since_checkpoint = 0

    # -- queries ---------------------------------------------------------------

    def _base_at_offset(self, end_offset: int) -> Tuple[Set[int], int]:
        """Closest checkpoint whose offset is <= *end_offset*."""
        low, high = 0, len(self._checkpoints)
        while low < high:
            mid = (low + high) // 2
            if self._checkpoints[mid][0] <= end_offset:
                low = mid + 1
            else:
                high = mid
        if low == 0:
            return set(), 0
        offset, rids = self._checkpoints[low - 1]
        return set(rids), offset

    def snapshot_rids(self, tick: int) -> Set[int]:
        """Rids of all versions visible at system time *tick*.

        Visibility is half-open: a version activated at ``tick`` is
        visible, one invalidated at ``tick`` is not.
        """
        if self._metrics is not None:
            self._metrics.inc("index.timeline_lookups")
        self.access.probes += 1
        end = bisect.bisect_right(self._event_ticks, tick)
        visible, offset = self._base_at_offset(end)
        for index in range(offset, end):
            _event_tick, kind, rid = self._events[index]
            if kind == ACTIVATE:
                visible.add(rid)
            else:
                visible.discard(rid)
        self.access.rows_returned += len(visible)
        return visible

    def boundaries(self) -> List[int]:
        """All distinct ticks at which visibility changed."""
        out = []
        last = None
        for tick in self._event_ticks:
            if tick != last:
                out.append(tick)
                last = tick
        return out

    def sweep(self) -> Iterator[Tuple[int, Set[int]]]:
        """Yield (tick, visible-rid set) at every version boundary.

        The returned set is reused between yields — copy it if you keep it.
        """
        if self._metrics is not None:
            self._metrics.inc("index.timeline_sweeps")
        self.access.range_scans += 1
        visible: Set[int] = set()
        index = 0
        events = self._events
        total = len(events)
        while index < total:
            tick = events[index][0]
            while index < total and events[index][0] == tick:
                _t, kind, rid = events[index]
                if kind == ACTIVATE:
                    visible.add(rid)
                else:
                    visible.discard(rid)
                index += 1
            yield tick, visible

    def temporal_aggregate(
        self,
        value_of: Callable[[int], float],
        functions: Tuple[str, ...] = ("count",),
    ) -> List[Tuple[int, Tuple[float, ...]]]:
        """One-sweep temporal aggregation (the paper's R3 operator).

        ``value_of(rid)`` supplies the aggregated value of a version.
        Supported functions: ``count``, ``sum``, ``avg``.  Incremental
        maintenance makes the whole computation O(events), versus the
        SQL rewrite's O(boundaries × versions).
        """
        for function in functions:
            if function not in ("count", "sum", "avg"):
                raise ValueError(f"unsupported temporal aggregate {function!r}")
        if self._metrics is not None:
            self._metrics.inc("index.timeline_sweeps")
        self.access.range_scans += 1
        out = []
        count = 0
        total = 0.0
        index = 0
        events = self._events
        n = len(events)
        while index < n:
            tick = events[index][0]
            while index < n and events[index][0] == tick:
                _t, kind, rid = events[index]
                value = value_of(rid)
                if kind == ACTIVATE:
                    count += 1
                    if value is not None:
                        total += value
                else:
                    count -= 1
                    if value is not None:
                        total -= value
                index += 1
            row = []
            for function in functions:
                if function == "count":
                    row.append(count)
                elif function == "sum":
                    row.append(total if count else None)
                else:
                    row.append(total / count if count else None)
            out.append((tick, tuple(row)))
        return out

    def temporal_join_pairs(self, other: "TimelineIndex") -> Iterator[Tuple[int, int]]:
        """System-time overlap join: (rid_self, rid_other) pairs whose
        visibility intervals intersect — the native temporal join the
        SQL:2011 systems are missing (§5.7).

        Implemented as a coordinated sweep over both event lists.
        """
        if self._metrics is not None:
            self._metrics.inc("index.timeline_sweeps")
        self.access.range_scans += 1
        events = sorted(
            [(t, k, r, 0) for t, k, r in self._events]
            + [(t, k, r, 1) for t, k, r in other._events],
            # invalidations before activations at the same tick: half-open
            # intervals that merely touch do not overlap
            key=lambda e: (e[0], e[1]),
        )
        live: Tuple[Set[int], Set[int]] = (set(), set())
        emitted = set()
        for _tick, kind, rid, side in events:
            if kind == ACTIVATE:
                live[side].add(rid)
                for other_rid in live[1 - side]:
                    pair = (rid, other_rid) if side == 0 else (other_rid, rid)
                    if pair not in emitted:
                        emitted.add(pair)
                        yield pair
            else:
                live[side].discard(rid)
