"""Engine observability: structured tracer, metrics registry, slow-query log.

See ``docs/OBSERVABILITY.md`` for the span and metric catalogue and the
paper sections each one diagnoses.  This package is stdlib-only by design:
every engine layer (storage, index, txn, plan, session) may import it
without violating the layering invariants in ``tools/engine_lint.py``.
"""

from .metrics import COUNTERS, HISTOGRAMS, Histogram, MetricsRegistry
from .profile import (
    SpanNode,
    folded_stacks,
    format_folded,
    format_operator_table,
    load_jsonl,
    operator_table,
    render_flamegraph_svg,
)
from .sinks import JsonlSink, RingBufferSink
from .slowlog import SlowQueryLog
from .tracer import Span, Tracer, render_span_tree

__all__ = [
    "COUNTERS",
    "HISTOGRAMS",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "RingBufferSink",
    "SlowQueryLog",
    "Span",
    "SpanNode",
    "Tracer",
    "folded_stacks",
    "format_folded",
    "format_operator_table",
    "load_jsonl",
    "operator_table",
    "render_flamegraph_svg",
    "render_span_tree",
]
