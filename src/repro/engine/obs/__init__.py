"""Engine observability: structured tracer, metrics registry, slow-query log.

See ``docs/OBSERVABILITY.md`` for the span and metric catalogue and the
paper sections each one diagnoses.  This package is stdlib-only by design:
every engine layer (storage, index, txn, plan, session) may import it
without violating the layering invariants in ``tools/engine_lint.py``.
"""

from .introspect import (
    INTROSPECTION_METRICS,
    SYSTEM_VIEWS,
    SYSTEM_VIEW_PREFIX,
    introspection_openmetrics,
    is_system_view,
    view_columns,
    view_rows,
)
from .metrics import COUNTERS, HISTOGRAMS, Histogram, MetricsRegistry
from .profile import (
    SpanNode,
    folded_stacks,
    format_folded,
    format_operator_table,
    load_jsonl,
    operator_table,
    render_flamegraph_svg,
)
from .sinks import JsonlSink, RingBufferSink
from .slowlog import SlowQueryLog
from .telemetry import (
    STATEMENT_FIELDS,
    STATEMENT_METRICS,
    StatementStats,
    StatementStatsStore,
    fingerprint,
    normalize_statement,
    render_openmetrics,
    validate_openmetrics,
)
from .tracer import Span, Tracer, render_span_tree

__all__ = [
    "COUNTERS",
    "HISTOGRAMS",
    "Histogram",
    "INTROSPECTION_METRICS",
    "JsonlSink",
    "MetricsRegistry",
    "RingBufferSink",
    "STATEMENT_FIELDS",
    "STATEMENT_METRICS",
    "SYSTEM_VIEWS",
    "SYSTEM_VIEW_PREFIX",
    "SlowQueryLog",
    "Span",
    "SpanNode",
    "StatementStats",
    "StatementStatsStore",
    "Tracer",
    "fingerprint",
    "introspection_openmetrics",
    "is_system_view",
    "normalize_statement",
    "render_openmetrics",
    "validate_openmetrics",
    "view_columns",
    "view_rows",
    "folded_stacks",
    "format_folded",
    "format_operator_table",
    "load_jsonl",
    "operator_table",
    "render_flamegraph_svg",
    "render_span_tree",
]
