"""Storage introspection: engine internals as SQL-queryable system views.

The paper's headline finding is the cost asymmetry between current-partition
and history access (26×–73×, §5.3) — but a global metrics registry cannot
say *which* tables, partitions, indexes or version chains a workload
actually hammers.  This module assembles that per-object picture from the
cheap access counters the storage and index layers maintain
(:class:`~repro.engine.storage.versioned.AccessCounters`,
:class:`~repro.engine.index.counters.IndexAccessCounters`) and exposes it
as five relations, the ``pg_stat_*`` idiom:

* ``repro_stat_tables``     — per-table, per-partition size and scan split;
* ``repro_stat_indexes``    — per-index probe/range-scan/row accounting;
* ``repro_stat_history``    — version-chain depth histogram, live vs. dead
  versions, temporal extents per partition;
* ``repro_stat_statements`` — the PR 8 statement store, now queryable;
* ``repro_stat_metrics``    — the metrics registry itself.

The SQL layer resolves these names like tables (``Database.
system_view_columns`` / ``system_view_rows``) and lowers them to a
``VirtualScan`` operator, so filters, joins and EXPLAIN all compose.
Assembling a view reads engine state but never perturbs it: row iteration
goes through ``VersionedTable.scan_partition_quiet`` which bumps no
stats, metrics or access counters.

``SYSTEM_VIEWS`` and ``INTROSPECTION_METRICS`` below are pure literals:
``tools/engine_lint.py`` (check ``view-catalogue``) parses them statically
and requires every view, column and metric family to be documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterator, List, Optional, Tuple

from .metrics import HISTOGRAMS
from .telemetry import STATEMENT_FIELDS, _escape_help, _sample

#: reserved relation-name prefix; CREATE TABLE/VIEW reject it
SYSTEM_VIEW_PREFIX = "repro_stat_"

#: view name -> {column name -> description}.  Column order here *is* the
#: row layout produced by :func:`view_rows`; keep the two in lockstep.
SYSTEM_VIEWS: Dict[str, Dict[str, str]] = {
    "repro_stat_tables": {
        "table_name": "table the partition belongs to",
        "partition": "physical partition: current, history or single",
        "row_count": "row versions physically stored in the partition",
        "est_bytes": "estimated partition payload bytes (sampled row sizes)",
        "scans": "full scans of this partition since database start",
        "rows_read": "rows produced by those scans (cumulative)",
        "scan_share": "this partition's fraction of the table's scans (NULL before any scan)",
        "last_analyze": "table catalog version at the last ANALYZE snapshot (NULL if never analyzed)",
        "stats_stale": "1 if DDL/DML invalidated the snapshot, 0 if fresh, NULL if never analyzed",
    },
    "repro_stat_indexes": {
        "index_name": "index name as created (timeline indexes use <table>_timeline)",
        "table_name": "indexed table",
        "partition": "partition the structure lives on (timeline: all)",
        "kind": "structure kind: btree, hash, rtree or timeline",
        "columns": "indexed columns, comma separated",
        "entries": "entries currently stored in the structure",
        "probes": "point lookups against the structure",
        "range_scans": "range/interval scans and event-list sweeps",
        "rows_returned": "row ids handed back across probes and scans",
    },
    "repro_stat_history": {
        "table_name": "table the chains belong to",
        "partition": "partition the versions are stored in",
        "chain_depth": "versions per primary key (histogram bucket)",
        "chains": "number of keys with exactly chain_depth versions here",
        "versions": "row versions in this bucket (chains x chain_depth)",
        "live_versions": "versions still open (sys_end = END_OF_TIME)",
        "dead_versions": "versions closed by a later update/delete",
        "sys_time_min": "earliest sys_begin in the bucket (NULL if non-versioned)",
        "sys_time_max": "latest closed sys_end in the bucket (NULL if all open)",
        "app_time_min": "earliest application-time begin (NULL without app time)",
        "app_time_max": "latest application-time end (NULL without app time)",
    },
    "repro_stat_statements": {
        "fingerprint": "stable 12-hex-digit hash of the normalized statement",
        "query": "normalized statement text (literals collapsed to ?)",
        "calls": "number of executions (successful and aborted)",
        "time_total_s": "total wall seconds across all executions",
        "time_min_s": "fastest single execution (seconds)",
        "time_max_s": "slowest single execution (seconds)",
        "time_mean_s": "mean execution time (seconds)",
        "time_p50_s": "streaming median over the retained reservoir",
        "time_p95_s": "streaming 95th percentile over the retained reservoir",
        "rows": "total rows returned (SELECT) or affected (DML)",
        "rows_scanned": "total rows produced by leaf operators (scans)",
        "batches": "total batches produced by all plan operators",
        "peak_ws_bytes": "peak estimated working-set bytes of any operator",
        "cache_hits": "executions answered by a cached plan",
        "cache_misses": "executions that parsed and planned from scratch",
        "cache_hit_ratio": "cache_hits / (cache_hits + cache_misses), null before any lookup",
        "diagnostics": "cumulative analyzer findings attributed to this statement",
        "timeouts": "executions aborted by deadline or cancellation",
        "aborts": "executions aborted by any other error",
    },
    "repro_stat_metrics": {
        "name": "metric name as declared in the registry",
        "kind": "counter or histogram",
        "value": "counter value (NULL for histograms)",
        # obs_-prefixed so the columns stay selectable: bare count/sum/
        # min/max parse as aggregate calls, not identifiers
        "obs_count": "histogram observation count (NULL for counters)",
        "obs_sum": "histogram observation sum (NULL for counters)",
        "obs_min": "smallest observation (NULL for counters)",
        "obs_max": "largest observation (NULL for counters)",
        "mean": "mean observation (NULL for counters)",
        "p50": "streaming median over the reservoir (NULL for counters)",
        "p95": "streaming 95th percentile over the reservoir (NULL for counters)",
    },
}

#: OpenMetrics families emitted by :func:`introspection_openmetrics`,
#: family name -> (type, help).  Partition families are labelled
#: ``table``/``partition``; index families add ``index`` and ``kind``.
#: Check ``view-catalogue`` requires every key in docs/OBSERVABILITY.md.
INTROSPECTION_METRICS: Dict[str, Tuple[str, str]] = {
    "repro_partition_rows": ("gauge", "row versions physically stored in one partition"),
    "repro_partition_scans": ("counter", "full scans of one partition"),
    "repro_partition_rows_read": ("counter", "rows produced by one partition's scans"),
    "repro_index_entries": ("gauge", "entries currently stored in one index structure"),
    "repro_index_probes": ("counter", "point lookups against one index structure"),
    "repro_index_range_scans": ("counter", "range/interval scans of one index structure"),
    "repro_index_rows_returned": ("counter", "row ids handed back by one index structure"),
}

#: rows sampled per partition when estimating ``est_bytes``
_BYTES_SAMPLE = 64


def is_system_view(name: str) -> bool:
    return name.lower() in SYSTEM_VIEWS


def view_columns(name: str) -> Optional[Tuple[str, ...]]:
    """Column tuple of a system view, or ``None`` for ordinary names."""
    spec = SYSTEM_VIEWS.get(name.lower())
    if spec is None:
        return None
    return tuple(spec)


def view_rows(db, name: str) -> List[tuple]:
    """Materialise one system view over *db* (a ``Database``).

    Raised KeyError means the caller failed to check :func:`is_system_view`.
    """
    return _ASSEMBLERS[name.lower()](db)


# ---------------------------------------------------------------------------
# row assemblers
# ---------------------------------------------------------------------------


def _row_bytes(row) -> int:
    total = sys.getsizeof(row)
    for value in row:
        total += sys.getsizeof(value)
    return total


def _estimate_partition_bytes(part) -> int:
    """Payload estimate: mean sampled row size x row count.  Sampling goes
    straight to the store so the estimate never moves the scan counters."""
    count = len(part)
    if not count:
        return 0
    sampled = 0
    sampled_bytes = 0
    for _rid, row in part.store.scan():
        sampled_bytes += _row_bytes(tuple(row))
        sampled += 1
        if sampled >= _BYTES_SAMPLE:
            break
    return int(sampled_bytes / sampled * count) if sampled else 0


def _stats_freshness(db, table) -> Tuple[Optional[int], Optional[int]]:
    """(last_analyze, stats_stale) for one table, without bumping the
    ``stats.*`` lookup counters the way ``Database.stats_for`` does."""
    from ..stats import mutation_marker

    snapshot = db.catalog.stats_of(table.schema.name)
    if snapshot is None:
        return None, None
    stale = (
        snapshot.catalog_version != db.catalog.version_of(table.schema.name)
        or snapshot.mutation_marker != mutation_marker(table)
    )
    return snapshot.catalog_version, (1 if stale else 0)


def _stat_tables_rows(db) -> List[tuple]:
    out = []
    for table in db.tables():
        last_analyze, stale = _stats_freshness(db, table)
        parts = [table.partition(name) for name in table.partition_names()]
        total_scans = sum(p.access.scans for p in parts)
        for part in parts:
            share = (part.access.scans / total_scans) if total_scans else None
            out.append((
                table.schema.name,
                part.name,
                len(part),
                _estimate_partition_bytes(part),
                part.access.scans,
                part.access.rows_read,
                share,
                last_analyze,
                stale,
            ))
    return out


def _index_structures(db) -> Iterator[Tuple[str, str, str, str, str, object]]:
    """(index_name, table, partition, kind, columns, structure) for every
    index structure in the database, timeline indexes included."""
    for table in db.tables():
        for part_name in table.partition_names():
            part = table.partition(part_name)
            for index_name, (index, structure) in part.indexes.items():
                yield (
                    index_name,
                    table.schema.name,
                    part_name,
                    index.kind,
                    ",".join(index.columns),
                    structure,
                )
        timeline = getattr(table, "timeline", None)
        if timeline is not None:
            period = table.schema.system_period
            columns = (
                f"{period.begin_column},{period.end_column}" if period else ""
            )
            yield (
                f"{table.schema.name}_timeline",
                table.schema.name,
                "all",
                "timeline",
                columns,
                timeline,
            )


def _stat_indexes_rows(db) -> List[tuple]:
    out = []
    for name, table, partition, kind, columns, structure in _index_structures(db):
        access = structure.access
        out.append((
            name,
            table,
            partition,
            kind,
            columns,
            len(structure),
            access.probes,
            access.range_scans,
            access.rows_returned,
        ))
    return out


def _stat_history_rows(db) -> List[tuple]:
    from ..types import END_OF_TIME

    out = []
    for table in db.tables():
        schema = table.schema
        sys_period = schema.system_period
        app_periods = schema.application_periods
        app_period = app_periods[0] if app_periods else None
        sys_pos = (
            (schema.position(sys_period.begin_column),
             schema.position(sys_period.end_column))
            if sys_period else None
        )
        app_pos = (
            (schema.position(app_period.begin_column),
             schema.position(app_period.end_column))
            if app_period else None
        )
        for part_name in table.partition_names():
            chains: Dict[tuple, List[tuple]] = {}
            for _rid, row in table.scan_partition_quiet(part_name):
                chains.setdefault(schema.key_of(row), []).append(tuple(row))
            buckets: Dict[int, List[tuple]] = {}
            for versions in chains.values():
                buckets.setdefault(len(versions), []).append(versions)
            for depth in sorted(buckets):
                grouped = buckets[depth]
                rows = [row for versions in grouped for row in versions]
                live = dead = 0
                sys_min = sys_max = None
                app_min = app_max = None
                if sys_pos is not None:
                    begins = [row[sys_pos[0]] for row in rows]
                    closed = [
                        row[sys_pos[1]] for row in rows
                        if row[sys_pos[1]] < END_OF_TIME
                    ]
                    live = len(rows) - len(closed)
                    dead = len(closed)
                    sys_min = min(begins) if begins else None
                    sys_max = max(closed) if closed else None
                else:
                    live = len(rows)
                if app_pos is not None:
                    app_min = min(row[app_pos[0]] for row in rows)
                    app_max = max(row[app_pos[1]] for row in rows)
                out.append((
                    schema.name,
                    part_name,
                    depth,
                    len(grouped),
                    len(rows),
                    live,
                    dead,
                    sys_min,
                    sys_max,
                    app_min,
                    app_max,
                ))
    return out


def _stat_statements_rows(db) -> List[tuple]:
    fields = tuple(STATEMENT_FIELDS)
    return [
        tuple(entry[field] for field in fields)
        for entry in db.telemetry.snapshot()
    ]


def _stat_metrics_rows(db) -> List[tuple]:
    out = []
    for name, value in db.metrics.counters().items():
        out.append((name, "counter", value, None, None, None, None, None, None, None))
    for name in HISTOGRAMS:
        hist = db.metrics.histogram(name)
        mean = hist.total / hist.count if hist.count else None
        out.append((
            name,
            "histogram",
            None,
            hist.count,
            hist.total,
            hist.min,
            hist.max,
            mean,
            hist.percentile(50),
            hist.percentile(95),
        ))
    return out


_ASSEMBLERS = {
    "repro_stat_tables": _stat_tables_rows,
    "repro_stat_indexes": _stat_indexes_rows,
    "repro_stat_history": _stat_history_rows,
    "repro_stat_statements": _stat_statements_rows,
    "repro_stat_metrics": _stat_metrics_rows,
}


# ---------------------------------------------------------------------------
# OpenMetrics exposition of the per-partition / per-index counters
# ---------------------------------------------------------------------------


def introspection_openmetrics(db) -> List[str]:
    """Exposition lines (no ``# EOF``) for the per-partition and per-index
    access counters; ``render_openmetrics`` appends them via ``extra``."""
    lines: List[str] = []
    for family, (kind, help_text) in INTROSPECTION_METRICS.items():
        lines.append(f"# HELP {family} {_escape_help(help_text)}")
        lines.append(f"# TYPE {family} {kind}")
        suffix = "_total" if kind == "counter" else ""
        if family.startswith("repro_partition_"):
            for table in db.tables():
                for part_name in table.partition_names():
                    part = table.partition(part_name)
                    labels = {"table": table.schema.name, "partition": part_name}
                    if family == "repro_partition_rows":
                        value = len(part)
                    elif family == "repro_partition_scans":
                        value = part.access.scans
                    else:
                        value = part.access.rows_read
                    lines.append(_sample(f"{family}{suffix}", labels, value))
        else:
            for name, table, partition, kind_, _cols, structure in (
                _index_structures(db)
            ):
                labels = {
                    "index": name,
                    "table": table,
                    "partition": partition,
                    "kind": kind_,
                }
                if family == "repro_index_entries":
                    value = len(structure)
                elif family == "repro_index_probes":
                    value = structure.access.probes
                elif family == "repro_index_range_scans":
                    value = structure.access.range_scans
                else:
                    value = structure.access.rows_returned
                lines.append(_sample(f"{family}{suffix}", labels, value))
    return lines


__all__ = [
    "INTROSPECTION_METRICS",
    "SYSTEM_VIEWS",
    "SYSTEM_VIEW_PREFIX",
    "introspection_openmetrics",
    "is_system_view",
    "view_columns",
    "view_rows",
]
