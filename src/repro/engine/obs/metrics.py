"""Central metrics registry: named counters and histograms.

Every metric the engine emits is declared here, once, with a one-line
description.  The registry pre-populates its counter table from these
declarations, so incrementing an undeclared name raises ``KeyError`` at the
call site instead of silently creating a new counter — and
``tools/engine_lint.py`` cross-checks the same declarations statically
(check ``metric-names``), so a typo cannot survive either at runtime or in
CI.  See ``docs/OBSERVABILITY.md`` for the catalogue with the paper
sections each metric diagnoses.

This module is stdlib-only and imports nothing from the engine: the
storage, index and transaction layers all depend on it, and the layering
check (engine/storage must not import engine/sql or engine/plan) has to
keep holding transitively.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Dict, List, Optional, Tuple

#: counter name -> description.  Names are ``layer.event`` dotted pairs.
COUNTERS: Dict[str, str] = {
    "plan.cache_hit": "plan-cache lookups that returned a valid cached plan",
    "plan.cache_miss": "plan-cache lookups that found no (valid) entry",
    "plan.cache_evict": "LRU evictions when the plan cache overflowed",
    "plan.cache_invalidate": "cached plans dropped because DDL touched a dependency",
    "plan.cost_based_joins": "join products ordered by the statistics-backed cost model",
    "plan.greedy_joins": "join products ordered by the greedy size heuristic (no usable stats)",
    "plan.temporal_fusions": "rewrite-shaped plans fused into native temporal operators",
    "stats.analyze_runs": "ANALYZE statements / Database.analyze() invocations",
    "stats.tables_analyzed": "per-table statistics snapshots collected by ANALYZE",
    "stats.lookups": "planner requests for a table's statistics snapshot",
    "stats.hits": "statistics lookups answered by a valid snapshot",
    "stats.misses": "statistics lookups for tables never analyzed",
    "stats.stale": "statistics lookups rejected because DDL/DML invalidated the snapshot",
    "stats.auto_analyze_runs": "ANALYZE runs triggered by the mutation-count threshold",
    "storage.current_scans": "full scans of a current (or single) partition",
    "storage.history_scans": "full scans of a history partition",
    "storage.current_rows_scanned": "rows produced by current-partition scans",
    "storage.history_rows_scanned": "rows produced by history-partition scans",
    "storage.vp_merge_joins": "sort/merge joins reconstructing vertically partitioned temporal columns",
    "storage.history_moves": "closed versions moved into a history partition",
    "storage.undo_drains": "undo-log drain operations (System B background process)",
    "storage.versions_invalidated": "current versions closed by update/delete",
    "storage.column_merges": "delta-into-main merges of a column store",
    "index.btree_probes": "B+-tree descents (point searches and range-scan starts)",
    "index.hash_probes": "hash-index equality probes",
    "index.rtree_searches": "R-tree interval searches (overlap and stab queries)",
    "index.pk_probes": "primary-key lookups against the current-rid map",
    "index.timeline_lookups": "Timeline-Index snapshot reconstructions (checkpoint + replay)",
    "index.timeline_sweeps": "Timeline-Index event-list sweeps (temporal aggregate/join)",
    "txn.versions_written": "row versions appended to any partition",
    "txn.commits": "committed transactions",
    "txn.rollbacks": "rolled-back transactions",
    "slowlog.entries": "queries recorded by the slow-query log",
}

#: histogram name -> description.  Histograms keep summary statistics plus a
#: bounded reservoir of recent samples for percentile estimates.
HISTOGRAMS: Dict[str, str] = {
    "query.execute_s": "wall seconds spent in the execute phase of one statement",
}


#: default histogram bucket upper bounds (seconds, log-spaced 100 µs–10 s).
#: Bucket counts are exact over *all* observations — unlike the percentile
#: reservoir they never forget — and render as cumulative ``le`` series in
#: the OpenMetrics exposition.
BUCKET_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """Summary statistics, fixed log-scale buckets, and a bounded
    reservoir of recent samples for percentile estimates."""

    __slots__ = ("count", "total", "min", "max", "bounds", "_buckets", "_samples")

    def __init__(self, reservoir: int = 512, bounds: Tuple[float, ...] = BUCKET_BOUNDS):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bounds = bounds
        #: per-bucket (non-cumulative) counts; index len(bounds) is +Inf
        self._buckets: List[int] = [0] * (len(bounds) + 1)
        self._samples: deque = deque(maxlen=reservoir)

    def observe(self, value: float):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._buckets[bisect_left(self.bounds, value)] += 1
        self._samples.append(value)

    def buckets(self) -> List[Tuple[Optional[float], int]]:
        """Cumulative ``(upper bound, count)`` pairs; the final bound is
        ``None`` (+Inf) and its count equals :attr:`count`."""
        out: List[Tuple[Optional[float], int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self._buckets):
            running += bucket
            out.append((bound, running))
        out.append((None, running + self._buckets[-1]))
        return out

    def percentile(self, pct: float) -> Optional[float]:
        """Linear-interpolated percentile over the retained samples."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = (pct / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def summary(self) -> Dict[str, object]:
        mean = self.total / self.count if self.count else None
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": mean,
            "p95": self.percentile(95),
            "buckets": [
                {"le": bound if bound is not None else "+Inf", "count": cumulative}
                for bound, cumulative in self.buckets()
            ],
        }

    def reset(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._buckets = [0] * (len(self.bounds) + 1)
        self._samples.clear()


class MetricsRegistry:
    """One registry per :class:`~repro.engine.database.Database` instance.

    The benchmark service resets it between measurement cells, so each
    :class:`~repro.bench.service.Measurement` carries the metric *delta* of
    exactly its own repetitions.
    """

    __slots__ = ("_counters", "_histograms")

    def __init__(self):
        self._counters: Dict[str, int] = dict.fromkeys(COUNTERS, 0)
        self._histograms: Dict[str, Histogram] = {
            name: Histogram() for name in HISTOGRAMS
        }

    # -- writes ------------------------------------------------------------

    def inc(self, name: str, delta: int = 1):
        try:
            self._counters[name] += delta
        except KeyError:
            raise KeyError(
                f"metric {name!r} is not declared in "
                f"repro.engine.obs.metrics.COUNTERS"
            ) from None

    def observe(self, name: str, value: float):
        try:
            self._histograms[name].observe(value)
        except KeyError:
            raise KeyError(
                f"histogram {name!r} is not declared in "
                f"repro.engine.obs.metrics.HISTOGRAMS"
            ) from None

    # -- reads -------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters[name]

    def counters(self, nonzero: bool = False) -> Dict[str, int]:
        if nonzero:
            return {n: v for n, v in self._counters.items() if v}
        return dict(self._counters)

    def histogram(self, name: str) -> Histogram:
        return self._histograms[name]

    def snapshot(self) -> Dict[str, Dict]:
        """Counters plus histogram summaries, JSON-serialisable."""
        return {
            "counters": self.counters(),
            "histograms": {
                name: hist.summary() for name, hist in self._histograms.items()
            },
        }

    def reset(self):
        for name in self._counters:
            self._counters[name] = 0
        for hist in self._histograms.values():
            hist.reset()
