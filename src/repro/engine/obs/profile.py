"""Span-tree profiler: folded stacks, flamegraph SVG, operator attribution.

The tracer records where a query's time went (parse, rewrite, execute,
individual operators); this module turns those span trees into the three
artefacts profilers expect:

* **folded stacks** — one line per stack, ``query;execute;SeqScan 1234``,
  value in integer microseconds of *self* time (span duration minus its
  children), the input format of Brendan Gregg's flamegraph tooling.
  Because values are self times, the values of a tree sum back to its
  root's duration — nothing is double-counted.
* **flamegraph SVG** — a self-contained pure-python renderer (no external
  tooling): one rect per span, width proportional to duration, children
  stacked above their parent.  Sibling widths tile the parent exactly, so
  the per-phase widths at depth 1 sum to the root span's width.
* **operator table** — per-operator totals (invocations, total time, self
  time, rows) plus the plan-cache hit share of the traced statements,
  attributing the Fig 2/5 cost structure to physical operators.

Input can be live :class:`~repro.engine.obs.tracer.Span` objects (from a
``RingBufferSink``), the recursive dict shape ``Span.to_dict(recursive=True)``
records (slow-query-log entries, aborted trees included), or the flat
JSONL stream a :class:`~repro.engine.obs.sinks.JsonlSink` appends — parent
ids are enough to rebuild the forest.
"""

from __future__ import annotations

import html
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SpanNode",
    "folded_stacks",
    "format_folded",
    "format_operator_table",
    "node_from_dict",
    "node_from_span",
    "nodes_from_flat",
    "load_jsonl",
    "operator_table",
    "render_flamegraph_svg",
]


class SpanNode:
    """Normalised span-tree node: the profiler's single input shape."""

    __slots__ = ("name", "duration", "attrs", "status", "children")

    def __init__(self, name: str, duration: float, attrs: Optional[Dict] = None,
                 status: str = "ok", children: Optional[List["SpanNode"]] = None):
        self.name = name
        self.duration = float(duration or 0.0)
        self.attrs = attrs or {}
        self.status = status
        self.children = children if children is not None else []

    @property
    def self_time(self) -> float:
        """Duration not covered by children (clamped at zero)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    @property
    def frame(self) -> str:
        """The flamegraph frame label: operator spans use their op label."""
        if self.name == "operator" and self.attrs.get("op"):
            return str(self.attrs["op"])
        if self.status == "aborted":
            return f"{self.name}!"
        return self.name

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self):
        return f"<SpanNode {self.frame} {self.duration * 1000:.3f}ms>"


# ---------------------------------------------------------------------------
# building the normalised forest
# ---------------------------------------------------------------------------


def node_from_span(span) -> SpanNode:
    """A live tracer ``Span`` (children attached) as a :class:`SpanNode`."""
    return SpanNode(
        span.name,
        span.duration or 0.0,
        dict(span.attrs),
        getattr(span, "status", "ok"),
        [node_from_span(child) for child in span.children],
    )


def node_from_dict(record: Dict) -> SpanNode:
    """The recursive ``Span.to_dict(recursive=True)`` shape (slow-query-log
    entries, aborted trees included) as a :class:`SpanNode`."""
    return SpanNode(
        record.get("name", "?"),
        record.get("duration_s") or 0.0,
        dict(record.get("attrs") or {}),
        record.get("status", "ok"),
        [node_from_dict(child) for child in record.get("children") or []],
    )


def nodes_from_flat(records: Iterable[Dict]) -> List[SpanNode]:
    """Rebuild the forest from flat span dicts (JsonlSink output).

    Children arrive before parents (inner regions close first), so the
    pass collects every span first and then attaches by ``parent_id``.
    Spans whose parent never closed (an aborted run cut short) surface as
    roots of their own — the walker never drops data.
    """
    built: Dict[int, SpanNode] = {}
    order: List[Tuple[Optional[int], int]] = []
    for record in records:
        span_id = record.get("span_id")
        if span_id is None:
            continue
        built[span_id] = node_from_dict(record)
        order.append((record.get("parent_id"), span_id))
    roots: List[SpanNode] = []
    for parent_id, span_id in order:
        node = built[span_id]
        if parent_id is not None and parent_id in built:
            built[parent_id].children.append(node)
        else:
            roots.append(node)
    return roots


def load_jsonl(path) -> List[SpanNode]:
    """Load a JsonlSink span stream (or slow-query-log JSONL) as a forest.

    Accepts both line shapes: flat span dicts (``span_id``/``parent_id``)
    and slow-query-log entries carrying a recursive tree under ``spans``.
    """
    flat: List[Dict] = []
    roots: List[SpanNode] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "spans" in record and isinstance(record["spans"], dict):
                roots.append(node_from_dict(record["spans"]))
            else:
                flat.append(record)
    roots.extend(nodes_from_flat(flat))
    return roots


def normalize(roots: Sequence) -> List[SpanNode]:
    """Coerce a mixed sequence (live spans / dicts / SpanNodes) to nodes."""
    out: List[SpanNode] = []
    for root in roots:
        if isinstance(root, SpanNode):
            out.append(root)
        elif isinstance(root, dict):
            out.append(node_from_dict(root))
        else:
            out.append(node_from_span(root))
    return out


# ---------------------------------------------------------------------------
# folded stacks
# ---------------------------------------------------------------------------


def folded_stacks(roots: Sequence) -> List[Tuple[str, int]]:
    """``(stack, microseconds)`` pairs, one per span with nonzero self time.

    The stack is the ``;``-joined frame path from the root; the value is
    the span's *self* time in integer microseconds, so summing every value
    of one tree recovers the root duration (up to rounding).
    """
    out: List[Tuple[str, int]] = []

    def visit(node: SpanNode, prefix: str):
        stack = f"{prefix};{node.frame}" if prefix else node.frame
        value = int(round(node.self_time * 1e6))
        if value > 0 or not node.children:
            out.append((stack, value))
        for child in node.children:
            visit(child, stack)

    for root in normalize(roots):
        visit(root, "")
    return out


def format_folded(roots: Sequence) -> str:
    """The folded-stack text file flamegraph tooling consumes."""
    return "\n".join(f"{stack} {value}" for stack, value in folded_stacks(roots))


# ---------------------------------------------------------------------------
# flamegraph SVG
# ---------------------------------------------------------------------------

_ROW_H = 17
_FONT_PX = 11
#: warm flamegraph palette; a frame keeps its colour across renders
_PALETTE = (
    "#e4572e", "#f28f3b", "#c8553d", "#f2a65a", "#d1495b",
    "#e07a5f", "#bc6c25", "#dd6e42", "#e26d5c", "#c44536",
)


def _color(frame: str) -> str:
    return _PALETTE[sum(frame.encode()) % len(_PALETTE)]


def _depth(node: SpanNode) -> int:
    return 1 + max((_depth(child) for child in node.children), default=0)


def render_flamegraph_svg(roots: Sequence, width: int = 1000,
                          title: str = "repro flamegraph") -> str:
    """A self-contained flamegraph SVG for one or more span trees.

    Widths are proportional to span durations over the summed root
    durations; children are laid out left-to-right inside their parent
    starting at the parent's left edge, so sibling widths tile the parent
    and the depth-1 phase widths sum to the root span's width.  Each rect
    carries ``data-name``/``data-dur-us``/``data-depth`` attributes and a
    ``<title>`` tooltip, so the file is grep- and test-friendly.
    """
    forest = [r for r in normalize(roots) if r.duration > 0]
    total = sum(root.duration for root in forest)
    if not forest or total <= 0:
        raise ValueError("no finished spans with nonzero duration to render")
    depth = max(_depth(root) for root in forest)
    height = (depth + 1) * _ROW_H + 24
    scale = width / total
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="{_FONT_PX}">',
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="#fdf6ec"/>',
        f'<text x="4" y="14" fill="#333">{html.escape(title)} '
        f'({total * 1000:.3f} ms total)</text>',
    ]

    def emit(node: SpanNode, x: float, level: int):
        w = node.duration * scale
        y = height - (level + 1) * _ROW_H
        label = node.frame
        pct = 100.0 * node.duration / total
        fill = "#9e2a2b" if node.status == "aborted" else _color(label)
        parts.append(
            f'<g><rect x="{x:.3f}" y="{y}" width="{w:.3f}" '
            f'height="{_ROW_H - 1}" fill="{fill}" rx="1" '
            f'data-name="{html.escape(label, quote=True)}" '
            f'data-dur-us="{int(round(node.duration * 1e6))}" '
            f'data-depth="{level}">'
            f"<title>{html.escape(label)}: {node.duration * 1000:.3f} ms "
            f"({pct:.1f}%)</title></rect>"
        )
        if w >= _FONT_PX * 2:
            visible = max(1, int(w / (_FONT_PX * 0.62)))
            text = label if len(label) <= visible else label[: max(1, visible - 1)] + "…"
            parts.append(
                f'<text x="{x + 2:.3f}" y="{y + _ROW_H - 5}" '
                f'fill="#fff">{html.escape(text)}</text>'
            )
        parts.append("</g>")
        cx = x
        for child in node.children:
            emit(child, cx, level + 1)
            cx += child.duration * scale

    x = 0.0
    for root in forest:
        emit(root, x, 0)
        x += root.duration * scale
    parts.append("</svg>")
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# per-operator attribution
# ---------------------------------------------------------------------------


def operator_table(roots: Sequence) -> Dict:
    """Aggregate operator spans across the forest.

    Returns ``{"operators": {label: {"calls", "total_s", "self_s", "rows"}},
    "cache": {"hits", "misses"}}`` — the per-operator cost attribution the
    Fig 2/5 tables need, plus the plan-cache hit share of the traced
    statements (from ``plan_cache.lookup`` spans).
    """
    operators: Dict[str, Dict] = {}
    cache = {"hits": 0, "misses": 0}
    for root in normalize(roots):
        for node in root.walk():
            if node.name == "plan_cache.lookup":
                outcome = node.attrs.get("outcome")
                if outcome == "hit":
                    cache["hits"] += 1
                elif outcome == "miss":
                    cache["misses"] += 1
            if node.name != "operator":
                continue
            label = node.frame
            entry = operators.setdefault(
                label, {"calls": 0, "total_s": 0.0, "self_s": 0.0, "rows": 0}
            )
            entry["calls"] += 1
            entry["total_s"] += node.duration
            entry["self_s"] += node.self_time
            rows = node.attrs.get("rows")
            if isinstance(rows, int):
                entry["rows"] += rows
    return {"operators": operators, "cache": cache}


def format_operator_table(table: Dict, title: str = "Operator attribution") -> str:
    """Render :func:`operator_table` output, heaviest self time first."""
    operators = table["operators"]
    lines = [title, "=" * len(title)]
    if not operators:
        lines.append("(no operator spans recorded)")
    else:
        width = max(len(label) for label in operators) + 2
        lines.append(
            f"{'operator':<{width}}{'calls':>7}{'rows':>10}"
            f"{'total':>12}{'self':>12}"
        )
        ordered = sorted(
            operators.items(), key=lambda kv: kv[1]["self_s"], reverse=True
        )
        for label, entry in ordered:
            lines.append(
                f"{label:<{width}}{entry['calls']:>7}{entry['rows']:>10}"
                f"{entry['total_s'] * 1000:>10.3f}ms"
                f"{entry['self_s'] * 1000:>10.3f}ms"
            )
    cache = table["cache"]
    lookups = cache["hits"] + cache["misses"]
    if lookups:
        share = cache["hits"] / lookups
        lines.append(
            f"plan cache: {cache['hits']}/{lookups} lookups hit ({share:.1%})"
        )
    return "\n".join(lines)
