"""Span sinks: in-memory ring buffer and JSONL file.

A sink is anything with ``emit(span)``; the tracer calls it once per span
as the span finishes (children before parents, since inner regions close
first).  Both sinks here record flat span dicts — the parent ids are
enough to rebuild the tree offline — while :class:`RingBufferSink` also
keeps the live :class:`~repro.engine.obs.tracer.Span` objects so in-process
consumers (the ``repro trace`` command, tests) can walk ``children``
directly.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import List


class RingBufferSink:
    """Keeps the last *capacity* finished spans in memory."""

    def __init__(self, capacity: int = 4096):
        self._spans: deque = deque(maxlen=capacity)

    def emit(self, span):
        self._spans.append(span)

    def spans(self) -> List[object]:
        return list(self._spans)

    def roots(self) -> List[object]:
        """Finished spans with no parent, oldest first."""
        return [s for s in self._spans if s.parent_id is None]

    def clear(self):
        self._spans.clear()

    def __len__(self):
        return len(self._spans)


class JsonlSink:
    """Appends one JSON object per finished span to a file.

    Writes are line-atomic: each span serialises to a full line first and
    reaches the file handle in a single locked ``write`` call, so sessions
    tracing concurrently into one sink interleave whole lines, never
    fragments — every line of the output parses on its own.
    """

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def emit(self, span):
        line = json.dumps(span.to_dict(), default=str) + "\n"
        with self._lock:
            self._fh.write(line)

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
