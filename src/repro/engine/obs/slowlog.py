"""Slow-query log: span tree + plan snapshot for threshold breaches.

Configured via ``Database.set_slow_query_log(threshold_s, path=...)``;
enabling it turns on ``Tracer.force_tracing`` so every statement builds a
span tree even with no sink installed — a breach must always have a
complete tree to record.  Entries keep the most recent *capacity* records
in memory and, when a path is given, are also appended as JSONL.

``max_bytes`` (default ``$REPRO_SLOWLOG_MAX_BYTES``) bounds the JSONL
file for long bench sweeps: when an append pushes the file past the
limit, the oldest lines are dropped until it fits again.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Dict, List, Optional


class SlowQueryLog:
    """Bounded in-memory record of threshold-exceeding queries."""

    def __init__(self, threshold_s: float, path: Optional[str] = None,
                 capacity: int = 256, max_bytes: Optional[int] = None):
        if threshold_s < 0:
            raise ValueError("threshold_s must be >= 0")
        if max_bytes is None:
            raw = os.environ.get("REPRO_SLOWLOG_MAX_BYTES")
            if raw:
                try:
                    max_bytes = int(raw)
                except ValueError:
                    max_bytes = None
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.threshold_s = threshold_s
        self.path = path
        self.max_bytes = max_bytes
        #: JSONL lines dropped by the size guard (cumulative)
        self.truncated = 0
        self._entries: deque = deque(maxlen=capacity)

    def record(self, entry: Dict):
        self._entries.append(entry)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as fh:
                json.dump(entry, fh, default=str)
                fh.write("\n")
            if self.max_bytes is not None:
                self._enforce_max_bytes()

    def _enforce_max_bytes(self):
        """Drop oldest JSONL lines until the file fits ``max_bytes``.

        The newest line always survives, even when it alone exceeds the
        limit — a breach record must never silently vanish.
        """
        if os.path.getsize(self.path) <= self.max_bytes:
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        total = sum(len(line.encode("utf-8")) for line in lines)
        dropped = 0
        while len(lines) > 1 and total > self.max_bytes:
            total -= len(lines[0].encode("utf-8"))
            lines.pop(0)
            dropped += 1
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        self.truncated += dropped

    def entries(self) -> List[Dict]:
        return list(self._entries)

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)
