"""Slow-query log: span tree + plan snapshot for threshold breaches.

Configured via ``Database.set_slow_query_log(threshold_s, path=...)``;
enabling it turns on ``Tracer.force_tracing`` so every statement builds a
span tree even with no sink installed — a breach must always have a
complete tree to record.  Entries keep the most recent *capacity* records
in memory and, when a path is given, are also appended as JSONL.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, Optional


class SlowQueryLog:
    """Bounded in-memory record of threshold-exceeding queries."""

    def __init__(self, threshold_s: float, path: Optional[str] = None,
                 capacity: int = 256):
        if threshold_s < 0:
            raise ValueError("threshold_s must be >= 0")
        self.threshold_s = threshold_s
        self.path = path
        self._entries: deque = deque(maxlen=capacity)

    def record(self, entry: Dict):
        self._entries.append(entry)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as fh:
                json.dump(entry, fh, default=str)
                fh.write("\n")

    def entries(self) -> List[Dict]:
        return list(self._entries)

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)
