"""Workload telemetry: query fingerprints, cumulative per-statement
statistics, and an OpenMetrics/Prometheus text exposition.

The tracer answers "why was *this* query slow"; this module answers "what
has this database been *doing*" — the ``pg_stat_statements`` view of a
long-lived workload.  Three pieces:

* :func:`fingerprint` normalizes a SQL statement (literals and parameter
  markers collapse to ``?``, whitespace and case fold away) over the
  existing lexer token stream and hashes the result, so the same query
  shape with different literals lands on one key;
* :class:`StatementStatsStore` accumulates, per fingerprint, call counts,
  total/min/max execution time plus streaming p50/p95 (reusing the
  :class:`~repro.engine.obs.metrics.Histogram` reservoir machinery), rows
  returned, rows scanned, batches, peak estimated working-set bytes,
  plan-cache hits/misses, analyzer-diagnostic counts and timeout/abort
  counts — thread-safe, bounded, with LRU eviction of cold fingerprints;
* :func:`render_openmetrics` renders a :class:`MetricsRegistry` plus the
  top-K statement entries as an OpenMetrics text exposition
  (``# HELP``/``# TYPE`` lines, histogram buckets, ``# EOF`` terminator),
  and :func:`validate_openmetrics` is the line-format validator the test
  suite and CI run over every emitted snapshot.

Layering: this module is import-light like the rest of ``obs`` — the
lexer is imported lazily inside :func:`fingerprint`, so storage/index/txn
code can keep importing the package without dragging in the SQL
front-end.  No wall-clock reads; callers hand in elapsed durations.
"""

from __future__ import annotations

import hashlib
import re
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .metrics import COUNTERS, HISTOGRAMS, Histogram, MetricsRegistry

#: statement-statistics columns (snapshot dict keys) -> description.
#: ``tools/engine_lint.py`` (check ``telemetry-docs``) requires every key
#: to be documented in docs/OBSERVABILITY.md.
STATEMENT_FIELDS: Dict[str, str] = {
    "fingerprint": "stable 12-hex-digit hash of the normalized statement",
    "query": "normalized statement text (literals collapsed to ?)",
    "calls": "number of executions (successful and aborted)",
    "time_total_s": "total wall seconds across all executions",
    "time_min_s": "fastest single execution (seconds)",
    "time_max_s": "slowest single execution (seconds)",
    "time_mean_s": "mean execution time (seconds)",
    "time_p50_s": "streaming median over the retained reservoir",
    "time_p95_s": "streaming 95th percentile over the retained reservoir",
    "rows": "total rows returned (SELECT) or affected (DML)",
    "rows_scanned": "total rows produced by leaf operators (scans)",
    "batches": "total batches produced by all plan operators",
    "peak_ws_bytes": "peak estimated working-set bytes of any operator",
    "cache_hits": "executions answered by a cached plan",
    "cache_misses": "executions that parsed and planned from scratch",
    "cache_hit_ratio": "cache_hits / (cache_hits + cache_misses), null before any lookup",
    "diagnostics": "cumulative analyzer findings attributed to this statement",
    "timeouts": "executions aborted by deadline or cancellation",
    "aborts": "executions aborted by any other error",
}

#: OpenMetrics metric families emitted for the statement store itself and
#: for the top-K statement entries (labelled by ``fingerprint``).  Keys are
#: family names (sample names add the spec suffix, e.g. ``_total``);
#: check ``telemetry-docs`` requires every key in docs/OBSERVABILITY.md.
STATEMENT_METRICS: Dict[str, Tuple[str, str]] = {
    "repro_statements_tracked": ("gauge", "distinct fingerprints currently tracked"),
    "repro_statements_evicted": ("counter", "cold fingerprints dropped by LRU eviction"),
    "repro_statement_calls": ("counter", "executions of one statement shape"),
    "repro_statement_time_seconds": ("counter", "total wall seconds of one statement shape"),
    "repro_statement_rows": ("counter", "rows returned/affected by one statement shape"),
    "repro_statement_rows_scanned": ("counter", "rows produced by leaf operators for one statement shape"),
    "repro_statement_batches": ("counter", "batches produced for one statement shape"),
    "repro_statement_cache_hits": ("counter", "plan-cache hits for one statement shape"),
    "repro_statement_cache_misses": ("counter", "plan-cache misses for one statement shape"),
    "repro_statement_timeouts": ("counter", "timed-out/cancelled executions of one statement shape"),
    "repro_statement_aborts": ("counter", "otherwise-aborted executions of one statement shape"),
    "repro_statement_peak_ws_bytes": ("gauge", "peak estimated working-set bytes of one statement shape"),
    "repro_statement_p95_seconds": ("gauge", "streaming p95 execution time of one statement shape"),
}

#: snapshot sort keys accepted by :meth:`StatementStatsStore.snapshot`
SORT_KEYS = {
    "time": "time_total_s",
    "calls": "calls",
    "rows": "rows",
}


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------

#: tokens that attach to the previous token when re-joining (cosmetics only;
#: the hash would be stable either way)
_TIGHT_AFTER = {",", ")", ".", ";"}
_TIGHT_BEFORE = ("(", ".")


def normalize_statement(sql: str) -> str:
    """The canonical shape of *sql*: literals and parameter markers become
    ``?``, keywords/identifiers fold to lowercase, whitespace and comments
    collapse.  Falls back to plain whitespace/case folding when the text
    does not tokenize (e.g. a statement recorded on its parse-error path).
    """
    from ..sql.lexer import tokenize  # deferred: obs stays front-end-free

    try:
        tokens = tokenize(sql)
    except Exception:
        return " ".join(sql.split()).lower()
    parts: List[str] = []
    for token in tokens:
        if token.kind == "end":
            break
        if token.kind in ("number", "string", "param"):
            text = "?"
        else:
            text = str(token.value)
        if parts and (text in _TIGHT_AFTER or parts[-1].endswith(_TIGHT_BEFORE)):
            parts[-1] += text
        else:
            parts.append(text)
    return " ".join(parts)


def fingerprint(sql: str) -> Tuple[str, str]:
    """``(stable hash, normalized text)`` of one SQL statement.

    The hash is the first 12 hex digits of the SHA-256 of the normalized
    text — stable across processes and sessions, unlike ``hash()``.
    """
    normalized = normalize_statement(sql)
    digest = hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:12]
    return digest, normalized


# ---------------------------------------------------------------------------
# the per-database statement store
# ---------------------------------------------------------------------------


class StatementStats:
    """Cumulative counters for one statement fingerprint."""

    __slots__ = (
        "fingerprint", "query", "calls", "time_total_s", "time_min_s",
        "time_max_s", "rows", "rows_scanned", "batches", "peak_ws_bytes",
        "cache_hits", "cache_misses", "diagnostics", "timeouts", "aborts",
        "_times",
    )

    def __init__(self, fp: str, query: str):
        self.fingerprint = fp
        self.query = query
        self.calls = 0
        self.time_total_s = 0.0
        self.time_min_s: Optional[float] = None
        self.time_max_s: Optional[float] = None
        self.rows = 0
        self.rows_scanned = 0
        self.batches = 0
        self.peak_ws_bytes = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.diagnostics = 0
        self.timeouts = 0
        self.aborts = 0
        #: streaming percentile reservoir (the metrics.Histogram machinery)
        self._times = Histogram(reservoir=256)

    def as_dict(self) -> Dict:
        """Snapshot row; keys are exactly ``STATEMENT_FIELDS``."""
        looked_up = self.cache_hits + self.cache_misses
        return {
            "fingerprint": self.fingerprint,
            "query": self.query,
            "calls": self.calls,
            "time_total_s": self.time_total_s,
            "time_min_s": self.time_min_s,
            "time_max_s": self.time_max_s,
            "time_mean_s": (self.time_total_s / self.calls) if self.calls else None,
            "time_p50_s": self._times.percentile(50),
            "time_p95_s": self._times.percentile(95),
            "rows": self.rows,
            "rows_scanned": self.rows_scanned,
            "batches": self.batches,
            "peak_ws_bytes": self.peak_ws_bytes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": (self.cache_hits / looked_up) if looked_up else None,
            "diagnostics": self.diagnostics,
            "timeouts": self.timeouts,
            "aborts": self.aborts,
        }


class StatementStatsStore:
    """Bounded, thread-safe ``pg_stat_statements``-style accumulator.

    One store per :class:`~repro.engine.database.Database`.  Disabled by
    default — the session's execute fast path then never touches it.  When
    enabled, every executed SQL string is fingerprinted (amortized by an
    LRU text→fingerprint cache, so a plan-cache hit re-tokenizes nothing)
    and its entry updated under a lock.  At most ``capacity`` fingerprints
    are kept; recording a new one beyond that evicts the least recently
    *updated* (cold) entry and counts it in :attr:`evicted`.
    """

    def __init__(self, capacity: int = 512, enabled: bool = False):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self.evicted = 0
        self._entries: "OrderedDict[str, StatementStats]" = OrderedDict()
        self._fingerprints: "OrderedDict[str, Tuple[str, str]]" = OrderedDict()
        self._lock = threading.Lock()

    # -- writes ------------------------------------------------------------

    def _fingerprint_cached(self, sql: str) -> Tuple[str, str]:
        cached = self._fingerprints.get(sql)
        if cached is not None:
            self._fingerprints.move_to_end(sql)
            return cached
        fp = fingerprint(sql)
        self._fingerprints[sql] = fp
        while len(self._fingerprints) > 4 * self.capacity:
            self._fingerprints.popitem(last=False)
        return fp

    def record(
        self,
        sql: str,
        elapsed_s: float,
        rows: int = 0,
        cache_hit: Optional[bool] = None,
        timed_out: bool = False,
        aborted: bool = False,
        resources=None,
    ) -> StatementStats:
        """Fold one execution into the statement's entry.

        ``resources`` is any object with ``rows_scanned`` / ``batches`` /
        ``peak_ws_bytes`` attributes (the execution context's
        :class:`~repro.engine.plan.context.ResourceCounters`); ``None``
        skips operator-level accounting for this call.
        """
        with self._lock:
            fp, normalized = self._fingerprint_cached(sql)
            entry = self._entries.get(fp)
            if entry is None:
                while len(self._entries) >= self.capacity:
                    self._entries.popitem(last=False)
                    self.evicted += 1
                entry = StatementStats(fp, normalized)
                self._entries[fp] = entry
            else:
                self._entries.move_to_end(fp)
            entry.calls += 1
            entry.time_total_s += elapsed_s
            if entry.time_min_s is None or elapsed_s < entry.time_min_s:
                entry.time_min_s = elapsed_s
            if entry.time_max_s is None or elapsed_s > entry.time_max_s:
                entry.time_max_s = elapsed_s
            entry._times.observe(elapsed_s)
            entry.rows += max(rows, 0)
            if cache_hit is True:
                entry.cache_hits += 1
            elif cache_hit is False:
                entry.cache_misses += 1
            if timed_out:
                entry.timeouts += 1
            elif aborted:
                entry.aborts += 1
            if resources is not None:
                entry.rows_scanned += resources.rows_scanned
                entry.batches += resources.batches
                if resources.peak_ws_bytes > entry.peak_ws_bytes:
                    entry.peak_ws_bytes = resources.peak_ws_bytes
            return entry

    def note_diagnostics(self, sql: str, count: int) -> None:
        """Attribute *count* analyzer findings to *sql*'s entry (if any).

        Lint runs outside the execute path (slow-query log, benchmark
        service); findings accumulate on the already-recorded entry rather
        than creating one for a statement that never executed.
        """
        if count <= 0:
            return
        with self._lock:
            fp, _normalized = self._fingerprint_cached(sql)
            entry = self._entries.get(fp)
            if entry is not None:
                entry.diagnostics += count

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self, top: Optional[int] = None, sort: str = "time") -> List[Dict]:
        """Statement rows as dicts, most expensive first.

        ``sort`` is one of ``time`` (total seconds), ``calls``, ``rows``.
        """
        try:
            key = SORT_KEYS[sort]
        except KeyError:
            raise ValueError(
                f"unknown sort {sort!r}; expected one of {sorted(SORT_KEYS)}"
            ) from None
        with self._lock:
            rows = [entry.as_dict() for entry in self._entries.values()]
        rows.sort(key=lambda r: (-(r[key] or 0), r["fingerprint"]))
        if top is not None:
            rows = rows[:top]
        return rows

    def reset(self) -> None:
        """Drop every entry (the benchmark service does this per cell);
        keeps ``enabled`` and the fingerprint cache."""
        with self._lock:
            self._entries.clear()
            self.evicted = 0


# ---------------------------------------------------------------------------
# OpenMetrics exposition
# ---------------------------------------------------------------------------


def counter_family(name: str) -> str:
    """OpenMetrics family name of a registry counter
    (``plan.cache_hit`` → ``repro_plan_cache_hit``; samples add ``_total``)."""
    return "repro_" + name.replace(".", "_")


def histogram_family(name: str) -> str:
    """OpenMetrics family name of a registry histogram; a trailing ``_s``
    unit becomes the spelled-out ``_seconds``
    (``query.execute_s`` → ``repro_query_execute_seconds``)."""
    flat = name.replace(".", "_")
    if flat.endswith("_s"):
        flat = flat[:-2] + "_seconds"
    return "repro_" + flat


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\"", "\\\"").replace("\n", "\\n")
    )


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _sample(name: str, labels: Optional[Dict[str, str]], value) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(str(val))}"' for key, val in labels.items()
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def render_openmetrics(
    registry: MetricsRegistry,
    statements: Optional[StatementStatsStore] = None,
    top: int = 10,
    extra: Optional[List[str]] = None,
) -> str:
    """The registry (and optionally the statement store) as one OpenMetrics
    text exposition: ``# HELP``/``# TYPE`` per family, counter samples with
    the ``_total`` suffix, histogram ``_bucket``/``_sum``/``_count``
    series, top-K statement families labelled by ``fingerprint`` (plus a
    truncated ``query`` label for dashboards), and the ``# EOF``
    terminator the spec requires.  ``extra`` appends pre-rendered family
    lines (the introspection counters) before the terminator.
    """
    lines: List[str] = []
    for name in COUNTERS:
        family = counter_family(name)
        lines.append(f"# HELP {family} {_escape_help(COUNTERS[name])}")
        lines.append(f"# TYPE {family} counter")
        lines.append(_sample(f"{family}_total", None, registry.counter(name)))
    for name in HISTOGRAMS:
        family = histogram_family(name)
        hist = registry.histogram(name)
        lines.append(f"# HELP {family} {_escape_help(HISTOGRAMS[name])}")
        lines.append(f"# TYPE {family} histogram")
        for bound, cumulative in hist.buckets():
            le = "+Inf" if bound is None else _format_value(bound)
            lines.append(
                _sample(f"{family}_bucket", {"le": le}, cumulative)
            )
        lines.append(_sample(f"{family}_sum", None, hist.total))
        lines.append(_sample(f"{family}_count", None, hist.count))
    if statements is not None:
        lines.extend(_statement_lines(statements, top))
    if extra:
        lines.extend(extra)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _statement_lines(store: StatementStatsStore, top: int) -> List[str]:
    lines: List[str] = []
    for family, (kind, help_text) in STATEMENT_METRICS.items():
        lines.append(f"# HELP {family} {_escape_help(help_text)}")
        lines.append(f"# TYPE {family} {kind}")
        if family == "repro_statements_tracked":
            lines.append(_sample(family, None, len(store)))
        elif family == "repro_statements_evicted":
            lines.append(_sample(f"{family}_total", None, store.evicted))
    rows = store.snapshot(top=top, sort="time")
    per_row = [
        ("repro_statement_calls_total", "calls"),
        ("repro_statement_time_seconds_total", "time_total_s"),
        ("repro_statement_rows_total", "rows"),
        ("repro_statement_rows_scanned_total", "rows_scanned"),
        ("repro_statement_batches_total", "batches"),
        ("repro_statement_cache_hits_total", "cache_hits"),
        ("repro_statement_cache_misses_total", "cache_misses"),
        ("repro_statement_timeouts_total", "timeouts"),
        ("repro_statement_aborts_total", "aborts"),
        ("repro_statement_peak_ws_bytes", "peak_ws_bytes"),
        ("repro_statement_p95_seconds", "time_p95_s"),
    ]
    for row in rows:
        labels = {
            "fingerprint": row["fingerprint"],
            "query": row["query"][:200],
        }
        for sample_name, key in per_row:
            lines.append(_sample(sample_name, labels, row[key]))
    return lines


# ---------------------------------------------------------------------------
# exposition validation (tests + CI)
# ---------------------------------------------------------------------------

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_TYPES = frozenset(
    ("counter", "gauge", "histogram", "summary", "unknown", "info", "stateset")
)
#: sample-name suffixes each family type may emit
_TYPE_SUFFIXES = {
    "counter": ("_total", "_created"),
    "gauge": ("",),
    "histogram": ("_bucket", "_sum", "_count", "_created"),
    "summary": ("", "_sum", "_count", "_created"),
    "unknown": ("",),
    "info": ("_info",),
    "stateset": ("",),
}
_LABELS = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(,|$)')


def _parse_sample(line: str) -> Optional[Tuple[str, str]]:
    """``(metric name, value text)`` of one sample line, or None on
    malformed syntax."""
    if "{" in line:
        name, rest = line.split("{", 1)
        end = rest.rfind("}")
        if end == -1:
            return None
        labels, value_part = rest[:end], rest[end + 1:]
        consumed = 0
        for match in _LABELS.finditer(labels):
            if match.start() != consumed:
                return None
            consumed = match.end()
        if consumed != len(labels):
            return None
    else:
        split = line.split(None, 1)
        if len(split) != 2:
            return None
        name, value_part = split
    fields = value_part.split()
    if not fields or len(fields) > 2:  # value [timestamp]
        return None
    return name.strip(), fields[0]


def validate_openmetrics(text: str) -> List[str]:
    """Line-format errors in an OpenMetrics exposition (empty = valid).

    Checks: metric-name syntax, known ``# TYPE`` values, label-pair and
    value syntax per sample, every sample's name reachable from a family
    declared by an earlier ``# TYPE`` line with a suffix that family type
    allows, and a final ``# EOF`` line.
    """
    errors: List[str] = []
    families: Dict[str, str] = {}
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    for number, line in enumerate(lines, start=1):
        if line == "# EOF":
            if number != len(lines):
                errors.append(f"line {number}: # EOF before the last line")
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) < 3 or fields[1] not in ("HELP", "TYPE", "UNIT"):
                errors.append(f"line {number}: malformed comment {line!r}")
                continue
            name = fields[2]
            if not _METRIC_NAME.match(name):
                errors.append(f"line {number}: bad metric name {name!r}")
                continue
            if fields[1] == "TYPE":
                kind = fields[3].strip() if len(fields) > 3 else ""
                if kind not in _TYPES:
                    errors.append(f"line {number}: unknown TYPE {kind!r}")
                else:
                    families[name] = kind
            continue
        if not line.strip():
            errors.append(f"line {number}: blank line inside the exposition")
            continue
        parsed = _parse_sample(line)
        if parsed is None:
            errors.append(f"line {number}: malformed sample {line!r}")
            continue
        name, value_text = parsed
        if not _METRIC_NAME.match(name):
            errors.append(f"line {number}: bad sample name {name!r}")
            continue
        if value_text not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value_text)
            except ValueError:
                errors.append(f"line {number}: bad value {value_text!r}")
                continue
        if not _family_of(name, families):
            errors.append(
                f"line {number}: sample {name!r} has no preceding # TYPE "
                f"family declaration"
            )
    if not lines or lines[-1] != "# EOF":
        errors.append("exposition does not end with # EOF")
    return errors


def _family_of(sample_name: str, families: Dict[str, str]) -> Optional[str]:
    for family, kind in families.items():
        for suffix in _TYPE_SUFFIXES[kind]:
            if sample_name == family + suffix:
                return family
    return None


__all__ = [
    "SORT_KEYS",
    "STATEMENT_FIELDS",
    "STATEMENT_METRICS",
    "StatementStats",
    "StatementStatsStore",
    "counter_family",
    "fingerprint",
    "histogram_family",
    "normalize_statement",
    "render_openmetrics",
    "validate_openmetrics",
]
