"""Structured tracer: spans over the query lifecycle.

A :class:`Span` is a lightweight record (name, start, duration, attrs,
parent id) produced around each lifecycle phase — parse, analyze, rewrite,
plan-cache lookup, physical planning, execute — and around individual
operator invocations.  Spans form a tree via parent ids; the tracer keeps
an open-span stack so nesting falls out of call order.

**Zero overhead when idle** is the design constraint: with no sink
installed (and ``force_tracing`` off) the tracer is inactive,
:meth:`Tracer.start` returns ``None``, :meth:`Tracer.span` returns a
shared no-op span, and nothing is allocated or timed.  The engine's hot
paths only ever pay an attribute read and a truth test.

Durations use ``time.perf_counter()`` exclusively — the engine-wide
no-wallclock invariant (tools/engine_lint.py) applies here too.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["Span", "Tracer", "render_span_tree"]


class Span:
    """One timed region of a query's lifecycle."""

    __slots__ = (
        "span_id", "parent_id", "name", "start", "duration", "attrs",
        "children", "status", "_tracer",
    )

    def __init__(self, tracer: "Tracer", span_id: int,
                 parent_id: Optional[int], name: str, attrs: Dict):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = time.perf_counter()
        self.duration: Optional[float] = None
        self.attrs = attrs
        self.children: List["Span"] = []
        self.status = "ok"

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb):
        self._tracer.finish(self, aborted=exc_type is not None)
        return False

    def walk(self):
        """This span and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, recursive: bool = False) -> Dict:
        out = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start,
            "duration_s": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
        }
        if recursive:
            out["children"] = [c.to_dict(recursive=True) for c in self.children]
        return out

    def __repr__(self):
        ms = f"{self.duration * 1000:.3f}ms" if self.duration is not None else "open"
        return f"<Span {self.name} {ms}>"


class _NullSpan:
    """Shared no-op stand-in returned while the tracer is inactive."""

    __slots__ = ()

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Span factory with pluggable sinks and an open-span stack.

    Sinks receive every span as it *finishes* (children before parents);
    each sink needs a single ``emit(span)`` method.  ``force_tracing``
    keeps span collection on even without sinks — the slow-query log uses
    it so a threshold breach always has a complete tree to record.
    """

    __slots__ = ("_sinks", "_stack", "_seq", "force_tracing")

    def __init__(self):
        self._sinks: List[object] = []
        self._stack: List[Span] = []
        self._seq = 0
        self.force_tracing = False

    @property
    def active(self) -> bool:
        return self.force_tracing or bool(self._sinks)

    # -- sinks -------------------------------------------------------------

    def add_sink(self, sink):
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink):
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    # -- span lifecycle ----------------------------------------------------

    def start(self, name: str, **attrs) -> Optional[Span]:
        """Open a span, or return ``None`` when tracing is off."""
        if not self.active:
            return None
        self._seq += 1
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self, self._seq, parent.span_id if parent else None, name, attrs
        )
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Optional[Span], aborted: bool = False):
        """Close *span* (no-op for ``None``) and emit it to every sink.

        Any spans left open above *span* on the stack — possible when an
        exception unwound several frames at once — are closed and marked
        aborted too, so the recorded tree is always complete.
        """
        if span is None or span.duration is not None:
            return
        now = time.perf_counter()
        while self._stack:
            top = self._stack.pop()
            if top.duration is None:
                top.duration = now - top.start
                if aborted:
                    top.status = "aborted"
                    top.attrs["aborted"] = True
                for sink in self._sinks:
                    sink.emit(top)
            if top is span:
                break

    def span(self, name: str, **attrs):
        """Context-manager form; a shared no-op span when inactive."""
        started = self.start(name, **attrs)
        return started if started is not None else _NULL_SPAN


def render_span_tree(span: Span, indent: int = 0) -> str:
    """ASCII tree of one span and its descendants with durations."""
    parts = []
    for key, value in span.attrs.items():
        text = str(value)
        if len(text) > 60:
            text = text[:57] + "..."
        parts.append(f"{key}={text}")
    attr_text = f" [{', '.join(parts)}]" if parts else ""
    if span.duration is not None:
        timing = f"  {span.duration * 1000:.3f} ms"
    else:
        timing = "  (open)"
    lines = [f"{'  ' * indent}{span.name}{attr_text}{timing}"]
    for child in span.children:
        lines.append(render_span_tree(child, indent + 1))
    return "\n".join(lines)
