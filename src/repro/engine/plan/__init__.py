"""Query planning and execution: operators, access paths, planner."""

from .planner import Planner, PlannedQuery

__all__ = ["Planner", "PlannedQuery"]
