"""Query planning and execution: logical IR, rewrites, operators, planner."""

from .context import ExecutionContext, NodeMetrics
from .logical import (
    LogicalDerived,
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalProduct,
    LogicalQuery,
    LogicalScan,
    LogicalValues,
    build_logical,
)
from .planner import Planner, PlannedQuery
from .rewrite import ALL_RULES, rewrite_logical

__all__ = [
    "ALL_RULES",
    "ExecutionContext",
    "LogicalDerived",
    "LogicalFilter",
    "LogicalJoin",
    "LogicalNode",
    "LogicalProduct",
    "LogicalQuery",
    "LogicalScan",
    "LogicalValues",
    "NodeMetrics",
    "PlannedQuery",
    "Planner",
    "build_logical",
    "rewrite_logical",
]
