"""Access-path selection for a single table reference.

Given the temporal clauses on a table reference and the sargable conjuncts
of the WHERE clause, this module decides — per partition — between:

* a **sequential scan** with residual filtering,
* a **primary-key probe** (every archetype keeps a key → current-rids map),
* a **B-Tree probe/range scan** on a matching secondary index,
* an **R-Tree containment search** for period predicates (System D's GiST).

Selectivity is estimated *at run time* from the index's key range, because
parameter values only arrive then; this reproduces the paper's observation
that plans flip between scans and index use as selectivity changes
(§5.3.3), and that indexes "only work on very selective workloads" (§5.9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..batch import Batch, batch_size, batches_from_rows, vectorized_enabled
from ..storage.versioned import CURRENT, SINGLE, VersionedTable
from ..types import END_OF_TIME

ValueFn = Callable[[object], object]  # fn(env) -> runtime constant


@dataclass
class ColumnConstraint:
    """One sargable predicate on a column, with runtime-evaluated bounds."""

    column: str
    op: str  # "=", "<", "<=", ">", ">=", "between"
    low: Optional[ValueFn] = None
    high: Optional[ValueFn] = None


@dataclass
class TemporalBounds:
    """Resolved temporal clause: which rows of a dimension are wanted."""

    begin_column: str
    end_column: str
    mode: str  # "as_of" | "overlap" | "all"
    low: Optional[ValueFn] = None
    high: Optional[ValueFn] = None  # exclusive upper bound for "overlap"

    def row_filter(self, schema):
        begin_pos = schema.position(self.begin_column)
        end_pos = schema.position(self.end_column)
        if self.mode == "all":
            return None
        if self.mode == "as_of":
            low = self.low

            def as_of(row, env):
                tick = low(env)
                begin, end = row[begin_pos], row[end_pos]
                if begin is None:
                    return False
                return begin <= tick < (end if end is not None else END_OF_TIME)

            return as_of
        low, high = self.low, self.high

        def overlap(row, env):
            lo = low(env)
            hi = high(env)
            begin, end = row[begin_pos], row[end_pos]
            if begin is None:
                return False
            if end is None:
                end = END_OF_TIME
            return begin < hi and end > lo

        return overlap

    def batch_filter(self, schema):
        """Chunk-wise variant of :meth:`row_filter`: a selection mask
        (list of bools) over a whole batch, evaluating the bound once."""
        begin_pos = schema.position(self.begin_column)
        end_pos = schema.position(self.end_column)
        if self.mode == "all":
            return None
        if self.mode == "as_of":
            low = self.low

            def as_of(batch, env):
                tick = low(env)
                return [
                    begin is not None
                    and begin <= tick < (end if end is not None else END_OF_TIME)
                    for begin, end in zip(
                        batch.column(begin_pos), batch.column(end_pos)
                    )
                ]

            return as_of
        low, high = self.low, self.high

        def overlap(batch, env):
            lo = low(env)
            hi = high(env)
            return [
                begin is not None
                and begin < hi
                and (end if end is not None else END_OF_TIME) > lo
                for begin, end in zip(
                    batch.column(begin_pos), batch.column(end_pos)
                )
            ]

        return overlap


@dataclass
class AccessDecision:
    """The chosen strategy for one partition (for EXPLAIN)."""

    partition: str
    strategy: str  # "scan" | "pk-probe" | "index" | "rtree"
    index_name: Optional[str] = None
    detail: str = ""


class TableAccessPlan:
    """Plans and executes access to one table across its partitions."""

    def __init__(
        self,
        table: VersionedTable,
        profile,
        partitions: List[str],
        temporal_filters: List[TemporalBounds],
        constraints: List[ColumnConstraint],
        need_temporal: bool,
    ):
        self.table = table
        self.profile = profile
        self.partitions = partitions
        self.temporal_filters = temporal_filters
        self.constraints = constraints
        self.need_temporal = need_temporal
        self.decisions: List[AccessDecision] = []
        self._row_filters = [
            f
            for f in (tb.row_filter(table.schema) for tb in temporal_filters)
            if f is not None
        ]
        self._batch_filters = [
            f
            for f in (tb.batch_filter(table.schema) for tb in temporal_filters)
            if f is not None
        ]
        self._pk_values = self._match_primary_key()

    # -- planning helpers ---------------------------------------------------

    def _match_primary_key(self) -> Optional[List[ValueFn]]:
        """Equality constraints covering the whole primary key, in order."""
        pk = self.table.schema.primary_key
        if not pk:
            return None
        equalities = {
            c.column: c.low for c in self.constraints if c.op == "=" and c.low
        }
        if all(col in equalities for col in pk):
            return [equalities[col] for col in pk]
        return None

    def _candidate_indexes(self, partition):
        if not self.profile.uses_indexes:
            return []
        name = SINGLE if partition == SINGLE else partition
        return list(self.table.indexes_on_partition(name).values())

    def _constraints_with_temporal(self) -> List[ColumnConstraint]:
        """Sargable constraints, including ones implied by temporal bounds.

        ``AS OF t`` implies ``begin <= t`` and ``end > t``; an index on the
        period's begin column can serve the first, which is exactly how the
        paper's *Time Index* setting (§5.1) helps point time travel.
        """
        out = list(self.constraints)
        for tb in self.temporal_filters:
            if tb.mode == "as_of":
                out.append(ColumnConstraint(tb.begin_column, "<=", high=tb.low))
                out.append(ColumnConstraint(tb.end_column, ">", low=tb.low))
            elif tb.mode == "overlap":
                out.append(ColumnConstraint(tb.begin_column, "<", high=tb.high))
                out.append(ColumnConstraint(tb.end_column, ">", low=tb.low))
        return out

    # -- execution ------------------------------------------------------------

    def rows(self, env) -> List[tuple]:
        out: List[tuple] = []
        self.decisions = []
        for partition in self.partitions:
            out.extend(self._partition_rows(partition, env))
        return out

    def batches(self, env) -> List[Batch]:
        """Batch variant of :meth:`rows`: the same rows in the same order,
        chunked.  Scans stream batches straight from storage with the
        temporal filters applied as per-batch selection masks."""
        out: List[Batch] = []
        self.decisions = []
        for partition in self.partitions:
            out.extend(self._partition_batches(partition, env))
        return out

    def _partition_batches(self, partition, env) -> List[Batch]:
        table = self.table
        timeline = getattr(table, "timeline", None)
        if timeline is not None:
            snapshot = self._timeline_snapshot(timeline, partition, env)
            if snapshot is not None:
                self.decisions.append(
                    AccessDecision(partition, "timeline", detail="snapshot")
                )
                return batches_from_rows(snapshot)
        if (
            self._pk_values is not None
            and partition in (CURRENT, SINGLE)
            and table.schema.primary_key
        ):
            key = tuple(fn(env) for fn in self._pk_values)
            rids = table.current_rids_for_key(key)
            pairs = table.reconstruct_for_rids(rids) if self.need_temporal else [
                (rid, table.fetch(table.current_partition_name(), rid)) for rid in rids
            ]
            rows = [tuple(row) for _rid, row in pairs if row is not None]
            if partition == SINGLE and self._wants_closed_versions():
                self.decisions.append(AccessDecision(partition, "scan", detail="pk map insufficient for closed versions"))
                return self._scan_batches(partition, env)
            self.decisions.append(AccessDecision(partition, "pk-probe"))
            return batches_from_rows(self._apply_filters(rows, env))
        chosen = self._choose_index(partition, env)
        if chosen is not None:
            index_def, rows = chosen
            self.decisions.append(
                AccessDecision(partition, index_def.kind if index_def.kind == "rtree" else "index", index_def.name)
            )
            return batches_from_rows(self._apply_filters(rows, env))
        self.decisions.append(AccessDecision(partition, "scan"))
        return self._scan_batches(partition, env)

    def _scan_batches(self, partition, env) -> List[Batch]:
        source = self.table.scan_partition_batches(
            partition, need_temporal=self.need_temporal, size=batch_size()
        )
        # the deadline is polled once per batch, not per row
        check = getattr(env, "check", None)
        out: List[Batch] = []
        if vectorized_enabled():
            batch_filters = self._batch_filters
            for batch in source:
                if check is not None:
                    check()
                for batch_filter in batch_filters:
                    mask = batch_filter(batch, env)
                    selected = [i for i, keep in enumerate(mask) if keep]
                    if len(selected) != batch.length:
                        batch = batch.take(selected)
                    if batch.length == 0:
                        break
                if batch.length:
                    out.append(batch)
            return out
        row_filters = self._row_filters
        for batch in source:
            if check is not None:
                check()
            if not row_filters:
                out.append(batch)
                continue
            rows = batch.to_rows()
            for row_filter in row_filters:
                rows = [row for row in rows if row_filter(row, env)]
            if rows:
                out.append(Batch.from_rows(rows, batch.width))
        return out

    def _partition_rows(self, partition, env) -> List[tuple]:
        table = self.table
        # 0. native temporal index (System E): a system-time AS OF resolves
        #    through the Timeline Index instead of scanning (checkpoint +
        #    bounded replay), when the table has one attached
        timeline = getattr(table, "timeline", None)
        if timeline is not None:
            snapshot = self._timeline_snapshot(timeline, partition, env)
            if snapshot is not None:
                self.decisions.append(
                    AccessDecision(partition, "timeline", detail="snapshot")
                )
                return snapshot
        # 1. primary-key probe (current partition only: the map tracks
        #    current versions, mirroring the system-created current index)
        if (
            self._pk_values is not None
            and partition in (CURRENT, SINGLE)
            and table.schema.primary_key
        ):
            key = tuple(fn(env) for fn in self._pk_values)
            rids = table.current_rids_for_key(key)
            pairs = table.reconstruct_for_rids(rids) if self.need_temporal else [
                (rid, table.fetch(table.current_partition_name(), rid)) for rid in rids
            ]
            rows = [tuple(row) for _rid, row in pairs if row is not None]
            # System D's single table holds history interleaved: the PK map
            # only tracks open versions, so closed ones must come from a scan
            if partition == SINGLE and self._wants_closed_versions():
                self.decisions.append(AccessDecision(partition, "scan", detail="pk map insufficient for closed versions"))
                return self._scan(partition, env)
            self.decisions.append(AccessDecision(partition, "pk-probe"))
            return self._apply_filters(rows, env)
        # 2. secondary indexes
        chosen = self._choose_index(partition, env)
        if chosen is not None:
            index_def, rows = chosen
            self.decisions.append(
                AccessDecision(partition, index_def.kind if index_def.kind == "rtree" else "index", index_def.name)
            )
            return self._apply_filters(rows, env)
        # 3. fall back to a scan
        self.decisions.append(AccessDecision(partition, "scan"))
        return self._scan(partition, env)

    def _timeline_snapshot(self, timeline, partition, env):
        """Rows visible at an AS OF tick, via the Timeline Index; None when
        the temporal filters are not a single system-time point."""
        schema = self.table.schema
        period = schema.system_period
        if period is None:
            return None
        sys_filter = None
        for tb in self.temporal_filters:
            if tb.begin_column == period.begin_column:
                sys_filter = tb
        if sys_filter is None or sys_filter.mode != "as_of":
            return None
        tick = sys_filter.low(env)
        rows = []
        for rid in timeline.snapshot_rids(tick):
            row = self.table.fetch(partition, rid)
            if row is not None:
                rows.append(tuple(row))
        # apply the remaining (application-time) filters
        for tb in self.temporal_filters:
            if tb is sys_filter:
                continue
            row_filter = tb.row_filter(schema)
            if row_filter is not None:
                rows = [row for row in rows if row_filter(row, env)]
        return rows

    def _wants_closed_versions(self) -> bool:
        """True if the temporal filters may match non-current versions."""
        if not self.table.is_versioned:
            return False
        if not self.temporal_filters:
            return False
        return True

    def _scan(self, partition, env):
        source = self.table.scan_partition(
            partition, need_temporal=self.need_temporal
        )
        # an ExecutionContext with an active deadline polls it mid-scan so
        # timed-out queries stop burning CPU; a plain Env skips this entirely
        guard = getattr(env, "guard_iter", None)
        if guard is not None:
            source = guard(source)
        rows = [tuple(row) for _rid, row in source]
        return self._apply_filters(rows, env)

    def _apply_filters(self, rows, env):
        for row_filter in self._row_filters:
            rows = [row for row in rows if row_filter(row, env)]
        return rows

    def _choose_index(self, partition, env):
        constraints = self._constraints_with_temporal()
        by_column: Dict[str, List[ColumnConstraint]] = {}
        for c in constraints:
            by_column.setdefault(c.column, []).append(c)
        partition_size = max(
            1,
            self.table.current_count()
            if partition in (CURRENT, SINGLE)
            else self.table.history_count(),
        )
        best = None  # (est_rows, index_def, rid_list)
        for index_def, structure in self._candidate_indexes(partition):
            result = self._try_index(
                index_def, structure, by_column, env, partition_size
            )
            if result is None:
                continue
            est, rids = result
            if best is None or est < best[0]:
                best = (est, index_def, rids)
        if best is None:
            return None
        est, index_def, rids = best
        if est / partition_size > self.profile.index_selectivity_threshold:
            return None  # not selective enough: the optimizer prefers a scan
        if partition in (CURRENT, SINGLE) and self.need_temporal:
            pairs = self.table.reconstruct_for_rids(rids)
        else:
            pairs = [(rid, self.table.fetch(partition, rid)) for rid in rids]
        rows = [tuple(row) for _rid, row in pairs if row is not None]
        return index_def, rows

    def _try_index(self, index_def, structure, by_column, env, partition_size):
        if index_def.kind == "rtree":
            return self._try_rtree(index_def, structure, by_column, env)
        if index_def.kind == "hash":
            eq = _equality_for(by_column, index_def.columns)
            if eq is None:
                return None
            values = [fn(env) for fn in eq]
            key = values[0] if len(values) == 1 else tuple(values)
            rids = structure.search(key)
            return (len(rids), rids)
        # btree: consume equality prefix, then at most one range column
        columns = index_def.columns
        eq_values = []
        for pos, column in enumerate(columns):
            value = _single_equality(by_column, column, env)
            if value is None:
                break
            eq_values.append(value)
        consumed = len(eq_values)
        if consumed == len(columns):
            key = eq_values[0] if len(columns) == 1 else tuple(eq_values)
            rids = structure.search(key)
            return (len(rids), rids)
        range_column = columns[consumed]
        bounds = _range_bounds(by_column, range_column, env)
        if bounds is None and consumed == 0:
            return None
        low, high, low_inc, high_inc = bounds if bounds else (None, None, True, True)
        if consumed:
            prefix = tuple(eq_values)
            scan_low = prefix + ((low,) if low is not None else ())
            scan_high = prefix + ((high,) if high is not None else ())
            if low is None:
                scan_low = prefix
                low_inc = True
            if high is None:
                # prefix upper bound: extend with +inf sentinel via key trick
                scan_high = prefix + (_PLUS_INF,)
                high_inc = True
            rids = [
                rid
                for key, rid in structure.range_scan(scan_low, scan_high, low_inc, high_inc)
                if tuple(key[: len(prefix)]) == prefix
            ]
            return (len(rids), rids)
        fraction = _estimate_range_fraction(structure, low, high)
        if fraction > self.profile.index_selectivity_threshold:
            # skip before materialising a huge rid list; outer code re-checks
            return None
        rids = [rid for _key, rid in structure.range_scan(low, high, low_inc, high_inc)]
        return (len(rids), rids)

    def _try_rtree(self, index_def, structure, by_column, env):
        begin_col, end_col = index_def.columns
        # containment: begin <= t and end > t
        point = None
        for c in by_column.get(begin_col, ()):
            if c.op in ("<=", "<") and c.high is not None:
                point = c.high(env)
        if point is None:
            return None
        has_end = any(
            c.op in (">", ">=") and c.low is not None
            for c in by_column.get(end_col, ())
        )
        if not has_end:
            return None
        rids = structure.search_contains(point)
        return (len(rids), rids)


class _PlusInfType:
    def __lt__(self, other):
        return False

    def __gt__(self, other):
        return True


_PLUS_INF = _PlusInfType()


def _single_equality(by_column, column, env):
    for c in by_column.get(column, ()):
        if c.op == "=" and c.low is not None:
            return c.low(env)
    return None


def _equality_for(by_column, columns):
    """Equality values for every column of a hash index, else None."""
    out = []
    for column in columns:
        found = None
        for c in by_column.get(column, ()):
            if c.op == "=" and c.low is not None:
                found = c.low
                break
        if found is None:
            return None
        out.append(found)
    return None if not out else [fn for fn in out]


def _range_bounds(by_column, column, env):
    low = high = None
    low_inc = high_inc = True
    found = False
    for c in by_column.get(column, ()):
        if c.op == "=":
            value = c.low(env)
            return (value, value, True, True)
        if c.op == "between":
            lo, hi = c.low(env), c.high(env)
            low = lo if low is None else max(low, lo)
            high = hi if high is None else min(high, hi)
            found = True
        elif c.op in (">", ">="):
            value = c.low(env)
            if low is None or value > low:
                low = value
                low_inc = c.op == ">="
            found = True
        elif c.op in ("<", "<="):
            value = c.high(env)
            if high is None or value < high:
                high = value
                high_inc = c.op == "<="
            found = True
    if not found:
        return None
    return (low, high, low_inc, high_inc)


def _estimate_range_fraction(structure, low, high):
    """Fraction of keys a [low, high] range selects, from the key domain."""
    min_key, max_key = structure.min_key(), structure.max_key()
    if min_key is None or max_key is None:
        return 0.0
    try:
        domain = max_key - min_key
    except TypeError:
        return 0.5  # non-numeric keys: assume moderate selectivity
    if domain <= 0:
        return 1.0
    lo = min_key if low is None else max(low, min_key)
    hi = max_key if high is None else min(high, max_key)
    try:
        selected = hi - lo
    except TypeError:
        return 0.5
    if selected < 0:
        return 0.0
    return min(1.0, selected / domain)
