"""Execution context: the runtime companion of a physical plan.

An :class:`ExecutionContext` *is* an :class:`~repro.engine.expr.Env` — every
compiled expression closure keeps its ``fn(row, env)`` shape — extended with
the observability and control surface the benchmark harness needs:

* **per-operator metrics** (rows produced, invocation count, inclusive wall
  time, access-path choice) collected when ``metrics`` is a dict, powering
  ``EXPLAIN ANALYZE``;
* **cooperative timeout/cancellation**: operators check the deadline before
  running, and long scans check it periodically through :meth:`guard_iter`,
  so :mod:`repro.bench.service` can abort a query mid-run instead of only
  stamping it timed-out after it completed.

Plain :class:`Env` objects still work everywhere — instrumentation only
engages when the session hands the plan an ExecutionContext.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from ..errors import QueryCancelled, QueryTimeout
from ..expr import Env


class NodeMetrics:
    """Counters for one physical operator within one execution."""

    __slots__ = ("calls", "rows", "batches", "ws_bytes", "time_s", "detail")

    def __init__(self):
        self.calls = 0
        self.rows = 0
        self.batches = 0
        self.ws_bytes = 0  # peak estimated output bytes of one invocation
        self.time_s = 0.0
        self.detail = ""


class ResourceCounters:
    """Whole-statement resource totals, folded into the telemetry store.

    ``rows_scanned`` counts rows produced by *leaf* operators (table and
    materialized scans) — the data actually pulled off storage, as opposed
    to rows surviving to the result.  ``peak_ws_bytes`` is the largest
    estimated output (working set) any single operator invocation
    produced, per :meth:`~repro.engine.batch.Batch.estimated_bytes`.
    """

    __slots__ = ("rows_scanned", "batches", "peak_ws_bytes")

    def __init__(self):
        self.rows_scanned = 0
        self.batches = 0
        self.peak_ws_bytes = 0


class ExecutionContext(Env):
    """Env + per-operator counters + cooperative timeout/cancellation.

    ``metrics`` maps ``id(operator)`` to :class:`NodeMetrics`; it is shared
    across nesting levels (correlated subqueries accumulate into the same
    counters, reported as extra ``loops``).  ``deadline`` is an absolute
    ``time.perf_counter()`` instant; ``cancel_check`` is an optional
    zero-argument callable polled alongside the deadline.
    """

    __slots__ = (
        "metrics", "deadline", "cancel_check", "timeout_s", "tracer",
        "resources",
    )

    def __init__(
        self,
        params=None,
        outer_rows=None,
        cache=None,
        metrics: Optional[Dict[int, NodeMetrics]] = None,
        deadline: Optional[float] = None,
        cancel_check: Optional[Callable[[], bool]] = None,
        timeout_s: Optional[float] = None,
        tracer=None,
        resources: Optional[ResourceCounters] = None,
    ):
        super().__init__(params, outer_rows, cache)
        self.metrics = metrics
        self.deadline = deadline
        self.cancel_check = cancel_check
        self.timeout_s = timeout_s
        self.tracer = tracer  # optional obs.Tracer for per-operator spans
        self.resources = resources  # optional whole-statement totals

    @classmethod
    def begin(
        cls,
        params=None,
        timeout_s: Optional[float] = None,
        collect_metrics: bool = False,
        cancel_check: Optional[Callable[[], bool]] = None,
        tracer=None,
        resources: Optional[ResourceCounters] = None,
    ) -> "ExecutionContext":
        """Start a fresh context for one statement execution."""
        deadline = (
            time.perf_counter() + timeout_s if timeout_s is not None else None
        )
        return cls(
            params,
            metrics={} if collect_metrics else None,
            deadline=deadline,
            cancel_check=cancel_check,
            timeout_s=timeout_s,
            tracer=tracer,
            resources=resources,
        )

    def nested(self, outer_row) -> "ExecutionContext":
        """Correlated-subquery context: new outer row, shared everything else."""
        return ExecutionContext(
            self.params,
            [outer_row] + self.outer_rows,
            self.cache,
            metrics=self.metrics,
            deadline=self.deadline,
            cancel_check=self.cancel_check,
            timeout_s=self.timeout_s,
            tracer=self.tracer,
            resources=self.resources,
        )

    # -- cooperative control ------------------------------------------------

    def check(self):
        """Raise if the deadline passed or a cancellation was requested."""
        if self.deadline is not None and time.perf_counter() > self.deadline:
            if self.timeout_s is not None:
                raise QueryTimeout(
                    f"query exceeded timeout of {self.timeout_s}s"
                )
            raise QueryTimeout("query deadline exceeded")
        if self.cancel_check is not None and self.cancel_check():
            raise QueryCancelled("query cancelled")

    def guard_iter(self, iterable, every: int = 4096):
        """Wrap *iterable* so the deadline is polled every *every* items.

        Returns the iterable unchanged when neither a deadline nor a cancel
        check is active — scans pay nothing in the common case.
        """
        if self.deadline is None and self.cancel_check is None:
            return iterable

        def guarded():
            count = 0
            for item in iterable:
                yield item
                count += 1
                if count % every == 0:
                    self.check()

        return guarded()

    # -- operator instrumentation -------------------------------------------

    def run_operator(self, op):
        """Execute one operator, enforcing the deadline and recording metrics.

        Operators return batches; row counts are accumulated per batch
        (``sum`` of batch lengths), never per row.  Times are *inclusive*
        of children (Postgres EXPLAIN ANALYZE style); repeated invocations
        (e.g. a subplan under a correlated subquery) accumulate and
        surface as ``loops``.
        """
        if self.deadline is not None or self.cancel_check is not None:
            self.check()
        metrics = self.metrics
        tracer = self.tracer
        resources = self.resources
        if metrics is None and tracer is None and resources is None:
            return op.execute_batches(self)
        span = tracer.start("operator", op=op.label()) if tracer is not None else None
        started = time.perf_counter()
        try:
            out = op.execute_batches(self)
        except BaseException:
            if tracer is not None:
                tracer.finish(span, aborted=True)
            raise
        elapsed = time.perf_counter() - started
        row_count = sum(batch.length for batch in out)
        ws_bytes = 0
        if metrics is not None or resources is not None:
            ws_bytes = sum(batch.estimated_bytes() for batch in out)
        if resources is not None:
            resources.batches += len(out)
            if not op.children:  # leaf: rows pulled off storage
                resources.rows_scanned += row_count
            if ws_bytes > resources.peak_ws_bytes:
                resources.peak_ws_bytes = ws_bytes
        if span is not None:
            span.set(rows=row_count)
            tracer.finish(span)
        if metrics is None:
            return out
        node = metrics.get(id(op))
        if node is None:
            node = NodeMetrics()
            metrics[id(op)] = node
        node.calls += 1
        node.rows += row_count
        node.batches += len(out)
        if ws_bytes > node.ws_bytes:
            node.ws_bytes = ws_bytes
        node.time_s += elapsed
        detail = op.metrics_detail()
        if detail:
            node.detail = detail
        return out
