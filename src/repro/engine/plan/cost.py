"""Cardinality estimation and cost-based join ordering.

The rewrite layer (:mod:`.rewrite`) translates AST predicates into the
neutral *sketch* dataclasses below; this module consumes only sketches
and :mod:`repro.engine.stats` snapshots, never the AST itself — a
layering rule enforced by ``tools/engine_lint.py`` (check 8:
``plan/cost.py`` must not import from ``engine/sql``).

Three layers:

* **Predicate selectivity** — ``=`` costs ``1/NDV``; ranges interpolate
  over the equi-width histogram when one was collected, else linearly
  between min and max; predicates with unknown comparison values (query
  parameters) fall back to fixed default fractions.  Temporal-period
  clauses (AS OF/BETWEEN/FROM..TO) arrive as plain range sketches over
  the period's begin/end columns, so a current partition whose ``end``
  column is pinned at ``END_OF_TIME`` prices ``end > t`` at ~1.0 and a
  history partition prices it from its own closed-interval statistics.
* **Scan estimation** — per-partition ``rows × Π selectivity``, summed
  over the partitions the scan will actually read.
* **Join ordering** — left-deep dynamic programming over ≤
  ``MAX_DP_RELATIONS`` relations (cost = Σ intermediate result sizes,
  equi-edge selectivity ``1/max(NDV)``), with a connected-first greedy
  fallback above that bound.  Both are deterministic: ties break on the
  original FROM-clause position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..stats import ColumnStats

#: DP join enumeration is exponential in the relation count; past this
#: many relations the greedy fallback takes over.
MAX_DP_RELATIONS = 8

#: selectivity of an equality against a column with no statistics
DEFAULT_EQ_SELECTIVITY = 0.1
#: selectivity of a range predicate that cannot be interpolated
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
#: selectivity of predicates the sketcher cannot classify (LIKE, OR, ...)
DEFAULT_OTHER_SELECTIVITY = 1.0 / 3.0
#: selectivity of a non-equi join edge
DEFAULT_THETA_SELECTIVITY = 1.0 / 3.0
#: fraction of input rows surviving a grouped aggregation (EXPLAIN only)
GROUP_SELECTIVITY = 0.1


@dataclass(frozen=True)
class PredicateSketch:
    """One conjunct over one column, stripped of AST structure.

    ``op`` is one of ``"=", "<", "<=", ">", ">=", "between", "in",
    "isnull", "notnull", "other"``.  ``value``/``high`` are ``None`` when
    the comparison value is not a literal (parameters, expressions); the
    estimator then uses the default fraction for the operator class.
    """

    column: str
    op: str
    value: object = None
    high: object = None          # upper bound for "between"
    count: int = 1               # list length for "in"


@dataclass(frozen=True)
class PartitionSketch:
    """What a scan will read from one partition."""

    name: str
    rows: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict, hash=False)


@dataclass(frozen=True)
class UnitSketch:
    """One relation in a join product (base scan or opaque sub-plan)."""

    index: int                               # position in the FROM clause
    bindings: FrozenSet[str]
    rows: float
    #: NDV per (binding, column) for equi-join selectivity; empty for
    #: units without statistics
    ndv: Dict[Tuple[str, str], int] = field(default_factory=dict, hash=False)


@dataclass(frozen=True)
class EdgeSketch:
    """One multi-relation conjunct from the WHERE clause."""

    bindings: FrozenSet[str]
    #: ``((binding, column), (binding, column))`` for a simple equi-join
    #: conjunct, ``None`` otherwise
    keys: Optional[Tuple[Tuple[str, str], Tuple[str, str]]] = None


@dataclass
class JoinOrder:
    """Result of :func:`order_joins`."""

    order: Tuple[int, ...]           # unit indices, left-deep chain
    prefix_rows: Tuple[int, ...]     # estimated rows after each join step
    method: str                      # "dp" or "greedy"


def _numeric(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _histogram_fraction(
    col: ColumnStats, low: Optional[float], high: Optional[float]
) -> Optional[float]:
    """Fraction of non-null values in ``[low, high]`` from the histogram."""
    if not col.histogram or col.count <= 0:
        return None
    inside = 0.0
    for b_low, b_high, b_count in col.histogram:
        if not b_count:
            continue
        span = b_high - b_low
        lo = b_low if low is None else max(b_low, low)
        hi = b_high if high is None else min(b_high, high)
        if hi <= lo or span <= 0:
            continue
        inside += b_count * (hi - lo) / span
    return min(1.0, inside / col.count)


def _range_fraction(
    col: ColumnStats, low: Optional[float], high: Optional[float]
) -> float:
    """Fraction of non-null values in ``[low, high]``; histogram first,
    then linear interpolation over min/max, then the default."""
    from_hist = _histogram_fraction(col, low, high)
    if from_hist is not None:
        return from_hist
    c_low = _numeric(col.min_value)
    c_high = _numeric(col.max_value)
    if c_low is None or c_high is None:
        return DEFAULT_RANGE_SELECTIVITY
    if c_high <= c_low:  # constant column
        inside = (low is None or low <= c_low) and (high is None or high >= c_low)
        return 1.0 if inside else 0.0
    lo = c_low if low is None else max(c_low, low)
    hi = c_high if high is None else min(c_high, high)
    if hi <= lo:
        return 0.0
    return min(1.0, (hi - lo) / (c_high - c_low))


def predicate_selectivity(
    sketch: PredicateSketch, col: Optional[ColumnStats]
) -> float:
    """Estimated fraction of partition rows satisfying *sketch*."""
    if col is None:
        if sketch.op == "=":
            return DEFAULT_EQ_SELECTIVITY
        if sketch.op == "in":
            return min(1.0, DEFAULT_EQ_SELECTIVITY * max(1, sketch.count))
        if sketch.op in ("<", "<=", ">", ">=", "between"):
            return DEFAULT_RANGE_SELECTIVITY
        if sketch.op in ("isnull", "notnull"):
            return DEFAULT_OTHER_SELECTIVITY
        return DEFAULT_OTHER_SELECTIVITY

    not_null = 1.0 - col.null_fraction
    if sketch.op == "isnull":
        return col.null_fraction
    if sketch.op == "notnull":
        return not_null
    if sketch.op == "other":
        return DEFAULT_OTHER_SELECTIVITY * not_null

    if sketch.op == "=":
        if col.ndv <= 0:
            return 0.0
        value = _numeric(sketch.value)
        low = _numeric(col.min_value)
        high = _numeric(col.max_value)
        if value is not None and low is not None and high is not None:
            if value < low or value > high:
                return 0.0
        return not_null / col.ndv

    if sketch.op == "in":
        if col.ndv <= 0:
            return 0.0
        return min(1.0, max(1, sketch.count) / col.ndv) * not_null

    value = _numeric(sketch.value)
    if sketch.op == "between":
        high = _numeric(sketch.high)
        if value is None and high is None:
            return DEFAULT_RANGE_SELECTIVITY * not_null
        return _range_fraction(col, value, high) * not_null
    if value is None:
        return DEFAULT_RANGE_SELECTIVITY * not_null
    if sketch.op in ("<", "<="):
        return _range_fraction(col, None, value) * not_null
    if sketch.op in (">", ">="):
        return _range_fraction(col, value, None) * not_null
    return DEFAULT_OTHER_SELECTIVITY * not_null


def estimate_scan_rows(
    partitions: Sequence[PartitionSketch],
    predicates: Sequence[PredicateSketch],
) -> float:
    """Rows a scan emits: per-partition rows × Π conjunct selectivity.

    Selectivities are evaluated per partition against that partition's
    own column statistics — this is where a current partition's
    ``END_OF_TIME``-pinned period end diverges from a history
    partition's closed intervals.
    """
    total = 0.0
    for part in partitions:
        survivors = float(part.rows)
        for sketch in predicates:
            survivors *= predicate_selectivity(sketch, part.columns.get(sketch.column))
        total += survivors
    return total


def estimate_temporal_aggregate_rows(input_rows: float) -> float:
    """Output rows of a sweep-line temporal aggregation.

    Each input version contributes at most two interval boundaries
    (begin and end), and the sweep emits at most one row per distinct
    boundary — so ``2 × input`` is a tight upper bound.
    """
    return max(1.0, 2.0 * float(input_rows))


def estimate_align_join_rows(
    left_rows: float, right_rows: float, equi_keys: int
) -> float:
    """Output rows of a period-align temporal join.

    With equi keys the estimate follows the classic
    ``|L|·|R| / max(|L|, |R|)`` shape; the temporal overlap predicate
    then keeps roughly a third of the key-matched pairs (the default
    range selectivity).  Without keys every overlapping pair survives.
    """
    lhs = max(1.0, float(left_rows))
    rhs = max(1.0, float(right_rows))
    if equi_keys > 0:
        matched = (lhs * rhs) / max(lhs, rhs)
    else:
        matched = lhs * rhs
    return max(1.0, matched * DEFAULT_RANGE_SELECTIVITY)


def _edge_selectivity(
    edge: EdgeSketch,
    ndv: Dict[Tuple[str, str], int],
    unit_rows: Dict[str, float],
) -> float:
    """Selectivity of one join edge.

    Equi edges cost ``1 / max(NDV_left, NDV_right)``; a side without
    collected NDV substitutes its relation's row estimate, which reduces
    to the classic ``|L|·|R| / max(|L|, |R|)`` heuristic when neither
    side has statistics.
    """
    if edge.keys is None:
        return DEFAULT_THETA_SELECTIVITY
    sides = []
    for binding, column in edge.keys:
        distinct = ndv.get((binding, column))
        if distinct is None or distinct <= 0:
            distinct = max(1.0, unit_rows.get(binding, 1.0))
        sides.append(float(distinct))
    return 1.0 / max(sides + [1.0])


class _JoinSpace:
    """Shared context for DP and greedy enumeration."""

    def __init__(self, units: Sequence[UnitSketch], edges: Sequence[EdgeSketch]):
        self.units = list(units)
        self.edges = list(edges)
        self.ndv: Dict[Tuple[str, str], int] = {}
        self.unit_rows: Dict[str, float] = {}
        for unit in self.units:
            for key, distinct in unit.ndv.items():
                # NDV can never exceed the (possibly filtered) row estimate
                self.ndv[key] = max(1, min(distinct, int(max(1.0, unit.rows))))
            for binding in unit.bindings:
                self.unit_rows[binding] = max(1.0, unit.rows)

    def bindings_of(self, indices) -> FrozenSet[str]:
        out = set()
        for i in indices:
            out |= self.units[i].bindings
        return frozenset(out)

    def connecting_edges(
        self, left: FrozenSet[str], right: FrozenSet[str]
    ) -> List[EdgeSketch]:
        combined = left | right
        return [
            e
            for e in self.edges
            if e.bindings <= combined and (e.bindings & left) and (e.bindings & right)
        ]

    def joined_rows(
        self, left_rows: float, right: UnitSketch, edges: Sequence[EdgeSketch]
    ) -> float:
        rows = left_rows * max(1.0, right.rows)
        for edge in edges:
            rows *= _edge_selectivity(edge, self.ndv, self.unit_rows)
        return max(1.0, rows)


def order_joins(
    units: Sequence[UnitSketch], edges: Sequence[EdgeSketch]
) -> JoinOrder:
    """Pick a left-deep join order minimising Σ intermediate sizes."""
    if len(units) <= MAX_DP_RELATIONS:
        return _dp_order(units, edges)
    return _greedy_order(units, edges)


def _dp_order(
    units: Sequence[UnitSketch], edges: Sequence[EdgeSketch]
) -> JoinOrder:
    space = _JoinSpace(units, edges)
    n = len(space.units)
    # state: subset -> (cost, rows, order, prefix_rows)
    best: Dict[FrozenSet[int], Tuple[float, float, Tuple[int, ...], Tuple[int, ...]]] = {}
    for i, unit in enumerate(space.units):
        rows = max(1.0, unit.rows)
        best[frozenset([i])] = (0.0, rows, (i,), (int(rows),))
    for size in range(1, n):
        for subset in [frozenset(c) for c in combinations(range(n), size)]:
            state = best.get(subset)
            if state is None:
                continue
            cost, rows, order, prefix = state
            left_bindings = space.bindings_of(subset)
            candidates = [j for j in range(n) if j not in subset]
            connected = [
                j
                for j in candidates
                if space.connecting_edges(left_bindings, space.units[j].bindings)
            ]
            # avoid Cartesian products while a connected extension exists
            for j in connected or candidates:
                unit = space.units[j]
                joining = space.connecting_edges(left_bindings, unit.bindings)
                out_rows = space.joined_rows(rows, unit, joining)
                new_cost = cost + out_rows
                key = subset | {j}
                entry = (
                    new_cost,
                    out_rows,
                    order + (j,),
                    prefix + (int(out_rows),),
                )
                existing = best.get(key)
                if existing is None or (entry[0], entry[1], entry[2]) < (
                    existing[0],
                    existing[1],
                    existing[2],
                ):
                    best[key] = entry
    _, _, order, prefix = best[frozenset(range(n))]
    return JoinOrder(order=order, prefix_rows=prefix, method="dp")


def _greedy_order(
    units: Sequence[UnitSketch], edges: Sequence[EdgeSketch]
) -> JoinOrder:
    """Above the DP bound: start small, always take the connected
    extension producing the fewest rows (ties on FROM position)."""
    space = _JoinSpace(units, edges)
    n = len(space.units)
    start = min(range(n), key=lambda i: (space.units[i].rows, i))
    order = [start]
    rows = max(1.0, space.units[start].rows)
    prefix = [int(rows)]
    remaining = [i for i in range(n) if i != start]
    while remaining:
        left_bindings = space.bindings_of(order)
        scored = []
        for j in remaining:
            unit = space.units[j]
            joining = space.connecting_edges(left_bindings, unit.bindings)
            out_rows = space.joined_rows(rows, unit, joining)
            scored.append((0 if joining else 1, out_rows, j))
        scored.sort()
        _, rows, chosen = scored[0]
        order.append(chosen)
        prefix.append(int(rows))
        remaining.remove(chosen)
    return JoinOrder(order=tuple(order), prefix_rows=tuple(prefix), method="greedy")
