"""Logical plan IR: the stage between the AST and physical operators.

The planner used to go from AST straight to physical operators in one
monolithic pass.  This module gives queries an intermediate, inspectable
shape: a small relational tree built from the FROM/WHERE part of a SELECT
(scans, derived tables, joins, filters), with the projection/aggregation
part carried alongside on the owning :class:`LogicalQuery`.

The tree is deliberately close to the AST — table references keep their
temporal clauses, predicates stay expression nodes — because the paper's
systems optimise exactly here: which conjuncts reach a scan decides
index-vs-scan (§5.3.3), and join order decides the intermediate sizes.
Rewrite rules (:mod:`.rewrite`) transform this IR; physical lowering in
:mod:`.planner` turns the result into operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Set, Tuple

from ..errors import CatalogError, PlanError, ProgrammingError
from ..sql import ast

# ---------------------------------------------------------------------------
# predicate helpers (shared by the rewriter and the planner)
# ---------------------------------------------------------------------------


def split_conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    """Flatten a predicate into its AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[ast.Expr]) -> Optional[ast.Expr]:
    result = None
    for conjunct in conjuncts:
        result = conjunct if result is None else ast.Binary("and", result, conjunct)
    return result


def collect_column_refs(node) -> List[ast.ColumnRef]:
    """All column references in an expression, subqueries included."""
    refs: List[ast.ColumnRef] = []
    _walk_with_subqueries(node, refs)
    return refs


def _walk_with_subqueries(node, refs):
    if node is None:
        return
    for sub in ast.walk_expr(node):
        if isinstance(sub, ast.ColumnRef):
            refs.append(sub)
        elif isinstance(sub, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
            _walk_select(sub.subquery, refs)


def _walk_select(select: ast.Select, refs):
    for item in select.items:
        _walk_with_subqueries(item.expr, refs)
    _walk_with_subqueries(select.where, refs)
    for expr in select.group_by:
        _walk_with_subqueries(expr, refs)
    _walk_with_subqueries(select.having, refs)
    for item in select.order_by:
        _walk_with_subqueries(item.expr, refs)
    for from_item in select.from_items:
        _walk_from(from_item, refs)
    if select.set_op is not None:
        _walk_select(select.set_op[1], refs)


def _walk_from(item, refs):
    if isinstance(item, ast.Join):
        _walk_from(item.left, refs)
        _walk_from(item.right, refs)
        _walk_with_subqueries(item.on, refs)
    elif isinstance(item, ast.DerivedTable):
        _walk_select(item.select, refs)
    elif isinstance(item, ast.TableRef):
        for clause in item.temporal:
            _walk_with_subqueries(clause.low, refs)
            _walk_with_subqueries(clause.high, refs)


def referenced_columns(select: ast.Select) -> List[Tuple[Optional[str], str]]:
    """All (binding, column) pairs a query touches; stars become ``*``."""
    refs: List[ast.ColumnRef] = []
    _walk_select(select, refs)
    out: List[Tuple[Optional[str], str]] = [(ref.table, ref.name) for ref in refs]
    for item in select.items:
        if isinstance(item.expr, ast.Star):
            out.append((item.expr.table, "*"))
    return out


def rebuild_expr(expr, rewrite):
    """Rebuild an expression node with rewritten children.

    Source spans carry over to the rebuilt node so analyzer diagnostics
    keep pointing at the original SQL text after rewrites.
    """
    if isinstance(expr, ast.Binary):
        out = ast.Binary(expr.op, rewrite(expr.left), rewrite(expr.right))
    elif isinstance(expr, ast.Unary):
        out = ast.Unary(expr.op, rewrite(expr.operand))
    elif isinstance(expr, ast.FuncCall):
        out = ast.FuncCall(expr.name, tuple(rewrite(a) for a in expr.args))
    elif isinstance(expr, ast.Case):
        out = ast.Case(
            tuple((rewrite(c), rewrite(r)) for c, r in expr.branches),
            rewrite(expr.default) if expr.default is not None else None,
        )
    elif isinstance(expr, ast.Between):
        out = ast.Between(
            rewrite(expr.operand), rewrite(expr.low), rewrite(expr.high), expr.negated
        )
    elif isinstance(expr, ast.Like):
        out = ast.Like(rewrite(expr.operand), rewrite(expr.pattern), expr.negated)
    elif isinstance(expr, ast.IsNull):
        out = ast.IsNull(rewrite(expr.operand), expr.negated)
    elif isinstance(expr, ast.InList):
        out = ast.InList(
            rewrite(expr.operand), tuple(rewrite(i) for i in expr.items), expr.negated
        )
    else:
        # literals, params, column refs, subqueries: returned unchanged
        return expr
    return ast.copy_span(expr, out)


# ---------------------------------------------------------------------------
# IR nodes
# ---------------------------------------------------------------------------


class LogicalNode:
    """Base class of all logical plan nodes."""

    est_rows: int = 1

    @property
    def bindings(self) -> Set[str]:
        return set()

    def children(self) -> Tuple["LogicalNode", ...]:
        return ()

    def describe(self) -> str:
        return type(self).__name__

    def render(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass
class LogicalValues(LogicalNode):
    """The single-row relation behind a FROM-less SELECT."""

    est_rows: int = 1

    def describe(self):
        return "Values(1 row)"


@dataclass
class LogicalScan(LogicalNode):
    """A base-table reference, temporal clauses and pushed conjuncts attached."""

    ref: ast.TableRef
    schema: object  # catalog.TableSchema
    est_rows: int = 1
    pushed: Tuple[ast.Expr, ...] = ()
    #: "heuristic" (partition row counts) or "stats" (ANALYZE snapshot
    #: refined the estimate; the cost-based join order may engage)
    est_source: str = "heuristic"

    @property
    def binding(self) -> str:
        return self.ref.binding

    @property
    def bindings(self) -> Set[str]:
        return {self.ref.binding}

    def describe(self):
        return (
            f"Scan({self.schema.name} as {self.binding}, est={self.est_rows}, "
            f"temporal={len(self.ref.temporal)}, pushed={len(self.pushed)})"
        )


@dataclass
class LogicalDerived(LogicalNode):
    """A derived table (subquery in FROM) or an expanded view."""

    select: ast.Select
    alias: str
    view_name: Optional[str] = None
    columns: Tuple[str, ...] = ()
    est_rows: int = 1000

    @property
    def bindings(self) -> Set[str]:
        return {self.alias}

    def describe(self):
        origin = f"view {self.view_name}" if self.view_name else "subquery"
        return f"Derived({self.alias}, {origin})"


@dataclass
class LogicalVirtualScan(LogicalNode):
    """A ``repro_stat_*`` system view: a virtual relation materialised from
    engine state at execution time (no storage, no temporal clauses)."""

    view_name: str
    alias: str
    columns: Tuple[str, ...] = ()
    est_rows: int = 64

    @property
    def bindings(self) -> Set[str]:
        return {self.alias}

    def describe(self):
        return f"VirtualScan({self.view_name} as {self.alias})"


@dataclass
class LogicalJoin(LogicalNode):
    """A join with its conjuncts still in AST form (equi-key split happens
    at lowering, where compiled scopes exist)."""

    kind: str  # "inner" | "left"
    left: LogicalNode
    right: LogicalNode
    conjuncts: Tuple[ast.Expr, ...] = ()
    #: cardinality stamped by the cost-based join order; None falls back
    #: to the structural heuristic below
    est_hint: Optional[int] = None

    @property
    def bindings(self) -> Set[str]:
        return self.left.bindings | self.right.bindings

    @property
    def est_rows(self) -> int:
        if self.est_hint is not None:
            return self.est_hint
        lhs, rhs = self.left.est_rows, self.right.est_rows
        if self.conjuncts:
            if any(_looks_equi(c, self.left.bindings, self.right.bindings) for c in self.conjuncts):
                return max(1, (lhs * rhs) // max(lhs, rhs, 1))
            return max(lhs, rhs)
        if self.kind == "left":
            return max(lhs, rhs)
        return lhs * max(rhs, 1)

    def children(self):
        return (self.left, self.right)

    def describe(self):
        return f"Join({self.kind}, conjuncts={len(self.conjuncts)})"


@dataclass
class LogicalAlignJoin(LogicalNode):
    """A period-align temporal join (dialect ``TEMPORAL JOIN`` or the
    temporal-fusion rewrite): equality conjuncts between the two sides
    plus an implicit overlap of one period per side.  The layout is
    ``left + right`` with ``__align.overlap_begin``/``overlap_end``
    (the intersected period) appended."""

    left: LogicalNode
    right: LogicalNode
    conjuncts: Tuple[ast.Expr, ...] = ()
    left_period: Tuple[ast.Expr, ast.Expr] = ()
    right_period: Tuple[ast.Expr, ast.Expr] = ()
    period: str = "system_time"
    #: cardinality stamped at fusion time from the join it replaced
    est_hint: Optional[int] = None

    @property
    def bindings(self) -> Set[str]:
        return self.left.bindings | self.right.bindings

    @property
    def est_rows(self) -> int:
        if self.est_hint is not None:
            return self.est_hint
        lhs, rhs = self.left.est_rows, self.right.est_rows
        if self.conjuncts:
            return max(1, (lhs * rhs) // max(lhs, rhs, 1))
        return max(lhs, rhs)

    def children(self):
        return (self.left, self.right)

    def describe(self):
        return f"AlignJoin({self.period}, conjuncts={len(self.conjuncts)})"


@dataclass
class LogicalTemporalAggregate(LogicalNode):
    """Sweep-line temporal aggregation over one relation: group by the
    constant intervals of *period*, aggregating the versions active in
    each.  Exposes ``__tagg.t`` (the interval start) plus one
    ``__tagg.__a<i>`` column per aggregate."""

    child: LogicalNode
    begin: ast.Expr
    end: ast.Expr
    aggregates: Tuple[ast.Aggregate, ...] = ()
    period: str = "system_time"
    est_hint: Optional[int] = None

    @property
    def bindings(self) -> Set[str]:
        return {"__tagg"}

    @property
    def est_rows(self) -> int:
        if self.est_hint is not None:
            return self.est_hint
        # at most one boundary per version endpoint
        return max(1, 2 * self.child.est_rows)

    def children(self):
        return (self.child,)

    def describe(self):
        return (
            f"TemporalAggregate({self.period}, "
            f"aggregates={len(self.aggregates)})"
        )


@dataclass
class LogicalProduct(LogicalNode):
    """An unordered FROM list plus the join-edge pool, before join-order
    selection replaces it with a left-deep :class:`LogicalJoin` chain."""

    units: Tuple[LogicalNode, ...]
    edges: Tuple[Tuple[frozenset, ast.Expr], ...] = ()

    @property
    def bindings(self) -> Set[str]:
        out: Set[str] = set()
        for unit in self.units:
            out |= unit.bindings
        return out

    @property
    def est_rows(self) -> int:
        est = 1
        for unit in self.units:
            est *= max(1, unit.est_rows)
        return est

    def children(self):
        return tuple(self.units)

    def describe(self):
        return f"Product(units={len(self.units)}, edges={len(self.edges)})"


@dataclass
class LogicalFilter(LogicalNode):
    """A residual predicate above its child relation."""

    child: LogicalNode
    predicate: ast.Expr
    label: str = "where"

    @property
    def bindings(self) -> Set[str]:
        return self.child.bindings

    @property
    def est_rows(self) -> int:
        return self.child.est_rows

    def children(self):
        return (self.child,)

    def describe(self):
        return f"Filter({self.label}, conjuncts={len(split_conjuncts(self.predicate))})"


@dataclass
class LogicalEmpty(LogicalNode):
    """A subtree proven to return no rows (contradictory constraints).

    The original subtree stays attached as ``child`` — it still carries
    the layout (bindings and columns) the surrounding plan resolves
    names against; only execution is replaced, by an ``EmptyScan``.
    """

    child: LogicalNode
    reason: str = "contradictory constraints"
    est_rows: int = 0

    @property
    def bindings(self) -> Set[str]:
        return self.child.bindings

    def children(self):
        return (self.child,)

    def describe(self):
        return f"Empty({self.reason})"


@dataclass
class LogicalQuery:
    """One SELECT core as a logical plan.

    ``relation`` is the FROM/WHERE tree (None only before building);
    projection, aggregation, ordering and limits are read from ``select``
    during lowering — they are scope-dependent and carry no join structure
    worth rewriting here.
    """

    select: ast.Select
    relation: LogicalNode
    referenced: List[Tuple[Optional[str], str]]
    applied_rules: List[str] = field(default_factory=list)

    def render(self) -> str:
        select = self.select
        bits = [f"items={len(select.items)}"]
        if select.group_by or any(
            ast.contains_aggregate(i.expr) for i in select.items
        ):
            bits.append(f"group_by={len(select.group_by)}")
        if select.distinct:
            bits.append("distinct")
        if select.order_by:
            bits.append(f"order_by={len(select.order_by)}")
        if select.limit is not None:
            bits.append("limit")
        lines = ["LogicalQuery[" + ", ".join(bits) + "]"]
        if self.applied_rules:
            lines.append("  rewrites: " + ", ".join(self.applied_rules))
        lines.append(self.relation.render(1))
        return "\n".join(lines)


def _looks_equi(conjunct, left_bindings, right_bindings) -> bool:
    """Heuristic mirror of the lowering-time equi-key test: ``a = b`` with
    the two sides' column references split across the join inputs."""
    if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="):
        return False
    left_refs = {r.table for r in collect_column_refs(conjunct.left) if r.table}
    right_refs = {r.table for r in collect_column_refs(conjunct.right) if r.table}
    return bool(
        (left_refs and right_refs)
        and (
            (left_refs <= left_bindings and right_refs <= right_bindings)
            or (left_refs <= right_bindings and right_refs <= left_bindings)
        )
    )


# ---------------------------------------------------------------------------
# building the IR from the AST
# ---------------------------------------------------------------------------


def build_logical(select: ast.Select, db) -> LogicalQuery:
    """Build the logical plan for one SELECT core (no set operations)."""
    referenced = referenced_columns(select)
    if select.from_items:
        units = tuple(_build_from_item(item, db) for item in select.from_items)
        relation: LogicalNode = units[0] if len(units) == 1 else LogicalProduct(units)
        if select.where is not None:
            relation = LogicalFilter(relation, select.where, "where")
    else:
        relation = LogicalValues()
        if select.where is not None:
            relation = LogicalFilter(relation, select.where, "no-from")
    return LogicalQuery(select, relation, referenced)


def _build_from_item(item, db) -> LogicalNode:
    if isinstance(item, ast.TableRef):
        view = getattr(db, "view", lambda _n: None)(item.name)
        if view is not None:
            if item.temporal:
                raise ProgrammingError(
                    f"temporal clauses are not supported on view {item.name!r}"
                )
            return LogicalDerived(
                view,
                item.binding,
                view_name=item.name,
                columns=tuple(output_columns_of(view, db)),
            )
        system_columns = getattr(
            db, "system_view_columns", lambda _n: None
        )(item.name)
        if system_columns is not None:
            if item.temporal:
                raise ProgrammingError(
                    f"temporal clauses are not supported on system view "
                    f"{item.name!r}"
                )
            return LogicalVirtualScan(
                item.name.lower(), item.binding, columns=system_columns
            )
        table = db.table(item.name)
        schema = table.schema
        return LogicalScan(
            item, schema, est_rows=_estimate_scan_rows(table, schema, item)
        )
    if isinstance(item, ast.DerivedTable):
        return LogicalDerived(
            item.select,
            item.alias,
            columns=tuple(output_columns_of(item.select, db)),
        )
    if isinstance(item, ast.Join):
        left = _build_from_item(item.left, db)
        right = _build_from_item(item.right, db)
        if item.kind == "temporal":
            return _build_align_join(item, left, right)
        kind = item.kind if item.kind != "cross" else "inner"
        return LogicalJoin(kind, left, right, tuple(split_conjuncts(item.on)))
    raise PlanError(f"cannot build logical plan for FROM item {item!r}")


def _build_align_join(item: "ast.Join", left, right) -> LogicalAlignJoin:
    period = item.period or "system_time"
    conjuncts = tuple(split_conjuncts(item.on))
    for conjunct in conjuncts:
        if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="):
            raise ProgrammingError(
                "TEMPORAL JOIN accepts only equality conditions in ON"
            )
    return LogicalAlignJoin(
        left,
        right,
        conjuncts,
        left_period=_align_period_refs(left, period),
        right_period=_align_period_refs(right, period),
        period=period,
    )


def _align_period_refs(side: LogicalNode, period_name: str):
    scans = scans_in_order(side)
    if len(scans) != 1:
        raise ProgrammingError(
            "each side of a TEMPORAL JOIN must be a single table reference"
        )
    scan = scans[0]
    schema = scan.schema
    period = None
    if period_name == "system_time":
        period = schema.system_period
    elif period_name == "business_time":
        periods = schema.application_periods
        period = periods[0] if periods else None
    else:
        try:
            period = schema.period(period_name)
        except CatalogError:
            period = None
    if period is None:
        raise ProgrammingError(
            f"table {schema.name!r} has no period {period_name!r} "
            f"for TEMPORAL JOIN"
        )
    return (
        ast.ColumnRef(period.begin_column, scan.binding),
        ast.ColumnRef(period.end_column, scan.binding),
    )


def _estimate_scan_rows(table, schema, ref: ast.TableRef) -> int:
    est = table.current_count() + (
        table.history_count()
        if (_has_system_clause(schema, ref) and table.has_split)
        else 0
    )
    return max(1, est)


def _has_system_clause(schema, ref: ast.TableRef) -> bool:
    for clause in ref.temporal:
        if clause.period == "system_time":
            return True
        if clause.period == "business_time":
            continue
        try:
            period = schema.period(clause.period)
        except CatalogError:
            continue  # lowering reports unknown periods
        if period.is_system:
            return True
    return False


def output_columns_of(select: ast.Select, db) -> List[str]:
    """Best-effort output column names of a sub-select (stars expanded).

    Used only to attribute unqualified column references to FROM units —
    never for the final result schema, which lowering computes exactly.
    """
    names: List[str] = []
    for item in select.items:
        if isinstance(item.expr, ast.Star):
            names.extend(_star_columns(item.expr, select.from_items, db))
        elif item.alias:
            names.append(item.alias)
        elif isinstance(item.expr, ast.ColumnRef):
            names.append(item.expr.name)
        else:
            names.append(f"col{len(names)}")
    return names


def _star_columns(star: ast.Star, from_items, db) -> List[str]:
    out: List[str] = []
    for item in from_items:
        out.extend(_from_item_columns(item, star.table, db))
    return out


def _from_item_columns(item, wanted, db) -> List[str]:
    if isinstance(item, ast.Join):
        return _from_item_columns(item.left, wanted, db) + _from_item_columns(
            item.right, wanted, db
        )
    if isinstance(item, ast.TableRef):
        if wanted is not None and wanted != item.binding:
            return []
        view = getattr(db, "view", lambda _n: None)(item.name)
        if view is not None:
            return output_columns_of(view, db)
        system_columns = getattr(
            db, "system_view_columns", lambda _n: None
        )(item.name)
        if system_columns is not None:
            return list(system_columns)
        try:
            return db.table(item.name).schema.column_names()
        except CatalogError:
            return []
    if isinstance(item, ast.DerivedTable):
        if wanted is not None and wanted != item.alias:
            return []
        return output_columns_of(item.select, db)
    return []


def unit_layout(unit: LogicalNode) -> List[Tuple[str, str]]:
    """(binding, column) pairs a FROM unit exposes, for name attribution."""
    if isinstance(unit, LogicalScan):
        return [(unit.binding, c) for c in unit.schema.column_names()]
    if isinstance(unit, LogicalDerived):
        return [(unit.alias, c) for c in unit.columns]
    if isinstance(unit, LogicalVirtualScan):
        return [(unit.alias, c) for c in unit.columns]
    if isinstance(unit, LogicalJoin):
        return unit_layout(unit.left) + unit_layout(unit.right)
    if isinstance(unit, LogicalAlignJoin):
        return (
            unit_layout(unit.left)
            + unit_layout(unit.right)
            + [("__align", "overlap_begin"), ("__align", "overlap_end")]
        )
    if isinstance(unit, LogicalTemporalAggregate):
        return [("__tagg", "t")] + [
            ("__tagg", f"__a{i}") for i in range(len(unit.aggregates))
        ]
    if isinstance(unit, LogicalFilter):
        return unit_layout(unit.child)
    if isinstance(unit, LogicalEmpty):
        return unit_layout(unit.child)
    return []


def scans_in_order(node: LogicalNode) -> List[LogicalScan]:
    """All LogicalScan leaves, depth-first left-to-right (FROM order)."""
    if isinstance(node, LogicalScan):
        return [node]
    out: List[LogicalScan] = []
    for child in node.children():
        out.extend(scans_in_order(child))
    return out


def replace_scans(node: LogicalNode, mapping) -> LogicalNode:
    """Rebuild a FROM unit with scans substituted via ``mapping[id(scan)]``."""
    if isinstance(node, LogicalScan):
        return mapping.get(id(node), node)
    if isinstance(node, LogicalJoin):
        left = replace_scans(node.left, mapping)
        right = replace_scans(node.right, mapping)
        if left is node.left and right is node.right:
            return node
        return replace(node, left=left, right=right)
    if isinstance(node, LogicalAlignJoin):
        left = replace_scans(node.left, mapping)
        right = replace_scans(node.right, mapping)
        if left is node.left and right is node.right:
            return node
        return replace(node, left=left, right=right)
    if isinstance(node, LogicalFilter):
        child = replace_scans(node.child, mapping)
        if child is node.child:
            return node
        return replace(node, child=child)
    if isinstance(node, LogicalTemporalAggregate):
        child = replace_scans(node.child, mapping)
        if child is node.child:
            return node
        return replace(node, child=child)
    if isinstance(node, LogicalProduct):
        units = tuple(replace_scans(u, mapping) for u in node.units)
        if all(a is b for a, b in zip(units, node.units)):
            return node
        return replace(node, units=units)
    return node
