"""Physical operators.

Every operator is a node with ``rows(env) -> list[tuple]`` and an
``explain(indent)`` rendering.  Operators materialise their outputs — the
engine is an analytics engine over in-memory partitions, and materialising
keeps hash joins and sorts simple while preserving the *relative* costs the
benchmark needs (scans linear in partition size, index probes logarithmic,
extra joins visibly expensive).

``rows`` is a thin dispatcher: subclasses implement ``execute(env)``, and
when the env is an :class:`~repro.engine.plan.context.ExecutionContext` the
call routes through it, which enforces the cooperative deadline and records
per-operator counters for ``EXPLAIN ANALYZE``.  With a plain ``Env`` the
dispatcher adds one ``getattr`` and nothing else.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..expr import Env
from ..types import compare_values


class Operator:
    """Base class: a physical plan node."""

    #: child operators, for explain trees
    children: Sequence["Operator"] = ()

    #: estimated output rows, stamped during lowering (None = not priced);
    #: EXPLAIN renders it next to actuals so mis-estimates stay visible
    est_rows: Optional[int] = None

    def rows(self, env: Env) -> List[tuple]:
        # ExecutionContext exposes run_operator; a plain Env does not.
        runner = getattr(env, "run_operator", None)
        if runner is not None:
            return runner(self)
        return self.execute(env)

    def execute(self, env: Env) -> List[tuple]:
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    def metrics_detail(self) -> str:
        """Extra per-execution detail for EXPLAIN ANALYZE (e.g. the
        index-vs-scan decision an access path took)."""
        return ""

    def explain(self, indent=0) -> str:
        text = self.label()
        if self.est_rows is not None:
            text += f" (est rows={self.est_rows})"
        lines = ["  " * indent + text]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class TableAccess(Operator):
    """Scan or index access over one table (built by plan.access).

    Accepts either a :class:`~repro.engine.plan.access.TableAccessPlan`
    (preferred — its run-time decisions feed EXPLAIN ANALYZE) or a bare
    producer callable.
    """

    def __init__(self, access, description: str):
        if callable(access) and not hasattr(access, "rows"):
            self.access_plan = None
            self._producer = access
        else:
            self.access_plan = access
            self._producer = access.rows
        self._description = description

    def execute(self, env):
        return self._producer(env)

    def label(self):
        return self._description

    def metrics_detail(self):
        plan = self.access_plan
        if plan is None or not plan.decisions:
            return ""
        bits = []
        for decision in plan.decisions:
            bit = f"{decision.partition}: {decision.strategy}"
            if decision.index_name:
                bit += f"[{decision.index_name}]"
            bits.append(bit)
        return "; ".join(bits)


class Materialized(Operator):
    """Wrap an already-computed row list (derived tables, CTE-style reuse)."""

    def __init__(self, rows_value: List[tuple], description="Materialized"):
        self._rows = rows_value
        self._description = description

    def execute(self, env):
        # a copy: consumers sort/extend result lists in place, and handing
        # out the backing list would corrupt every later reuse
        return list(self._rows)

    def label(self):
        return f"{self._description} ({len(self._rows)} rows)"


class Subplan(Operator):
    """Defer to a planner-produced callable (derived tables, subqueries)."""

    def __init__(self, producer: Callable[[Env], List[tuple]], description: str):
        self._producer = producer
        self._description = description

    def execute(self, env):
        return self._producer(env)

    def label(self):
        return self._description


class Filter(Operator):
    def __init__(self, child: Operator, predicate, description="Filter"):
        self.children = (child,)
        self._predicate = predicate
        self._description = description

    def execute(self, env):
        predicate = self._predicate
        rows = self.children[0].rows(env)
        guard = getattr(env, "guard_iter", None)
        if guard is not None:
            rows = guard(rows)
        return [row for row in rows if predicate(row, env) is True]

    def label(self):
        return self._description


class Project(Operator):
    def __init__(self, child: Operator, exprs, description="Project"):
        self.children = (child,)
        self._exprs = exprs
        self._description = description

    def execute(self, env):
        exprs = self._exprs
        rows = self.children[0].rows(env)
        guard = getattr(env, "guard_iter", None)
        if guard is not None:
            rows = guard(rows)
        return [tuple(e(row, env) for e in exprs) for row in rows]

    def label(self):
        return self._description


class CrossJoin(Operator):
    def __init__(self, left: Operator, right: Operator):
        self.children = (left, right)

    def execute(self, env):
        left_rows = self.children[0].rows(env)
        right_rows = self.children[1].rows(env)
        guard = getattr(env, "guard_iter", None)
        if guard is not None:
            # poll often on the outer side: each step emits len(right) rows
            left_rows = guard(left_rows, 256)
        return [lrow + rrow for lrow in left_rows for rrow in right_rows]

    def label(self):
        return "CrossJoin"


class NestedLoopJoin(Operator):
    """Inner/left join with an arbitrary predicate."""

    def __init__(self, left, right, predicate, kind="inner", right_width=0):
        self.children = (left, right)
        self._predicate = predicate
        self._kind = kind
        self._right_width = right_width

    def execute(self, env):
        left_rows = self.children[0].rows(env)
        right_rows = self.children[1].rows(env)
        guard = getattr(env, "guard_iter", None)
        if guard is not None:
            # poll often on the outer side: each step scans the inner input
            left_rows = guard(left_rows, 256)
        predicate = self._predicate
        out = []
        pad = (None,) * self._right_width
        for lrow in left_rows:
            matched = False
            for rrow in right_rows:
                combined = lrow + rrow
                if predicate is None or predicate(combined, env) is True:
                    out.append(combined)
                    matched = True
            if self._kind == "left" and not matched:
                out.append(lrow + pad)
        return out

    def label(self):
        return f"NestedLoopJoin({self._kind})"


class HashJoin(Operator):
    """Equi-join.  Builds the hash table on the right input by default;
    cost-based planning may request ``build_side="left"`` for inner joins
    when the left input is estimated cheaper (left joins always probe
    from the left so every left row can surface)."""

    def __init__(
        self,
        left,
        right,
        left_keys,   # compiled exprs over the LEFT row layout
        right_keys,  # compiled exprs over the RIGHT row layout
        residual=None,  # compiled over the combined layout
        kind="inner",
        right_width=0,
        build_side="right",
    ):
        self.children = (left, right)
        self._left_keys = left_keys
        self._right_keys = right_keys
        self._residual = residual
        self._kind = kind
        self._right_width = right_width
        self._build_side = build_side if kind == "inner" else "right"

    def execute(self, env):
        left_rows = self.children[0].rows(env)
        right_rows = self.children[1].rows(env)
        out = []
        residual = self._residual
        guard = getattr(env, "guard_iter", None)
        if self._build_side == "left":
            table = {}
            for lrow in left_rows:
                key = tuple(k(lrow, env) for k in self._left_keys)
                if any(part is None for part in key):
                    continue
                table.setdefault(key, []).append(lrow)
            if guard is not None:
                right_rows = guard(right_rows)
            for rrow in right_rows:
                key = tuple(k(rrow, env) for k in self._right_keys)
                if any(part is None for part in key):
                    continue
                for lrow in table.get(key, ()):
                    combined = lrow + rrow
                    if residual is None or residual(combined, env) is True:
                        out.append(combined)
            return out
        table = {}
        for rrow in right_rows:
            key = tuple(k(rrow, env) for k in self._right_keys)
            if any(part is None for part in key):
                continue
            table.setdefault(key, []).append(rrow)
        pad = (None,) * self._right_width
        if guard is not None:
            left_rows = guard(left_rows)
        for lrow in left_rows:
            key = tuple(k(lrow, env) for k in self._left_keys)
            matched = False
            if not any(part is None for part in key):
                for rrow in table.get(key, ()):
                    combined = lrow + rrow
                    if residual is None or residual(combined, env) is True:
                        out.append(combined)
                        matched = True
            if self._kind == "left" and not matched:
                out.append(lrow + pad)
        return out

    def label(self):
        base = f"HashJoin({self._kind}, keys={len(self._left_keys)})"
        if self._build_side == "left":
            base = f"HashJoin({self._kind}, keys={len(self._left_keys)}, build=left)"
        return base


class MergeJoin(Operator):
    """Sort-merge equi-join on a single key pair (System B's vertical
    partition reconstruction uses the storage-level variant; this one backs
    SQL joins when both inputs are pre-sorted or small)."""

    def __init__(self, left, right, left_key, right_key, residual=None):
        self.children = (left, right)
        self._left_key = left_key
        self._right_key = right_key
        self._residual = residual

    def _merge_key(self, fn, row, env):
        """Join key with SQL NULL semantics: a NULL (or a composite key
        with a NULL part) matches nothing, so it normalises to None —
        which also keeps composite keys with NULL parts sortable.  NaN
        gets the same treatment: compare_values ranks it "equal" to
        everything, so letting it into a merge run would glue unrelated
        keys together."""
        key = fn(row, env)
        if key is None:
            return None
        if isinstance(key, tuple):
            if any(part is None or part != part for part in key):
                return None
        elif key != key:  # NaN
            return None
        return key

    def execute(self, env):
        left_key, right_key = self._left_key, self._right_key
        left_rows = sorted(
            self.children[0].rows(env),
            key=lambda r: _sort_token(self._merge_key(left_key, r, env)),
        )
        right_rows = sorted(
            self.children[1].rows(env),
            key=lambda r: _sort_token(self._merge_key(right_key, r, env)),
        )
        out = []
        residual = self._residual
        check = getattr(env, "check", None)
        steps = 0
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            steps += 1
            if check is not None and steps % 4096 == 0:
                check()
            lkey = self._merge_key(left_key, left_rows[i], env)
            rkey = self._merge_key(right_key, right_rows[j], env)
            # NULL keys join nothing; skip their runs on BOTH inputs
            # (NULLs sort last, so these rows tail each side)
            if lkey is None:
                i += 1
                continue
            if rkey is None:
                j += 1
                continue
            cmp = compare_values(lkey, rkey)
            if cmp < 0:
                i += 1
            elif cmp > 0:
                j += 1
            else:
                # gather the equal runs; starting past the current row
                # guarantees progress even for keys (NaN) that compare
                # "equal" to everything but unequal to themselves
                i_end = i + 1
                while i_end < len(left_rows):
                    key = self._merge_key(left_key, left_rows[i_end], env)
                    if key is None or compare_values(key, lkey) != 0:
                        break
                    i_end += 1
                j_end = j + 1
                while j_end < len(right_rows):
                    key = self._merge_key(right_key, right_rows[j_end], env)
                    if key is None or compare_values(key, rkey) != 0:
                        break
                    j_end += 1
                for li in range(i, i_end):
                    for rj in range(j, j_end):
                        combined = left_rows[li] + right_rows[rj]
                        if residual is None or residual(combined, env) is True:
                            out.append(combined)
                i, j = i_end, j_end
        return out

    def label(self):
        return "MergeJoin"


class Aggregate(Operator):
    """Hash aggregation.

    ``key_exprs`` run on input rows; ``accumulators`` is a list of
    (function_name, argument_expr, distinct).  Output rows are
    ``group_key_values + aggregate_values``.
    """

    def __init__(self, child, key_exprs, accumulators, global_agg=False):
        self.children = (child,)
        self._key_exprs = key_exprs
        self._accumulators = accumulators
        self._global_agg = global_agg

    def execute(self, env):
        groups = {}
        key_exprs = self._key_exprs
        specs = self._accumulators
        rows = self.children[0].rows(env)
        guard = getattr(env, "guard_iter", None)
        if guard is not None:
            rows = guard(rows)
        for row in rows:
            key = tuple(k(row, env) for k in key_exprs)
            state = groups.get(key)
            if state is None:
                state = [_AggState(func, distinct) for func, _arg, distinct in specs]
                groups[key] = state
            for acc, (func, arg, _distinct) in zip(state, specs):
                acc.add(arg(row, env) if arg is not None else 1)
        if not groups and self._global_agg:
            state = [_AggState(func, distinct) for func, _arg, distinct in specs]
            groups[()] = state
        out = []
        for key, state in groups.items():
            out.append(key + tuple(acc.result() for acc in state))
        return out

    def label(self):
        funcs = ",".join(func for func, _a, _d in self._accumulators)
        return f"Aggregate(keys={len(self._key_exprs)}, [{funcs}])"


class _AggState:
    __slots__ = ("func", "distinct", "count", "total", "extreme", "seen")

    def __init__(self, func, distinct):
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total = None
        self.extreme = None
        self.seen = set() if distinct else None

    def add(self, value):
        if value is None:
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "min":
            self.extreme = value if self.extreme is None else min(self.extreme, value)
        elif self.func == "max":
            self.extreme = value if self.extreme is None else max(self.extreme, value)

    def result(self):
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return None if self.count == 0 else self.total / self.count
        return self.extreme


class Sort(Operator):
    def __init__(self, child, key_fns, descending_flags):
        self.children = (child,)
        self._key_fns = key_fns
        self._descending = descending_flags

    def execute(self, env):
        out = list(self.children[0].rows(env))
        # stable multi-key sort: apply keys right-to-left; key extraction is
        # the long part, so poll the context once per key pass
        check = getattr(env, "check", None)
        for key_fn, descending in reversed(list(zip(self._key_fns, self._descending))):
            if check is not None:
                check()
            out.sort(key=lambda r: _sort_token(key_fn(r, env)), reverse=descending)
        return out

    def label(self):
        return f"Sort(keys={len(self._key_fns)})"


class Limit(Operator):
    def __init__(self, child, limit_fn, offset_fn=None):
        self.children = (child,)
        self._limit_fn = limit_fn
        self._offset_fn = offset_fn

    def execute(self, env):
        out = self.children[0].rows(env)
        start = int(self._offset_fn((), env)) if self._offset_fn else 0
        count = int(self._limit_fn((), env))
        return out[start:start + count]

    def label(self):
        return "Limit"


class Distinct(Operator):
    def __init__(self, child):
        self.children = (child,)

    def execute(self, env):
        seen = set()
        out = []
        rows = self.children[0].rows(env)
        guard = getattr(env, "guard_iter", None)
        if guard is not None:
            rows = guard(rows)
        for row in rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out


class Union(Operator):
    def __init__(self, left, right, all_rows=False):
        self.children = (left, right)
        self._all = all_rows

    def execute(self, env):
        out = list(self.children[0].rows(env)) + list(self.children[1].rows(env))
        if self._all:
            return out
        seen = set()
        deduped = []
        rows = out
        guard = getattr(env, "guard_iter", None)
        if guard is not None:
            rows = guard(rows)
        for row in rows:
            if row not in seen:
                seen.add(row)
                deduped.append(row)
        return deduped

    def label(self):
        return "UnionAll" if self._all else "Union"


class _SortToken:
    """Wrap values so None sorts last and mixed runs don't TypeError."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return compare_values(self.value, other.value) < 0

    def __eq__(self, other):
        return compare_values(self.value, other.value) == 0


def _sort_token(value):
    return _SortToken(value)
