"""Physical operators over chunked row-batches.

Every operator is a node with ``execute_batches(env) -> list[Batch]`` and
an ``explain(indent)`` rendering.  Batches flow through the whole tree:
scans hand over column-store slices without per-row tuple construction,
filters apply chunk-wise selection masks, and projections build output
columns vectorized — with a per-row fallback wherever an expression is
not vectorizable (correlated subqueries, CASE).  Operators still
materialise their full outputs — the engine is an analytics engine over
in-memory partitions, and materialising keeps hash joins and sorts
simple while preserving the *relative* costs the benchmark needs (scans
linear in partition size, index probes logarithmic, extra joins visibly
expensive).

``batches`` is a thin dispatcher: subclasses implement
``execute_batches(env)``, and when the env is an
:class:`~repro.engine.plan.context.ExecutionContext` the call routes
through it, which enforces the cooperative deadline and records
per-operator counters for ``EXPLAIN ANALYZE``.  With a plain ``Env`` the
dispatcher adds one ``getattr`` and nothing else.  ``rows(env)`` /
``execute(env)`` are the row-level boundary: they materialise the
batches into one fresh ``list[tuple]`` for the session/DBAPI surface
(and for tests that predate the batch protocol).

Deadline polling happens at batch granularity inside batch loops, and
per-row (``guard_iter``) only on the row-at-a-time fallback paths.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..batch import (
    Batch,
    batch_size,
    batches_from_rows,
    rows_from_batches,
    vectorized_enabled,
)
from ..expr import Env
from ..types import compare_values


class Operator:
    """Base class: a physical plan node."""

    #: child operators, for explain trees
    children: Sequence["Operator"] = ()

    #: estimated output rows, stamped during lowering (None = not priced);
    #: EXPLAIN renders it next to actuals so mis-estimates stay visible
    est_rows: Optional[int] = None

    def batches(self, env: Env) -> List[Batch]:
        # ExecutionContext exposes run_operator; a plain Env does not.
        runner = getattr(env, "run_operator", None)
        if runner is not None:
            return runner(self)
        return self.execute_batches(env)

    def rows(self, env: Env) -> List[tuple]:
        """Row-level boundary: the operator's output as one fresh list."""
        return rows_from_batches(self.batches(env))

    def execute(self, env: Env) -> List[tuple]:
        """Row-level execution without context dispatch (always a fresh
        list, so callers may mutate the result freely)."""
        return rows_from_batches(self.execute_batches(env))

    def execute_batches(self, env: Env) -> List[Batch]:
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    def metrics_detail(self) -> str:
        """Extra per-execution detail for EXPLAIN ANALYZE (e.g. the
        index-vs-scan decision an access path took)."""
        return ""

    def explain(self, indent=0) -> str:
        text = self.label()
        if self.est_rows is not None:
            text += f" (est rows={self.est_rows})"
        lines = ["  " * indent + text]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class TableAccess(Operator):
    """Scan or index access over one table (built by plan.access).

    Accepts either a :class:`~repro.engine.plan.access.TableAccessPlan`
    (preferred — its run-time decisions feed EXPLAIN ANALYZE and it
    yields column-store batches directly) or a bare producer callable.
    """

    def __init__(self, access, description: str):
        if callable(access) and not hasattr(access, "rows"):
            self.access_plan = None
            self._producer = access
        else:
            self.access_plan = access
            self._producer = access.rows
        self._description = description

    def execute_batches(self, env):
        if self.access_plan is not None:
            return self.access_plan.batches(env)
        return batches_from_rows(self._producer(env))

    def label(self):
        return self._description

    def metrics_detail(self):
        plan = self.access_plan
        if plan is None or not plan.decisions:
            return ""
        bits = []
        for decision in plan.decisions:
            bit = f"{decision.partition}: {decision.strategy}"
            if decision.index_name:
                bit += f"[{decision.index_name}]"
            bits.append(bit)
        return "; ".join(bits)


class Materialized(Operator):
    """Wrap an already-computed row list (derived tables, CTE-style reuse)."""

    def __init__(self, rows_value: List[tuple], description="Materialized"):
        self._rows = rows_value
        self._description = description

    def execute_batches(self, env):
        # the chunks are fresh lists: consumers sort/extend result lists
        # in place, and handing out the backing list would corrupt every
        # later reuse
        return batches_from_rows(self._rows)

    def label(self):
        return f"{self._description} ({len(self._rows)} rows)"


class EmptyScan(Operator):
    """A relation the rewrite proved empty (contradictory constraints).

    Never touches storage: the constraint-pruning rule replaced the
    original access path after the interval domain showed its constraint
    intersection is empty, so execution is a constant no-op.
    """

    def __init__(self, description="EmptyScan"):
        self._description = description

    def execute_batches(self, env):
        return []

    def label(self):
        return self._description


class Subplan(Operator):
    """Defer to a planner-produced callable (derived tables, subqueries)."""

    def __init__(self, producer: Callable[[Env], List[tuple]], description: str):
        self._producer = producer
        self._description = description

    def execute_batches(self, env):
        return batches_from_rows(self._producer(env))

    def label(self):
        return self._description


class VirtualScan(Operator):
    """A ``repro_stat_*`` system view materialised from live engine state.

    The producer snapshots the introspection counters at execution time —
    every execution (cached plan or not) sees the current state, like a
    ``pg_stat_*`` relation.
    """

    def __init__(self, producer: Callable[[], List[tuple]], description: str):
        self._producer = producer
        self._description = description

    def execute_batches(self, env):
        return batches_from_rows(self._producer())

    def label(self):
        return self._description


class Filter(Operator):
    def __init__(self, child: Operator, predicate, description="Filter",
                 batch_predicate=None):
        self.children = (child,)
        self._predicate = predicate
        self._batch_predicate = batch_predicate
        self._description = description

    def execute_batches(self, env):
        out: List[Batch] = []
        batch_predicate = (
            self._batch_predicate if vectorized_enabled() else None
        )
        if batch_predicate is not None:
            check = getattr(env, "check", None)
            for batch in self.children[0].batches(env):
                if check is not None:
                    check()
                values = batch_predicate(batch, env)
                selected = [i for i, value in enumerate(values) if value is True]
                if len(selected) == batch.length:
                    out.append(batch)
                elif selected:
                    out.append(batch.take(selected))
            return out
        predicate = self._predicate
        guard = getattr(env, "guard_iter", None)
        for batch in self.children[0].batches(env):
            rows = batch.to_rows()
            if guard is not None:
                rows = guard(rows)
            kept = [row for row in rows if predicate(row, env) is True]
            if kept:
                out.append(Batch.from_rows(kept, batch.width))
        return out

    def label(self):
        return self._description


class Project(Operator):
    def __init__(self, child: Operator, exprs, description="Project",
                 batch_exprs=None):
        self.children = (child,)
        self._exprs = exprs
        self._batch_exprs = batch_exprs
        self._description = description

    def execute_batches(self, env):
        out: List[Batch] = []
        batch_exprs = self._batch_exprs if vectorized_enabled() else None
        if batch_exprs is not None:
            check = getattr(env, "check", None)
            exprs = self._exprs
            for batch in self.children[0].batches(env):
                if check is not None:
                    check()
                columns = []
                rows = None
                for batch_fn, row_fn in zip(batch_exprs, exprs):
                    if batch_fn is not None:
                        columns.append(batch_fn(batch, env))
                    else:  # per-row fallback for this output column only
                        if rows is None:
                            rows = batch.to_rows()
                        columns.append([row_fn(row, env) for row in rows])
                out.append(Batch.from_columns(columns, batch.length))
            return out
        exprs = self._exprs
        guard = getattr(env, "guard_iter", None)
        for batch in self.children[0].batches(env):
            rows = batch.to_rows()
            if guard is not None:
                rows = guard(rows)
            projected = [tuple(e(row, env) for e in exprs) for row in rows]
            if projected:
                out.append(Batch.from_rows(projected, len(exprs)))
        return out

    def label(self):
        return self._description


class CrossJoin(Operator):
    def __init__(self, left: Operator, right: Operator):
        self.children = (left, right)

    def execute_batches(self, env):
        left_rows = self.children[0].rows(env)
        right_rows = self.children[1].rows(env)
        guard = getattr(env, "guard_iter", None)
        if guard is not None:
            # poll often on the outer side: each step emits len(right) rows
            left_rows = guard(left_rows, 256)
        size = batch_size()
        out: List[Batch] = []
        chunk: List[tuple] = []
        for lrow in left_rows:
            chunk.extend(lrow + rrow for rrow in right_rows)
            if len(chunk) >= size:
                out.append(Batch.from_rows(chunk))
                chunk = []
        if chunk:
            out.append(Batch.from_rows(chunk))
        return out

    def label(self):
        return "CrossJoin"


class NestedLoopJoin(Operator):
    """Inner/left join with an arbitrary predicate."""

    def __init__(self, left, right, predicate, kind="inner", right_width=0):
        self.children = (left, right)
        self._predicate = predicate
        self._kind = kind
        self._right_width = right_width

    def execute_batches(self, env):
        left_rows = self.children[0].rows(env)
        right_rows = self.children[1].rows(env)
        guard = getattr(env, "guard_iter", None)
        if guard is not None:
            # poll often on the outer side: each step scans the inner input
            left_rows = guard(left_rows, 256)
        predicate = self._predicate
        size = batch_size()
        out: List[Batch] = []
        chunk: List[tuple] = []
        pad = (None,) * self._right_width
        for lrow in left_rows:
            matched = False
            for rrow in right_rows:
                combined = lrow + rrow
                if predicate is None or predicate(combined, env) is True:
                    chunk.append(combined)
                    matched = True
            if self._kind == "left" and not matched:
                chunk.append(lrow + pad)
            if len(chunk) >= size:
                out.append(Batch.from_rows(chunk))
                chunk = []
        if chunk:
            out.append(Batch.from_rows(chunk))
        return out

    def label(self):
        return f"NestedLoopJoin({self._kind})"


def _batch_join_keys(batch, env, batch_fns, row_fns):
    """Per-row key tuples for one input batch of a hash join.

    ``batch_fns`` (when supplied by the planner) computes each key part
    over the whole batch; any part that is not vectorizable falls back
    to its per-row closure.
    """
    if batch_fns is not None:
        columns = []
        rows = None
        for batch_fn, row_fn in zip(batch_fns, row_fns):
            if batch_fn is not None:
                columns.append(batch_fn(batch, env))
            else:
                if rows is None:
                    rows = batch.to_rows()
                columns.append([row_fn(row, env) for row in rows])
        if columns:
            return list(zip(*columns))
        return [()] * batch.length
    return [
        tuple(k(row, env) for k in row_fns) for row in batch.to_rows()
    ]


class HashJoin(Operator):
    """Equi-join.  Builds the hash table on the right input by default;
    cost-based planning may request ``build_side="left"`` for inner joins
    when the left input is estimated cheaper (left joins always probe
    from the left so every left row can surface).  Both build and probe
    consume input batch-at-a-time, extracting key columns chunk-wise
    when the planner supplied batch key expressions."""

    def __init__(
        self,
        left,
        right,
        left_keys,   # compiled exprs over the LEFT row layout
        right_keys,  # compiled exprs over the RIGHT row layout
        residual=None,  # compiled over the combined layout
        kind="inner",
        right_width=0,
        build_side="right",
        batch_left_keys=None,
        batch_right_keys=None,
    ):
        self.children = (left, right)
        self._left_keys = left_keys
        self._right_keys = right_keys
        self._batch_left_keys = batch_left_keys
        self._batch_right_keys = batch_right_keys
        self._residual = residual
        self._kind = kind
        self._right_width = right_width
        self._build_side = build_side if kind == "inner" else "right"

    def execute_batches(self, env):
        vec = vectorized_enabled()
        batch_left_keys = self._batch_left_keys if vec else None
        batch_right_keys = self._batch_right_keys if vec else None
        residual = self._residual
        check = getattr(env, "check", None)
        size = batch_size()
        out: List[Batch] = []
        chunk: List[tuple] = []
        if self._build_side == "left":
            table = {}
            for batch in self.children[0].batches(env):
                if check is not None:
                    check()
                keys = _batch_join_keys(batch, env, batch_left_keys, self._left_keys)
                for lrow, key in zip(batch.to_rows(), keys):
                    if any(part is None for part in key):
                        continue
                    table.setdefault(key, []).append(lrow)
            for batch in self.children[1].batches(env):
                if check is not None:
                    check()
                keys = _batch_join_keys(batch, env, batch_right_keys, self._right_keys)
                for rrow, key in zip(batch.to_rows(), keys):
                    if any(part is None for part in key):
                        continue
                    for lrow in table.get(key, ()):
                        combined = lrow + rrow
                        if residual is None or residual(combined, env) is True:
                            chunk.append(combined)
                if len(chunk) >= size:
                    out.append(Batch.from_rows(chunk))
                    chunk = []
            if chunk:
                out.append(Batch.from_rows(chunk))
            return out
        table = {}
        for batch in self.children[1].batches(env):
            if check is not None:
                check()
            keys = _batch_join_keys(batch, env, batch_right_keys, self._right_keys)
            for rrow, key in zip(batch.to_rows(), keys):
                if any(part is None for part in key):
                    continue
                table.setdefault(key, []).append(rrow)
        pad = (None,) * self._right_width
        left_join = self._kind == "left"
        for batch in self.children[0].batches(env):
            if check is not None:
                check()
            keys = _batch_join_keys(batch, env, batch_left_keys, self._left_keys)
            for lrow, key in zip(batch.to_rows(), keys):
                matched = False
                if not any(part is None for part in key):
                    for rrow in table.get(key, ()):
                        combined = lrow + rrow
                        if residual is None or residual(combined, env) is True:
                            chunk.append(combined)
                            matched = True
                if left_join and not matched:
                    chunk.append(lrow + pad)
            if len(chunk) >= size:
                out.append(Batch.from_rows(chunk))
                chunk = []
        if chunk:
            out.append(Batch.from_rows(chunk))
        return out

    def label(self):
        base = f"HashJoin({self._kind}, keys={len(self._left_keys)})"
        if self._build_side == "left":
            base = f"HashJoin({self._kind}, keys={len(self._left_keys)}, build=left)"
        return base


def _normalize_merge_key(key):
    """Join key with SQL NULL semantics: a NULL (or a composite key with
    a NULL part) matches nothing, so it normalises to None — which also
    keeps composite keys with NULL parts sortable.  NaN gets the same
    treatment: compare_values ranks it "equal" to everything, so letting
    it into a merge run would glue unrelated keys together."""
    if key is None:
        return None
    if isinstance(key, tuple):
        if any(part is None or part != part for part in key):
            return None
    elif key != key:  # NaN
        return None
    return key


class MergeJoin(Operator):
    """Sort-merge equi-join on a single key pair (System B's vertical
    partition reconstruction uses the storage-level variant; this one backs
    SQL joins when both inputs are pre-sorted or small).

    Keys are extracted once per input — chunk-wise when a batch key
    expression is available — and the merge advances over the
    precomputed key arrays run-at-a-time."""

    def __init__(self, left, right, left_key, right_key, residual=None,
                 batch_left_key=None, batch_right_key=None):
        self.children = (left, right)
        self._left_key = left_key
        self._right_key = right_key
        self._batch_left_key = batch_left_key
        self._batch_right_key = batch_right_key
        self._residual = residual

    def _sorted_side(self, child, key_fn, batch_key_fn, env):
        """(rows, normalized keys) for one input, sorted by key (stable,
        NULLs last — identical order to sorting rows by the key fn)."""
        rows: List[tuple] = []
        keys: List[object] = []
        for batch in child.batches(env):
            batch_rows = batch.to_rows()
            if batch_key_fn is not None:
                raw = batch_key_fn(batch, env)
            else:
                raw = [key_fn(row, env) for row in batch_rows]
            keys.extend(_normalize_merge_key(key) for key in raw)
            rows.extend(batch_rows)
        order = sorted(range(len(rows)), key=lambda i: _SortToken(keys[i]))
        return [rows[i] for i in order], [keys[i] for i in order]

    def execute_batches(self, env):
        vec = vectorized_enabled()
        left_rows, left_keys = self._sorted_side(
            self.children[0], self._left_key,
            self._batch_left_key if vec else None, env,
        )
        right_rows, right_keys = self._sorted_side(
            self.children[1], self._right_key,
            self._batch_right_key if vec else None, env,
        )
        residual = self._residual
        check = getattr(env, "check", None)
        size = batch_size()
        out: List[Batch] = []
        chunk: List[tuple] = []
        steps = 0
        i = j = 0
        left_n, right_n = len(left_rows), len(right_rows)
        while i < left_n and j < right_n:
            steps += 1
            if check is not None and steps % 4096 == 0:
                check()
            lkey = left_keys[i]
            rkey = right_keys[j]
            # NULL keys join nothing; skip their runs on BOTH inputs
            # (NULLs sort last, so these rows tail each side)
            if lkey is None:
                i += 1
                continue
            if rkey is None:
                j += 1
                continue
            cmp = compare_values(lkey, rkey)
            if cmp < 0:
                i += 1
            elif cmp > 0:
                j += 1
            else:
                # gather the equal runs; starting past the current row
                # guarantees progress even for keys (NaN) that compare
                # "equal" to everything but unequal to themselves
                i_end = i + 1
                while i_end < left_n:
                    key = left_keys[i_end]
                    if key is None or compare_values(key, lkey) != 0:
                        break
                    i_end += 1
                j_end = j + 1
                while j_end < right_n:
                    key = right_keys[j_end]
                    if key is None or compare_values(key, rkey) != 0:
                        break
                    j_end += 1
                for li in range(i, i_end):
                    lrow = left_rows[li]
                    for rj in range(j, j_end):
                        combined = lrow + right_rows[rj]
                        if residual is None or residual(combined, env) is True:
                            chunk.append(combined)
                if len(chunk) >= size:
                    out.append(Batch.from_rows(chunk))
                    chunk = []
                i, j = i_end, j_end
        if chunk:
            out.append(Batch.from_rows(chunk))
        return out

    def label(self):
        return "MergeJoin"


class Aggregate(Operator):
    """Hash aggregation.

    ``key_exprs`` run on input rows; ``accumulators`` is a list of
    (function_name, argument_expr, distinct).  Output rows are
    ``group_key_values + aggregate_values``.  With planner-supplied
    batch expressions, group keys and aggregate arguments are computed
    chunk-wise; the group-state update itself stays per-row."""

    def __init__(self, child, key_exprs, accumulators, global_agg=False,
                 batch_keys=None, batch_args=None):
        self.children = (child,)
        self._key_exprs = key_exprs
        self._accumulators = accumulators
        self._batch_keys = batch_keys
        self._batch_args = batch_args
        self._global_agg = global_agg

    def execute_batches(self, env):
        groups = {}
        key_exprs = self._key_exprs
        specs = self._accumulators
        vec = vectorized_enabled() and self._batch_keys is not None
        if vec:
            check = getattr(env, "check", None)
            batch_args = self._batch_args or [None] * len(specs)
            for batch in self.children[0].batches(env):
                if check is not None:
                    check()
                rows = None
                key_columns = []
                for batch_fn, row_fn in zip(self._batch_keys, key_exprs):
                    if batch_fn is not None:
                        key_columns.append(batch_fn(batch, env))
                    else:
                        if rows is None:
                            rows = batch.to_rows()
                        key_columns.append([row_fn(row, env) for row in rows])
                arg_columns = []
                for batch_fn, (_func, arg, _distinct) in zip(batch_args, specs):
                    if arg is None:
                        arg_columns.append(None)
                    elif batch_fn is not None:
                        arg_columns.append(batch_fn(batch, env))
                    else:
                        if rows is None:
                            rows = batch.to_rows()
                        arg_columns.append([arg(row, env) for row in rows])
                length = batch.length
                if key_columns:
                    keys = list(zip(*key_columns))
                else:
                    keys = [()] * length
                for pos in range(length):
                    key = keys[pos]
                    state = groups.get(key)
                    if state is None:
                        state = [
                            _AggState(func, distinct)
                            for func, _arg, distinct in specs
                        ]
                        groups[key] = state
                    for acc, column in zip(state, arg_columns):
                        acc.add(column[pos] if column is not None else 1)
        else:
            guard = getattr(env, "guard_iter", None)
            for batch in self.children[0].batches(env):
                rows = batch.to_rows()
                if guard is not None:
                    rows = guard(rows)
                for row in rows:
                    key = tuple(k(row, env) for k in key_exprs)
                    state = groups.get(key)
                    if state is None:
                        state = [
                            _AggState(func, distinct)
                            for func, _arg, distinct in specs
                        ]
                        groups[key] = state
                    for acc, (func, arg, _distinct) in zip(state, specs):
                        acc.add(arg(row, env) if arg is not None else 1)
        if not groups and self._global_agg:
            state = [_AggState(func, distinct) for func, _arg, distinct in specs]
            groups[()] = state
        out = [
            key + tuple(acc.result() for acc in state)
            for key, state in groups.items()
        ]
        return [Batch.from_rows(out)] if out else []

    def label(self):
        funcs = ",".join(func for func, _a, _d in self._accumulators)
        return f"Aggregate(keys={len(self._key_exprs)}, [{funcs}])"


class _AggState:
    __slots__ = ("func", "distinct", "count", "total", "extreme", "seen")

    def __init__(self, func, distinct):
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total = None
        self.extreme = None
        self.seen = set() if distinct else None

    def add(self, value):
        if value is None:
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "min":
            self.extreme = value if self.extreme is None else min(self.extreme, value)
        elif self.func == "max":
            self.extreme = value if self.extreme is None else max(self.extreme, value)

    def result(self):
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return None if self.count == 0 else self.total / self.count
        return self.extreme


class Sort(Operator):
    def __init__(self, child, key_fns, descending_flags, batch_keys=None):
        self.children = (child,)
        self._key_fns = key_fns
        self._descending = descending_flags
        self._batch_keys = batch_keys

    def execute_batches(self, env):
        out = rows_from_batches(self.children[0].batches(env))
        if not out:
            return []
        # stable multi-key sort: apply keys right-to-left; key extraction is
        # the long part, so poll the context once per key pass
        check = getattr(env, "check", None)
        batch_keys = self._batch_keys if vectorized_enabled() else None
        if batch_keys is not None and all(k is not None for k in batch_keys):
            holder = Batch.from_rows(out)
            for batch_fn, descending in reversed(
                list(zip(batch_keys, self._descending))
            ):
                if check is not None:
                    check()
                keys = batch_fn(holder, env)
                order = sorted(
                    range(holder.length),
                    key=lambda i: _SortToken(keys[i]),
                    reverse=descending,
                )
                holder = holder.take(order)
            return [holder]
        for key_fn, descending in reversed(list(zip(self._key_fns, self._descending))):
            if check is not None:
                check()
            out.sort(key=lambda r: _sort_token(key_fn(r, env)), reverse=descending)
        return [Batch.from_rows(out)]

    def label(self):
        return f"Sort(keys={len(self._key_fns)})"


class Limit(Operator):
    def __init__(self, child, limit_fn, offset_fn=None):
        self.children = (child,)
        self._limit_fn = limit_fn
        self._offset_fn = offset_fn

    def execute_batches(self, env):
        start = int(self._offset_fn((), env)) if self._offset_fn else 0
        count = int(self._limit_fn((), env))
        end = start + count
        check = getattr(env, "check", None)
        out: List[Batch] = []
        seen = 0
        for batch in self.children[0].batches(env):
            if check is not None:
                check()
            if seen >= end:
                break
            lo = max(start - seen, 0)
            hi = min(end - seen, batch.length)
            seen += batch.length
            if lo >= hi:
                continue
            if lo == 0 and hi == batch.length:
                out.append(batch)
            else:
                out.append(batch.take(range(lo, hi)))
        return out

    def label(self):
        return "Limit"


class Distinct(Operator):
    def __init__(self, child):
        self.children = (child,)

    def execute_batches(self, env):
        seen = set()
        out: List[tuple] = []
        check = getattr(env, "check", None)
        for batch in self.children[0].batches(env):
            if check is not None:
                check()
            for row in batch.to_rows():
                if row not in seen:
                    seen.add(row)
                    out.append(row)
        return [Batch.from_rows(out)] if out else []


class Union(Operator):
    def __init__(self, left, right, all_rows=False):
        self.children = (left, right)
        self._all = all_rows

    def execute_batches(self, env):
        combined = list(self.children[0].batches(env))
        combined.extend(self.children[1].batches(env))
        if self._all:
            return combined
        seen = set()
        deduped: List[tuple] = []
        check = getattr(env, "check", None)
        for batch in combined:
            if check is not None:
                check()
            for row in batch.to_rows():
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
        return [Batch.from_rows(deduped)] if deduped else []

    def label(self):
        return "UnionAll" if self._all else "Union"


class TemporalAggregate(Operator):
    """Sweep-line temporal aggregation — SQL:2011's missing operator.

    One pass collects every version's period endpoints plus the
    pre-computed aggregate arguments; a single sweep over the sorted
    endpoint set then emits one row per constant interval: the boundary
    instant followed by the aggregate values over the versions active
    there (``begin <= t < end``).  Semantics match the self-join rewrite
    (UNION of both endpoints as the derived boundary table) byte for
    byte: boundaries come from *every* version's endpoints, only
    well-formed intervals enter the active set, and sum/avg re-accumulate
    per boundary in scan order so float results equal the rewrite's
    exactly.  Count-only aggregations skip the re-accumulation and
    maintain exact running counters, making the sweep linear in events.
    """

    def __init__(self, child, begin_fn, end_fn, accumulators,
                 batch_begin=None, batch_end=None, batch_args=None,
                 period="system_time"):
        self.children = (child,)
        self._begin_fn = begin_fn
        self._end_fn = end_fn
        self._accumulators = accumulators
        self._batch_begin = batch_begin
        self._batch_end = batch_end
        self._batch_args = batch_args
        self._period = period

    def _collect(self, env):
        """(begins, ends, per-accumulator argument columns) over the input."""
        check = getattr(env, "check", None)
        vec = vectorized_enabled()
        specs = self._accumulators
        batch_args = self._batch_args or [None] * len(specs)
        begins: List[object] = []
        ends: List[object] = []
        values: List[list] = [[] for _ in specs]
        for batch in self.children[0].batches(env):
            if check is not None:
                check()
            rows = None
            if vec and self._batch_begin is not None:
                begins.extend(self._batch_begin(batch, env))
            else:
                rows = batch.to_rows()
                begins.extend(self._begin_fn(row, env) for row in rows)
            if vec and self._batch_end is not None:
                ends.extend(self._batch_end(batch, env))
            else:
                if rows is None:
                    rows = batch.to_rows()
                ends.extend(self._end_fn(row, env) for row in rows)
            for slot, batch_fn, (_func, arg, _distinct) in zip(
                values, batch_args, specs
            ):
                if arg is None:
                    slot.extend([1] * batch.length)
                elif vec and batch_fn is not None:
                    slot.extend(batch_fn(batch, env))
                else:
                    if rows is None:
                        rows = batch.to_rows()
                    slot.extend(arg(row, env) for row in rows)
        return begins, ends, values

    def execute_batches(self, env):
        check = getattr(env, "check", None)
        begins, ends, values = self._collect(env)
        specs = self._accumulators
        # boundary set: every non-NULL/non-NaN endpoint of every version,
        # well-formed interval or not — the rewrite's derived table unions
        # both endpoint columns of the whole input
        boundaries = {v for v in begins if v is not None and v == v}
        boundaries.update(v for v in ends if v is not None and v == v)
        ordered = sorted(boundaries, key=_sort_token)
        # events: only well-formed intervals (begin < end, both non-NULL)
        # can satisfy begin <= t < end, so only they enter the active set
        starts = []
        stops = []
        for idx in range(len(begins)):
            b, e = begins[idx], ends[idx]
            if b is None or b != b or e is None or e != e:
                continue
            try:
                well_formed = b < e
            except TypeError:
                continue
            if not well_formed:
                continue
            starts.append((b, idx))
            stops.append((e, idx))
        starts.sort(key=lambda pair: _SortToken(pair[0]))
        stops.sort(key=lambda pair: _SortToken(pair[0]))
        fast_counts = None
        if specs and all(
            func == "count" and not distinct for func, _arg, distinct in specs
        ):
            fast_counts = [0] * len(specs)
        size = batch_size()
        out: List[Batch] = []
        chunk: List[tuple] = []
        active: dict = {}
        si = ei = 0
        n_starts, n_stops = len(starts), len(stops)
        steps = 0
        for t in ordered:
            steps += 1
            if check is not None and steps % 1024 == 0:
                check()
            while si < n_starts and starts[si][0] <= t:
                idx = starts[si][1]
                active[idx] = True
                if fast_counts is not None:
                    for i, column in enumerate(values):
                        if column[idx] is not None:
                            fast_counts[i] += 1
                si += 1
            while ei < n_stops and stops[ei][0] <= t:
                idx = stops[ei][1]
                if active.pop(idx, None) is not None and fast_counts is not None:
                    for i, column in enumerate(values):
                        if column[idx] is not None:
                            fast_counts[i] -= 1
                ei += 1
            if not active:
                continue  # inner-join rewrite emits no empty groups
            if fast_counts is not None:
                chunk.append((t,) + tuple(fast_counts))
            else:
                # re-accumulate in scan order: float sums then equal the
                # rewrite's per-group accumulation bit for bit
                states = [
                    _AggState(func, distinct) for func, _arg, distinct in specs
                ]
                for idx in sorted(active):
                    for acc, column in zip(states, values):
                        acc.add(column[idx])
                chunk.append((t,) + tuple(acc.result() for acc in states))
            if len(chunk) >= size:
                out.append(Batch.from_rows(chunk))
                chunk = []
        if chunk:
            out.append(Batch.from_rows(chunk))
        return out

    def label(self):
        funcs = ",".join(func for func, _a, _d in self._accumulators)
        return f"TemporalAggregate({self._period}, [{funcs}])"


class TemporalAlignJoin(Operator):
    """Period-align temporal join: equal-key runs merged by period start.

    Replaces the inequality-pair rewrite ``a.begin < b.end AND b.begin <
    a.end`` (a nested-loop shape) with a sort-merge: both inputs are
    grouped by their equality keys, each run is sorted by period begin,
    and a single interleaved pass keeps per-side active lists — an
    arriving interval pairs with every opposite-side interval that is
    still open, then joins the active list itself.  Output rows are
    ``left + right + (overlap_begin, overlap_end)`` with the intersected
    period appended.

    NULL/NaN handling mirrors :func:`_normalize_merge_key` (the PR 5
    MergeJoin NaN fix): a NULL or NaN equality key matches nothing, and a
    NULL/NaN period bound fails every overlap comparison, so such rows
    are dropped during collection instead of poisoning run detection.
    """

    def __init__(self, left, right, left_keys, right_keys,
                 left_begin, left_end, right_begin, right_end,
                 period="system_time"):
        self.children = (left, right)
        self._left_keys = left_keys
        self._right_keys = right_keys
        self._left_begin = left_begin
        self._left_end = left_end
        self._right_begin = right_begin
        self._right_end = right_end
        self._period = period

    def _collect(self, child, key_fns, begin_fn, end_fn, env):
        """(key, begin, end, row) entries, dropping rows that can never
        join (NULL/NaN key part or period bound)."""
        check = getattr(env, "check", None)
        entries = []
        for batch in child.batches(env):
            if check is not None:
                check()
            for row in batch.to_rows():
                key = _normalize_merge_key(
                    tuple(fn(row, env) for fn in key_fns)
                )
                if key is None:
                    continue
                b = begin_fn(row, env)
                e = end_fn(row, env)
                if b is None or b != b or e is None or e != e:
                    continue
                entries.append((key, b, e, row))
        return entries

    def execute_batches(self, env):
        check = getattr(env, "check", None)
        left = self._collect(
            self.children[0], self._left_keys,
            self._left_begin, self._left_end, env,
        )
        right = self._collect(
            self.children[1], self._right_keys,
            self._right_begin, self._right_end, env,
        )
        left_groups: dict = {}
        for entry in left:
            left_groups.setdefault(entry[0], []).append(entry)
        right_groups: dict = {}
        for entry in right:
            right_groups.setdefault(entry[0], []).append(entry)
        size = batch_size()
        out: List[Batch] = []
        chunk: List[tuple] = []
        steps = 0
        for key, lrun in left_groups.items():
            rrun = right_groups.get(key)
            if rrun is None:
                continue
            lrun = sorted(lrun, key=lambda entry: _SortToken(entry[1]))
            rrun = sorted(rrun, key=lambda entry: _SortToken(entry[1]))
            ln, rn = len(lrun), len(rrun)
            li = ri = 0
            active_left: List[tuple] = []   # (begin, end, row), begin asc
            active_right: List[tuple] = []
            while li < ln or ri < rn:
                steps += 1
                if check is not None and steps % 4096 == 0:
                    check()
                from_left = ri >= rn or (
                    li < ln
                    and compare_values(lrun[li][1], rrun[ri][1]) <= 0
                )
                if from_left:
                    _key, b, e, row = lrun[li]
                    li += 1
                    kept = []
                    for yb, ye, yrow in active_right:
                        if ye <= b:
                            continue  # closed before this arrival: purge
                        kept.append((yb, ye, yrow))
                        if yb < e:
                            chunk.append(
                                row + yrow + (max(b, yb), min(e, ye))
                            )
                    active_right = kept
                    active_left.append((b, e, row))
                else:
                    _key, b, e, row = rrun[ri]
                    ri += 1
                    kept = []
                    for yb, ye, yrow in active_left:
                        if ye <= b:
                            continue
                        kept.append((yb, ye, yrow))
                        if yb < e:
                            chunk.append(
                                yrow + row + (max(b, yb), min(e, ye))
                            )
                    active_left = kept
                    active_right.append((b, e, row))
                if len(chunk) >= size:
                    out.append(Batch.from_rows(chunk))
                    chunk = []
        if chunk:
            out.append(Batch.from_rows(chunk))
        return out

    def label(self):
        return (
            f"TemporalAlignJoin({self._period}, keys={len(self._left_keys)})"
        )


class _SortToken:
    """Wrap values so None sorts last and mixed runs don't TypeError."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return compare_values(self.value, other.value) < 0

    def __eq__(self, other):
        return compare_values(self.value, other.value) == 0


def _sort_token(value):
    return _SortToken(value)
