"""The query planner: AST → physical operator tree.

Planning follows the rewrite-based approach the paper found in every
commercial system (§5.9: *"all of these systems utilize only standard
storage and query processing techniques"*):

1. temporal table clauses are rewritten into partition choices plus
   ordinary predicates on the period columns (:mod:`.access`);
2. WHERE conjuncts are pushed down to single-table filters and equi-join
   edges; a greedy size-ordered heuristic picks the join order and uses
   hash joins for equi-edges, nested loops otherwise;
3. aggregation, having, distinct, order and limit are stacked on top.

A :class:`PlannedQuery` is reusable across executions with different
parameters — access paths re-decide scan-vs-index at run time from the
parameter values.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..catalog import TableSchema
from ..errors import NotSupportedError, PlanError, ProgrammingError
from ..expr import Env, Scope, compile_expr, expr_to_string
from ..sql import ast
from ..types import END_OF_TIME
from . import operators as ops
from .access import ColumnConstraint, TableAccessPlan, TemporalBounds

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def split_conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    """Flatten a predicate into its AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[ast.Expr]) -> Optional[ast.Expr]:
    result = None
    for conjunct in conjuncts:
        result = conjunct if result is None else ast.Binary("and", result, conjunct)
    return result


def _collect_column_refs(node) -> List[ast.ColumnRef]:
    refs = []
    _walk_with_subqueries(node, refs)
    return refs


def _walk_with_subqueries(node, refs):
    if node is None:
        return
    for sub in ast.walk_expr(node):
        if isinstance(sub, ast.ColumnRef):
            refs.append(sub)
        elif isinstance(sub, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
            _walk_select(sub.subquery, refs)


def _walk_select(select: ast.Select, refs):
    for item in select.items:
        _walk_with_subqueries(item.expr, refs)
    _walk_with_subqueries(select.where, refs)
    for expr in select.group_by:
        _walk_with_subqueries(expr, refs)
    _walk_with_subqueries(select.having, refs)
    for item in select.order_by:
        _walk_with_subqueries(item.expr, refs)
    for from_item in select.from_items:
        _walk_from(from_item, refs)
    if select.set_op is not None:
        _walk_select(select.set_op[1], refs)


def _walk_from(item, refs):
    if isinstance(item, ast.Join):
        _walk_from(item.left, refs)
        _walk_from(item.right, refs)
        _walk_with_subqueries(item.on, refs)
    elif isinstance(item, ast.DerivedTable):
        _walk_select(item.select, refs)
    elif isinstance(item, ast.TableRef):
        for clause in item.temporal:
            _walk_with_subqueries(clause.low, refs)
            _walk_with_subqueries(clause.high, refs)


def _item_bindings(item) -> set:
    """All bindings introduced by one FROM item (joins included)."""
    if isinstance(item, ast.Join):
        return _item_bindings(item.left) | _item_bindings(item.right)
    return {item.binding}


def _expr_key(expr, scope: Scope) -> str:
    """Structural key for matching group-by expressions (scope-resolved)."""
    if isinstance(expr, ast.ColumnRef):
        try:
            depth, slot = scope.resolve(expr)
            return f"@{depth}.{slot}"
        except ProgrammingError:
            return f"?{expr}"
    if isinstance(expr, ast.Binary):
        return f"({_expr_key(expr.left, scope)}{expr.op}{_expr_key(expr.right, scope)})"
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{_expr_key(expr.operand, scope)})"
    if isinstance(expr, ast.FuncCall):
        inner = ",".join(_expr_key(a, scope) for a in expr.args)
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.Aggregate):
        inner = "*" if expr.arg is None else _expr_key(expr.arg, scope)
        return f"{expr.func}{'~d' if expr.distinct else ''}({inner})"
    return expr_to_string(expr)


# ---------------------------------------------------------------------------
# planned relations
# ---------------------------------------------------------------------------


class _Relation:
    """A planned FROM unit: an operator plus its row layout."""

    def __init__(self, op: ops.Operator, layout, bindings: Set[str], est_rows: int):
        self.op = op
        self.layout = layout            # list of (binding, column)
        self.bindings = bindings
        self.est_rows = est_rows


class PlannedQuery:
    """Executable plan: call :meth:`rows` with an Env."""

    def __init__(self, op: ops.Operator, column_names: List[str]):
        self.op = op
        self.column_names = column_names

    def rows(self, env: Env) -> List[tuple]:
        return self.op.rows(env)

    def explain(self) -> str:
        return self.op.explain()


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------


class Planner:
    def __init__(self, db):
        self.db = db
        self.profile = db.profile

    # -- entry points ---------------------------------------------------------

    def plan_select(self, select: ast.Select, outer_scope: Optional[Scope] = None) -> PlannedQuery:
        op, layout, names = self._plan_select(select, outer_scope)
        return PlannedQuery(op, names)

    # -- select planning ---------------------------------------------------------

    def _plan_select(self, select: ast.Select, outer_scope):
        if select.set_op is not None:
            return self._plan_union(select, outer_scope)
        return self._plan_core(select, outer_scope)

    def _plan_union(self, select, outer_scope):
        op_name, rhs, all_flag = select.set_op
        left_core = ast.Select(
            items=select.items,
            from_items=select.from_items,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            distinct=select.distinct,
        )
        left_op, left_layout, left_names = self._plan_core(left_core, outer_scope)
        right_op, _right_layout, _right_names = self._plan_select(rhs, outer_scope)
        union = ops.Union(left_op, right_op, all_rows=all_flag)
        out_layout = [("", name) for name in left_names]
        op = union
        if select.order_by:
            op = self._order_on_output(op, select.order_by, left_names, outer_scope)
        op = self._apply_limit(op, select, outer_scope)
        return op, out_layout, left_names

    def _plan_core(self, select: ast.Select, outer_scope):
        # 1. FROM -------------------------------------------------------------
        where_conjuncts = split_conjuncts(select.where)
        consumed: Set[int] = set()
        referenced = self._referenced_columns(select)
        if select.from_items:
            relation, scope = self._plan_from(
                select.from_items, where_conjuncts, outer_scope, referenced, consumed
            )
            source_op = relation.op
            source_layout = relation.layout
        else:
            source_op = ops.Materialized([()], "SingleRow")
            source_layout = []
            scope = Scope([], outer=outer_scope)
            if where_conjuncts:
                predicate = self._compile(conjoin(where_conjuncts), scope)
                source_op = ops.Filter(source_op, predicate, "Filter(no-from)")
            where_conjuncts = []

        # 2. residual WHERE (multi-table / non-pushable conjuncts) ---------------
        residual = [c for c in where_conjuncts if id(c) not in consumed]
        if residual:
            predicate = self._compile(conjoin(residual), scope)
            source_op = ops.Filter(source_op, predicate, "Filter(where)")

        # 3. expand stars in the select list --------------------------------------
        items = self._expand_stars(select.items, source_layout)
        original_items = list(items)  # output names come from the un-rewritten list

        # 4. aggregation --------------------------------------------------------
        has_aggregates = (
            bool(select.group_by)
            or any(ast.contains_aggregate(item.expr) for item in items)
            or (select.having is not None and ast.contains_aggregate(select.having))
        )
        if has_aggregates:
            pre_op, pre_scope, rewritten_items, rewritten_having, rewrite = (
                self._plan_aggregation(select, items, source_op, scope, outer_scope)
            )
            if rewritten_having is not None:
                predicate = self._compile(rewritten_having, pre_scope)
                pre_op = ops.Filter(pre_op, predicate, "Filter(having)")
            items = rewritten_items
            order_rewrite = rewrite
        else:
            pre_op, pre_scope = source_op, scope
            order_rewrite = None
            if select.having is not None:
                predicate = self._compile(select.having, pre_scope)
                pre_op = ops.Filter(pre_op, predicate, "Filter(having)")

        # 5. projection / distinct / order / limit ---------------------------------
        out_names = self._output_names(original_items)
        item_fns = [self._compile(item.expr, pre_scope) for item in items]
        final = _Finalize(
            pre_op,
            item_fns,
            distinct=select.distinct,
            sort_specs=self._sort_specs(
                select.order_by, items, out_names, pre_scope, order_rewrite
            ),
            limit_fn=self._compile(select.limit, Scope([], outer=outer_scope))
            if select.limit is not None
            else None,
            offset_fn=self._compile(select.offset, Scope([], outer=outer_scope))
            if select.offset is not None
            else None,
        )
        out_layout = [("", name) for name in out_names]
        return final, out_layout, out_names

    # -- FROM planning -------------------------------------------------------------

    def _plan_from(self, from_items, where_conjuncts, outer_scope, referenced, consumed):
        all_bindings = set()
        for item in from_items:
            all_bindings |= _item_bindings(item)
        units = [
            self._plan_from_item(
                item, outer_scope, referenced, where_conjuncts, consumed, all_bindings
            )
            for item in from_items
        ]
        if len(units) == 1:
            unit = units[0]
            return unit, Scope(unit.layout, outer=outer_scope)

        # classify remaining where conjuncts into join edges
        edges = []  # (bindings_set, conjunct)
        for conjunct in where_conjuncts:
            if id(conjunct) in consumed:
                continue
            bindings = self._conjunct_bindings(conjunct, units)
            if bindings is not None and len(bindings) >= 2:
                edges.append((bindings, conjunct))
                consumed.add(id(conjunct))

        joined = self._greedy_join(units, edges, outer_scope)
        return joined, Scope(joined.layout, outer=outer_scope)

    def _conjunct_bindings(self, conjunct, units) -> Optional[Set[str]]:
        """Bindings (among *units*) referenced by a conjunct, or None if it
        also references something none of the units can resolve."""
        all_bindings = set()
        for unit in units:
            all_bindings |= unit.bindings
        found = set()
        for ref in _collect_column_refs(conjunct):
            if ref.table is not None:
                if ref.table in all_bindings:
                    found.add(ref.table)
            else:
                owner = self._binding_of_unqualified(ref.name, units)
                if owner is not None:
                    found.add(owner)
        return found

    def _binding_of_unqualified(self, name, units) -> Optional[str]:
        owners = []
        for unit in units:
            for binding, column in unit.layout:
                if column == name:
                    owners.append(binding)
        if len(owners) == 1:
            return owners[0]
        return None

    def _greedy_join(self, units: List[_Relation], edges, outer_scope) -> _Relation:
        remaining = sorted(units, key=lambda u: u.est_rows)
        current = remaining.pop(0)
        pending_edges = list(edges)
        while remaining:
            # find a unit connected to `current` through at least one edge
            chosen = None
            for candidate in remaining:
                combined = current.bindings | candidate.bindings
                if any(b <= combined and (b & candidate.bindings) and (b & current.bindings) for b, _c in pending_edges):
                    chosen = candidate
                    break
            if chosen is None:
                chosen = remaining[0]
            remaining.remove(chosen)
            applicable = []
            combined = current.bindings | chosen.bindings
            for b, conjunct in pending_edges:
                if b <= combined:
                    applicable.append(conjunct)
            pending_edges = [
                (b, c) for b, c in pending_edges if c not in applicable
            ]
            current = self._build_join(current, chosen, applicable, "inner", outer_scope)
        if pending_edges:
            # edges that never became applicable (shouldn't happen) – filter
            scope = Scope(current.layout, outer=outer_scope)
            predicate = self._compile(conjoin([c for _b, c in pending_edges]), scope)
            current = _Relation(
                ops.Filter(current.op, predicate, "Filter(join-residual)"),
                current.layout,
                current.bindings,
                current.est_rows,
            )
        return current

    def _build_join(self, left: _Relation, right: _Relation, conjuncts, kind, outer_scope) -> _Relation:
        combined_layout = left.layout + right.layout
        combined_bindings = left.bindings | right.bindings
        left_scope = Scope(left.layout, outer=outer_scope)
        right_scope = Scope(right.layout, outer=outer_scope)
        combined_scope = Scope(combined_layout, outer=outer_scope)

        left_keys, right_keys, residual = [], [], []
        for conjunct in conjuncts:
            pair = self._equi_key(conjunct, left_scope, right_scope)
            if pair is not None:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
            else:
                residual.append(conjunct)
        residual_fn = (
            self._compile(conjoin(residual), combined_scope) if residual else None
        )
        est = max(1, (left.est_rows * right.est_rows) // max(left.est_rows, right.est_rows, 1))
        if left_keys:
            op = ops.HashJoin(
                left.op,
                right.op,
                left_keys,
                right_keys,
                residual=residual_fn,
                kind=kind,
                right_width=len(right.layout),
            )
        elif residual_fn is not None or kind == "left":
            op = ops.NestedLoopJoin(
                left.op, right.op, residual_fn, kind=kind, right_width=len(right.layout)
            )
            est = max(left.est_rows, right.est_rows)
        else:
            op = ops.CrossJoin(left.op, right.op)
            est = left.est_rows * max(right.est_rows, 1)
        return _Relation(op, combined_layout, combined_bindings, est)

    def _equi_key(self, conjunct, left_scope, right_scope):
        """If *conjunct* is ``left_col = right_col`` across the two sides,
        return compiled key extractors (left_fn, right_fn)."""
        if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="):
            return None
        for first, second in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
            try:
                left_fn = compile_expr(first, Scope(left_scope.layout))
            except ProgrammingError:
                continue
            try:
                right_fn = compile_expr(second, Scope(right_scope.layout))
            except ProgrammingError:
                continue
            return (left_fn, right_fn)
        return None

    def _plan_from_item(self, item, outer_scope, referenced, where_conjuncts, consumed, all_bindings=frozenset()) -> _Relation:
        if isinstance(item, ast.TableRef):
            return self._plan_table_ref(
                item, outer_scope, referenced, where_conjuncts, consumed, all_bindings
            )
        if isinstance(item, ast.DerivedTable):
            sub_op, _layout, names = self._plan_select(item.select, None)
            layout = [(item.alias, name) for name in names]
            cache_key = id(item)

            def produce(env, _op=sub_op, _key=cache_key):
                cached = env.cache.get(_key)
                if cached is None:
                    cached = _op.rows(env)
                    env.cache[_key] = cached
                return cached

            op = ops.Subplan(produce, f"Derived({item.alias})")
            op.children = (sub_op,)
            return _Relation(op, layout, {item.alias}, 1000)
        if isinstance(item, ast.Join):
            left = self._plan_from_item(item.left, outer_scope, referenced, where_conjuncts, consumed, all_bindings)
            right = self._plan_from_item(item.right, outer_scope, referenced, where_conjuncts, consumed, all_bindings)
            conjuncts = split_conjuncts(item.on)
            return self._build_join(left, right, conjuncts, item.kind if item.kind != "cross" else "inner", outer_scope)
        raise PlanError(f"cannot plan FROM item {item!r}")

    def _plan_table_ref(self, ref: ast.TableRef, outer_scope, referenced, where_conjuncts, consumed, all_bindings=frozenset()) -> _Relation:
        view = getattr(self.db, "view", lambda _n: None)(ref.name)
        if view is not None:
            if ref.temporal:
                raise ProgrammingError(
                    f"temporal clauses are not supported on view {ref.name!r}"
                )
            derived = ast.DerivedTable(view, ref.binding)
            return self._plan_from_item(
                derived, outer_scope, referenced, where_conjuncts, consumed,
                all_bindings,
            )
        table = self.db.table(ref.name)
        schema = table.schema
        binding = ref.binding
        layout = [(binding, column) for column in schema.column_names()]
        scope = Scope(layout, outer=outer_scope)

        temporal_filters, has_system_clause = self._resolve_temporal(
            ref, schema, outer_scope
        )

        # which partitions must be read?
        if not table.is_versioned:
            partitions = [table.current_partition_name()]
        elif not table.has_split:
            partitions = [table.current_partition_name()]
            if not has_system_clause:
                # System D "current" semantics: filter open versions by value
                period = schema.system_period
                temporal_filters.append(
                    TemporalBounds(
                        period.begin_column,
                        period.end_column,
                        "overlap",
                        low=lambda env: END_OF_TIME - 1,
                        high=lambda env: END_OF_TIME,
                    )
                )
        elif has_system_clause:
            # Fig 6: explicit system time always unions in the history
            # partition (no optimizer prunes it), unless the profile opts in.
            partitions = [table.current_partition_name(), "history"]
        else:
            partitions = [table.current_partition_name()]

        # sargable single-table conjuncts -> access constraints + pushed filter
        constraints: List[ColumnConstraint] = []
        pushed: List[ast.Expr] = []
        for conjunct in where_conjuncts:
            if id(conjunct) in consumed:
                continue
            if not self._only_references(
                conjunct, binding, schema, all_bindings, outer_scope
            ):
                continue
            consumed.add(id(conjunct))
            pushed.append(conjunct)
            constraint = self._to_constraint(conjunct, binding, schema, scope, outer_scope)
            if constraint is not None:
                constraints.append(constraint)

        need_temporal = self._needs_temporal(
            schema, binding, referenced, has_system_clause, table
        )

        access = TableAccessPlan(
            table,
            self.profile,
            partitions,
            temporal_filters,
            constraints,
            need_temporal,
        )
        description = (
            f"Access({schema.name} as {binding}, partitions={partitions}, "
            f"temporal={len(temporal_filters)})"
        )
        op: ops.Operator = ops.TableAccess(access.rows, description)
        if pushed:
            predicate = self._compile(conjoin(pushed), scope)
            op = ops.Filter(op, predicate, f"Filter({binding})")
        est = table.current_count() + (
            table.history_count() if (has_system_clause and table.has_split) else 0
        )
        return _Relation(op, layout, {binding}, max(1, est))

    def _resolve_temporal(self, ref, schema: TableSchema, outer_scope):
        filters: List[TemporalBounds] = []
        has_system = False
        for clause in ref.temporal:
            period = self._resolve_period(schema, clause.period)
            if period.is_system:
                has_system = True
                if not self.profile.supports_system_time:
                    raise NotSupportedError(
                        f"{self.profile.name} has no system-time support"
                    )
            low_fn = self._const_fn(clause.low, outer_scope)
            high_fn = self._const_fn(clause.high, outer_scope)
            if clause.mode == "all":
                bounds = TemporalBounds(
                    period.begin_column, period.end_column, "all"
                )
            elif clause.mode == "as_of":
                bounds = TemporalBounds(
                    period.begin_column, period.end_column, "as_of", low=low_fn
                )
            elif clause.mode == "from_to":
                bounds = TemporalBounds(
                    period.begin_column, period.end_column, "overlap",
                    low=low_fn, high=high_fn,
                )
            else:  # between: inclusive upper bound
                bounds = TemporalBounds(
                    period.begin_column, period.end_column, "overlap",
                    low=low_fn,
                    high=(lambda env, fn=high_fn: fn(env) + 1),
                )
            filters.append(bounds)
        return filters, has_system

    def _resolve_period(self, schema: TableSchema, name: str):
        if name == "system_time":
            period = schema.system_period
            if period is None:
                raise ProgrammingError(
                    f"table {schema.name} has no system-time period"
                )
            return period
        if name == "business_time":
            app = schema.application_periods
            if not app:
                raise ProgrammingError(
                    f"table {schema.name} has no application-time period"
                )
            return app[0]
        return schema.period(name)

    def _const_fn(self, expr, outer_scope):
        """Compile an expression with no local columns into fn(env)."""
        if expr is None:
            return None
        fn = compile_expr(expr, Scope([], outer=outer_scope))
        return lambda env: fn((), env)

    def _only_references(
        self, conjunct, binding, schema, all_bindings=frozenset(), outer_scope=None
    ) -> bool:
        """True if every column in *conjunct* belongs to *binding*; references
        that resolve only in an enclosing query behave like constants, while
        references to sibling FROM units disqualify the conjunct."""
        has_local = False
        for ref in _collect_column_refs(conjunct):
            if ref.table == binding:
                has_local = True
            elif ref.table is None and schema.has_column(ref.name):
                has_local = True
            elif ref.table is not None and ref.table not in all_bindings:
                # qualified with something that is not a sibling: a
                # correlation column from an enclosing query, if it resolves
                if outer_scope is None:
                    return False
                try:
                    outer_scope.resolve(ref)
                except ProgrammingError:
                    return False
            else:
                return False
        # subquery-bearing predicates are never pushed into access paths
        for node in ast.walk_expr(conjunct):
            if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
                return False
        return has_local

    def _to_constraint(self, conjunct, binding, schema, scope, outer_scope):
        """Turn a pushed conjunct into a ColumnConstraint when sargable."""
        if isinstance(conjunct, ast.Between):
            column = self._local_column(conjunct.operand, binding, schema)
            if column is None:
                return None
            low_fn = self._value_fn(conjunct.low, outer_scope)
            high_fn = self._value_fn(conjunct.high, outer_scope)
            if low_fn is None or high_fn is None or conjunct.negated:
                return None
            return ColumnConstraint(column, "between", low=low_fn, high=high_fn)
        if not isinstance(conjunct, ast.Binary):
            return None
        op = conjunct.op
        if op not in ("=", "<", "<=", ">", ">="):
            return None
        column = self._local_column(conjunct.left, binding, schema)
        value_expr = conjunct.right
        if column is None:
            column = self._local_column(conjunct.right, binding, schema)
            value_expr = conjunct.left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if column is None:
            return None
        value_fn = self._value_fn(value_expr, outer_scope)
        if value_fn is None:
            return None
        if op == "=":
            return ColumnConstraint(column, "=", low=value_fn, high=value_fn)
        if op in ("<", "<="):
            return ColumnConstraint(column, op, high=value_fn)
        return ColumnConstraint(column, op, low=value_fn)

    def _local_column(self, expr, binding, schema) -> Optional[str]:
        if isinstance(expr, ast.ColumnRef):
            if expr.table == binding and schema.has_column(expr.name):
                return expr.name
            if expr.table is None and schema.has_column(expr.name):
                return expr.name
        return None

    def _value_fn(self, expr, outer_scope):
        """Compile a value-side expression (constants, params, outer refs)."""
        try:
            fn = compile_expr(expr, Scope([], outer=outer_scope))
        except ProgrammingError:
            return None
        return lambda env: fn((), env)

    def _needs_temporal(self, schema, binding, referenced, has_system_clause, table):
        if not table.is_versioned:
            return False
        if has_system_clause:
            return True
        if not table.has_split:
            return True  # the implicit-current filter reads sys_end
        period = schema.system_period
        sys_cols = {period.begin_column, period.end_column}
        for ref_binding, name in referenced:
            if name in sys_cols and ref_binding in (binding, None):
                return True
        return False

    def _referenced_columns(self, select) -> List[Tuple[Optional[str], str]]:
        refs = []
        _walk_select(select, refs)
        out = []
        for ref in refs:
            out.append((ref.table, ref.name))
        # stars reference everything
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                out.append((item.expr.table, "*"))
        return out

    # -- aggregation -----------------------------------------------------------

    def _plan_aggregation(self, select, items, source_op, scope, outer_scope):
        group_keys = list(select.group_by)
        key_fns = [self._compile(expr, scope) for expr in group_keys]
        key_ids = [_expr_key(expr, scope) for expr in group_keys]

        aggregates: List[ast.Aggregate] = []
        agg_ids: List[str] = []

        def register(agg: ast.Aggregate) -> int:
            agg_id = _expr_key(agg, scope)
            if agg_id in agg_ids:
                return agg_ids.index(agg_id)
            agg_ids.append(agg_id)
            aggregates.append(agg)
            return len(aggregates) - 1

        def rewrite(expr):
            if expr is None:
                return None
            expr_id = _expr_key(expr, scope)
            for i, key_id in enumerate(key_ids):
                if expr_id == key_id:
                    return ast.ColumnRef(f"__g{i}", table="__agg")
            if isinstance(expr, ast.Aggregate):
                idx = register(expr)
                return ast.ColumnRef(f"__a{idx}", table="__agg")
            return _rebuild(expr, rewrite)

        rewritten_items = [
            ast.SelectItem(rewrite(item.expr), item.alias) for item in items
        ]
        rewritten_having = rewrite(select.having) if select.having is not None else None

        accumulators = []
        for agg in aggregates:
            arg_fn = (
                self._compile(agg.arg, scope) if agg.arg is not None else None
            )
            accumulators.append((agg.func, arg_fn, agg.distinct))

        agg_op = ops.Aggregate(
            source_op, key_fns, accumulators, global_agg=not group_keys
        )
        post_layout = [("__agg", f"__g{i}") for i in range(len(group_keys))] + [
            ("__agg", f"__a{i}") for i in range(len(aggregates))
        ]
        post_scope = Scope(post_layout, outer=outer_scope)
        return agg_op, post_scope, rewritten_items, rewritten_having, rewrite

    # -- projection / ordering ------------------------------------------------------

    def _expand_stars(self, items, source_layout):
        out = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for binding, column in source_layout:
                    if item.expr.table is None or item.expr.table == binding:
                        out.append(
                            ast.SelectItem(ast.ColumnRef(column, table=binding), None)
                        )
            else:
                out.append(item)
        if not out:
            raise ProgrammingError("empty select list after star expansion")
        return out

    def _output_names(self, items) -> List[str]:
        names = []
        for index, item in enumerate(items):
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ast.ColumnRef):
                names.append(item.expr.name)
            else:
                names.append(f"col{index}")
        return names

    def _sort_specs(self, order_by, items, out_names, pre_scope, order_rewrite):
        """Each spec is ('out', slot, desc) or ('pre', fn, desc)."""
        specs = []
        for order_item in order_by:
            expr = order_item.expr
            desc = not order_item.ascending
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                slot = expr.value - 1
                if not (0 <= slot < len(out_names)):
                    raise ProgrammingError(f"ORDER BY position {expr.value} out of range")
                specs.append(("out", slot, desc))
                continue
            if isinstance(expr, ast.ColumnRef) and expr.table is None and expr.name in out_names:
                specs.append(("out", out_names.index(expr.name), desc))
                continue
            target = order_rewrite(expr) if order_rewrite is not None else expr
            fn = self._compile(target, pre_scope)
            specs.append(("pre", fn, desc))
        return specs

    def _order_on_output(self, op, order_by, out_names, outer_scope):
        key_fns = []
        descending = []
        for order_item in order_by:
            expr = order_item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                slot = expr.value - 1
            elif isinstance(expr, ast.ColumnRef) and expr.name in out_names:
                slot = out_names.index(expr.name)
            else:
                raise ProgrammingError(
                    "ORDER BY after UNION must reference output columns"
                )
            key_fns.append(lambda row, env, s=slot: row[s])
            descending.append(not order_item.ascending)
        return ops.Sort(op, key_fns, descending)

    def _apply_limit(self, op, select, outer_scope):
        if select.limit is None:
            return op
        limit_fn = self._compile(select.limit, Scope([], outer=outer_scope))
        offset_fn = (
            self._compile(select.offset, Scope([], outer=outer_scope))
            if select.offset is not None
            else None
        )
        return ops.Limit(op, limit_fn, offset_fn)

    # -- expression compilation with subquery support ------------------------------

    def _compile(self, expr, scope):
        if expr is None:
            return None
        return compile_expr(expr, scope, self._subquery_compiler)

    def _subquery_compiler(self, select: ast.Select, scope: Scope):
        planned = self.plan_select(select, outer_scope=scope)
        # uncorrelated subqueries (those that also plan with no outer scope)
        # are cached per statement execution
        correlated = True
        try:
            self.plan_select(select, outer_scope=None)
            correlated = False
        except (ProgrammingError, PlanError):
            correlated = True
        cache_key = id(planned)

        def run(env: Env):
            if not correlated:
                cached = env.cache.get(cache_key)
                if cached is None:
                    cached = planned.rows(env)
                    env.cache[cache_key] = cached
                return cached
            return planned.rows(env)

        return run


class _Finalize(ops.Operator):
    """Projection + distinct + order + limit in one node.

    Keeps (pre_row, out_row) pairs so ORDER BY can reference either the
    projected output (aliases, positions) or the pre-projection row
    (arbitrary expressions), as SQL requires.
    """

    def __init__(self, child, item_fns, distinct, sort_specs, limit_fn, offset_fn):
        self.children = (child,)
        self._item_fns = item_fns
        self._distinct = distinct
        self._sort_specs = sort_specs
        self._limit_fn = limit_fn
        self._offset_fn = offset_fn

    def rows(self, env):
        item_fns = self._item_fns
        pairs = []
        for pre_row in self.children[0].rows(env):
            out_row = tuple(fn(pre_row, env) for fn in item_fns)
            pairs.append((pre_row, out_row))
        if self._distinct:
            seen = set()
            deduped = []
            for pair in pairs:
                if pair[1] not in seen:
                    seen.add(pair[1])
                    deduped.append(pair)
            pairs = deduped
        for spec in reversed(self._sort_specs):
            kind, key, desc = spec
            if kind == "out":
                pairs.sort(
                    key=lambda pair: ops._sort_token(pair[1][key]), reverse=desc
                )
            else:
                pairs.sort(
                    key=lambda pair: ops._sort_token(key(pair[0], env)), reverse=desc
                )
        out = [pair[1] for pair in pairs]
        if self._limit_fn is not None:
            start = int(self._offset_fn((), env)) if self._offset_fn else 0
            out = out[start:start + int(self._limit_fn((), env))]
        return out

    def label(self):
        bits = [f"Project({len(self._item_fns)})"]
        if self._distinct:
            bits.append("distinct")
        if self._sort_specs:
            bits.append(f"sort={len(self._sort_specs)}")
        if self._limit_fn is not None:
            bits.append("limit")
        return "Finalize[" + ", ".join(bits) + "]"


def _rebuild(expr, rewrite):
    """Rebuild an expression node with rewritten children."""
    if isinstance(expr, ast.Binary):
        return ast.Binary(expr.op, rewrite(expr.left), rewrite(expr.right))
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, rewrite(expr.operand))
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(expr.name, tuple(rewrite(a) for a in expr.args))
    if isinstance(expr, ast.Case):
        return ast.Case(
            tuple((rewrite(c), rewrite(r)) for c, r in expr.branches),
            rewrite(expr.default) if expr.default is not None else None,
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            rewrite(expr.operand), rewrite(expr.low), rewrite(expr.high), expr.negated
        )
    if isinstance(expr, ast.Like):
        return ast.Like(rewrite(expr.operand), rewrite(expr.pattern), expr.negated)
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(rewrite(expr.operand), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(
            rewrite(expr.operand), tuple(rewrite(i) for i in expr.items), expr.negated
        )
    # literals, params, column refs, subqueries: returned unchanged
    return expr
