"""The query planner: AST → logical plan → rewrites → physical operators.

Planning follows the rewrite-based approach the paper found in every
commercial system (§5.9: *"all of these systems utilize only standard
storage and query processing techniques"*), now staged explicitly:

1. :func:`~.logical.build_logical` turns the FROM/WHERE part of a SELECT
   core into a small relational IR (scans with temporal clauses, derived
   tables, joins, filters);
2. :func:`~.rewrite.rewrite_logical` applies the profile's rule set —
   constant folding, predicate pushdown (single-table conjuncts onto scans,
   multi-table conjuncts into the join-edge pool) and greedy size-ordered
   join-order selection;
3. physical lowering (this module) turns the rewritten IR into operators:
   temporal clauses become partition choices plus period predicates
   (:mod:`.access`), equi-edges become hash joins, the rest nested loops;
4. aggregation, having, distinct, order and limit are stacked on top.

A :class:`PlannedQuery` is reusable across executions with different
parameters — access paths re-decide scan-vs-index at run time from the
parameter values.  It also records which catalog objects it depends on
(``dependencies``: name → catalog version at plan time), which the plan
cache uses for targeted invalidation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..batch import batches_from_rows, vectorized_enabled
from ..catalog import TableSchema
from ..errors import NotSupportedError, PlanError, ProgrammingError
from ..expr import Env, Scope, compile_batch_expr, compile_expr, expr_to_string
from ..sql import ast
from ..types import END_OF_TIME
from . import cost
from . import operators as ops
from .access import ColumnConstraint, TableAccessPlan, TemporalBounds
from .logical import (  # noqa: F401 - split_conjuncts/conjoin re-exported
    LogicalAlignJoin,
    LogicalDerived,
    LogicalEmpty,
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalProduct,
    LogicalQuery,
    LogicalScan,
    LogicalTemporalAggregate,
    LogicalValues,
    LogicalVirtualScan,
    build_logical,
    conjoin,
    rebuild_expr,
    scans_in_order,
    split_conjuncts,
    unit_layout,
)
from .rewrite import rewrite_logical

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _expr_key(expr, scope: Scope) -> str:
    """Structural key for matching group-by expressions (scope-resolved)."""
    if isinstance(expr, ast.ColumnRef):
        try:
            depth, slot = scope.resolve(expr)
            return f"@{depth}.{slot}"
        except ProgrammingError:
            return f"?{expr}"
    if isinstance(expr, ast.Binary):
        return f"({_expr_key(expr.left, scope)}{expr.op}{_expr_key(expr.right, scope)})"
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{_expr_key(expr.operand, scope)})"
    if isinstance(expr, ast.FuncCall):
        inner = ",".join(_expr_key(a, scope) for a in expr.args)
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.Aggregate):
        inner = "*" if expr.arg is None else _expr_key(expr.arg, scope)
        return f"{expr.func}{'~d' if expr.distinct else ''}({inner})"
    return expr_to_string(expr)


# ---------------------------------------------------------------------------
# planned relations
# ---------------------------------------------------------------------------


def _fill_estimates(op: ops.Operator):
    """Give every operator an ``est_rows`` so EXPLAIN annotates each node.

    Lowering stamps the nodes it can price (scans, joins, aggregates,
    finalize); anything left unstamped inherits the largest child
    estimate — a pass-through guess, but it keeps mis-estimates visible
    next to actuals in EXPLAIN ANALYZE.
    """
    for child in op.children:
        _fill_estimates(child)
    if getattr(op, "est_rows", None) is None:
        child_ests = [
            child.est_rows for child in op.children if child.est_rows is not None
        ]
        op.est_rows = max(child_ests) if child_ests else 1


class _Relation:
    """A planned FROM unit: an operator plus its row layout."""

    def __init__(
        self,
        op: ops.Operator,
        layout,
        bindings: Set[str],
        est_rows: int,
        stats_backed: bool = False,
    ):
        self.op = op
        self.layout = layout            # list of (binding, column)
        self.bindings = bindings
        self.est_rows = est_rows
        #: True when est_rows came from an ANALYZE snapshot (directly or
        #: through a join over one); gates the hash-join build-side swap
        self.stats_backed = stats_backed


def _format_bytes(value: int) -> str:
    """Human-readable byte count for EXPLAIN ANALYZE (``ws≈12.3KB``)."""
    size = float(value)
    for unit in ("B", "KB", "MB", "GB"):
        if size < 1024.0 or unit == "GB":
            if unit == "B":
                return f"{int(size)}B"
            return f"{size:.1f}{unit}"
        size /= 1024.0
    return f"{int(value)}B"


class PlannedQuery:
    """Executable plan: call :meth:`rows` with an Env or ExecutionContext."""

    def __init__(
        self,
        op: ops.Operator,
        column_names: List[str],
        dependencies: Optional[Dict[str, int]] = None,
        logical: Optional[LogicalQuery] = None,
        subplans: Optional[List["PlannedQuery"]] = None,
    ):
        self.op = op
        self.column_names = column_names
        #: catalog object name -> catalog version at plan time
        self.dependencies: Dict[str, int] = dependencies or {}
        #: the rewritten logical plan of the root SELECT core (None for
        #: set-operation roots, whose branches each have their own)
        self.logical = logical
        #: plans of expression-level subqueries (IN/EXISTS/scalar), which are
        #: compiled into closures and so are not children of ``op``
        self.subplans: List["PlannedQuery"] = subplans or []
        #: global catalog version at last dependency validation (maintained
        #: by the session's plan cache so unchanged catalogs skip the checks)
        self.checked_at_version = -1

    def rows(self, env: Env) -> List[tuple]:
        return self.op.rows(env)

    def explain(self) -> str:
        return self.op.explain()

    def explain_analyze(self, metrics) -> str:
        """Render the operator tree annotated with executed counters.

        Expression-level subqueries render as ``SubPlan`` sections; their
        ``loops`` count shows how often correlation re-ran them.
        """
        lines = self._analyze_lines(self.op, metrics, 0)
        for number, subplan in enumerate(self.subplans, start=1):
            lines.append(f"SubPlan {number}")
            lines.extend(subplan._analyze_lines(subplan.op, metrics, 1))
        return "\n".join(lines)

    def _analyze_lines(self, op, metrics, indent) -> List[str]:
        node = metrics.get(id(op))
        prefix = "  " * indent
        est = getattr(op, "est_rows", None)
        est_note = "" if est is None else f"est rows={est} "
        if node is None:
            lines = [f"{prefix}{op.label()} ({est_note}never executed)"]
        else:
            line = (
                f"{prefix}{op.label()} ({est_note}actual rows={node.rows} "
                f"loops={node.calls} batches={node.batches} "
                f"ws≈{_format_bytes(node.ws_bytes)} "
                f"time={node.time_s * 1000.0:.3f} ms)"
            )
            if node.detail:
                line += f" [{node.detail}]"
            lines = [line]
        for child in op.children:
            lines.extend(self._analyze_lines(child, metrics, indent + 1))
        return lines


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------


class Planner:
    def __init__(self, db):
        self.db = db
        self.profile = db.profile
        # root-scoped bookkeeping for the outermost plan_select in flight
        self._dependencies: Optional[Dict[str, int]] = None
        self._subplans: Optional[List[PlannedQuery]] = None
        self._root_select = None
        self._root_logical: Optional[LogicalQuery] = None

    # -- entry points ---------------------------------------------------------

    def plan_select(self, select: ast.Select, outer_scope: Optional[Scope] = None) -> PlannedQuery:
        if self._dependencies is None:
            self._dependencies = {}
            self._subplans = []
            self._root_select = select
            self._root_logical = None
            try:
                op, _layout, names = self._plan_select(select, outer_scope)
                _fill_estimates(op)
                deps = dict(self._dependencies)
                subplans = list(self._subplans)
                logical = self._root_logical
            finally:
                self._dependencies = None
                self._subplans = None
                self._root_select = None
                self._root_logical = None
            return PlannedQuery(
                op, names, dependencies=deps, logical=logical, subplans=subplans
            )
        # nested planning (subqueries, views) feeds the root's dependency set
        op, _layout, names = self._plan_select(select, outer_scope)
        _fill_estimates(op)
        return PlannedQuery(op, names)

    def logical_plan(
        self, select: ast.Select, outer_scope: Optional[Scope] = None
    ) -> LogicalQuery:
        """Build and rewrite the logical plan of one SELECT core."""
        tracer = getattr(self.db, "tracer", None)
        if tracer is None or not tracer.active:
            query = build_logical(select, self.db)
            return rewrite_logical(query, self.db, self.profile, outer_scope)
        with tracer.span("plan.analyze"):
            query = build_logical(select, self.db)
        with tracer.span("plan.rewrite"):
            return rewrite_logical(query, self.db, self.profile, outer_scope)

    def _note_dependency(self, name: str):
        if self._dependencies is not None:
            key = name.lower()
            if key not in self._dependencies:
                self._dependencies[key] = self.db.catalog.version_of(key)

    # -- select planning ---------------------------------------------------------

    def _plan_select(self, select: ast.Select, outer_scope):
        if select.set_op is not None:
            return self._plan_union(select, outer_scope)
        return self._plan_core(select, outer_scope)

    def _plan_union(self, select, outer_scope):
        op_name, rhs, all_flag = select.set_op
        left_core = ast.Select(
            items=select.items,
            from_items=select.from_items,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            distinct=select.distinct,
        )
        left_op, left_layout, left_names = self._plan_core(left_core, outer_scope)
        right_op, _right_layout, _right_names = self._plan_select(rhs, outer_scope)
        union = ops.Union(left_op, right_op, all_rows=all_flag)
        out_layout = [("", name) for name in left_names]
        op = union
        if select.order_by:
            op = self._order_on_output(op, select.order_by, left_names, outer_scope)
        op = self._apply_limit(op, select, outer_scope)
        return op, out_layout, left_names

    def _plan_core(self, select: ast.Select, outer_scope):
        # stages 1+2: AST -> logical IR -> rewritten IR
        query = self.logical_plan(select, outer_scope)
        if select is self._root_select:
            self._root_logical = query
        # stage 3: physical lowering
        tracer = getattr(self.db, "tracer", None)
        if tracer is None or not tracer.active:
            return self._lower_query(query, outer_scope)
        with tracer.span("plan.physical"):
            return self._lower_query(query, outer_scope)

    # -- physical lowering ------------------------------------------------------

    def _lower_query(self, query: LogicalQuery, outer_scope):
        select = query.select
        relation = self._lower_relation(query.relation, outer_scope, query.referenced)
        source_op = relation.op
        source_layout = relation.layout
        scope = Scope(source_layout, outer=outer_scope)

        # expand stars in the select list ------------------------------------
        items = self._expand_stars(select.items, source_layout)
        original_items = list(items)  # output names come from the un-rewritten list

        # aggregation --------------------------------------------------------
        has_aggregates = (
            bool(select.group_by)
            or any(ast.contains_aggregate(item.expr) for item in items)
            or (select.having is not None and ast.contains_aggregate(select.having))
        )
        if has_aggregates:
            pre_op, pre_scope, rewritten_items, rewritten_having, rewrite = (
                self._plan_aggregation(select, items, source_op, scope, outer_scope)
            )
            agg_est = (
                1
                if not select.group_by
                else max(1, int(relation.est_rows * cost.GROUP_SELECTIVITY))
            )
            pre_op.est_rows = agg_est
            if rewritten_having is not None:
                predicate = self._compile(rewritten_having, pre_scope)
                pre_op = ops.Filter(
                    pre_op,
                    predicate,
                    "Filter(having)",
                    batch_predicate=self._compile_batch(rewritten_having, pre_scope),
                )
                pre_op.est_rows = agg_est
            items = rewritten_items
            order_rewrite = rewrite
        else:
            pre_op, pre_scope = source_op, scope
            order_rewrite = None
            if select.having is not None:
                predicate = self._compile(select.having, pre_scope)
                pre_op = ops.Filter(
                    pre_op,
                    predicate,
                    "Filter(having)",
                    batch_predicate=self._compile_batch(select.having, pre_scope),
                )

        # projection / distinct / order / limit ------------------------------
        out_names = self._output_names(original_items)
        item_fns = [self._compile(item.expr, pre_scope) for item in items]
        final = _Finalize(
            pre_op,
            item_fns,
            batch_item_fns=[
                self._compile_batch(item.expr, pre_scope) for item in items
            ],
            distinct=select.distinct,
            sort_specs=self._sort_specs(
                select.order_by, items, out_names, pre_scope, order_rewrite
            ),
            limit_fn=self._compile(select.limit, Scope([], outer=outer_scope))
            if select.limit is not None
            else None,
            offset_fn=self._compile(select.offset, Scope([], outer=outer_scope))
            if select.offset is not None
            else None,
        )
        if isinstance(select.limit, ast.Literal) and isinstance(select.limit.value, int):
            source_est = getattr(pre_op, "est_rows", None) or relation.est_rows
            final.est_rows = max(0, min(source_est, select.limit.value))
        out_layout = [("", name) for name in out_names]
        return final, out_layout, out_names

    def _lower_relation(self, node: LogicalNode, outer_scope, referenced) -> _Relation:
        if isinstance(node, LogicalValues):
            return _Relation(ops.Materialized([()], "SingleRow"), [], set(), 1)
        if isinstance(node, LogicalScan):
            return self._lower_scan(node, outer_scope, referenced)
        if isinstance(node, LogicalDerived):
            return self._lower_derived(node)
        if isinstance(node, LogicalVirtualScan):
            return self._lower_virtual_scan(node)
        if isinstance(node, LogicalJoin):
            left = self._lower_relation(node.left, outer_scope, referenced)
            right = self._lower_relation(node.right, outer_scope, referenced)
            return self._build_join(
                left,
                right,
                list(node.conjuncts),
                node.kind,
                outer_scope,
                est_hint=node.est_hint,
            )
        if isinstance(node, LogicalAlignJoin):
            return self._lower_align_join(node, outer_scope, referenced)
        if isinstance(node, LogicalTemporalAggregate):
            return self._lower_temporal_aggregate(node, outer_scope, referenced)
        if isinstance(node, LogicalFilter):
            relation = self._lower_relation(node.child, outer_scope, referenced)
            scope = Scope(relation.layout, outer=outer_scope)
            predicate = self._compile(node.predicate, scope)
            filter_op = ops.Filter(
                relation.op,
                predicate,
                f"Filter({node.label})",
                batch_predicate=self._compile_batch(node.predicate, scope),
            )
            filter_op.est_rows = relation.est_rows
            return _Relation(
                filter_op,
                relation.layout,
                relation.bindings,
                relation.est_rows,
                stats_backed=relation.stats_backed,
            )
        if isinstance(node, LogicalEmpty):
            return self._lower_empty(node)
        if isinstance(node, LogicalProduct):
            raise PlanError("join-order selection left a Product node unlowered")
        raise PlanError(f"cannot lower logical node {node!r}")

    def _lower_empty(self, node: LogicalEmpty) -> _Relation:
        """A subtree the rewrite proved empty: a zero-row operator with the
        original subtree's layout.  The plan still depends on every table
        the pruned subtree would have read — DDL must invalidate it."""
        for scan in scans_in_order(node.child):
            self._note_dependency(scan.ref.name)
        op = ops.EmptyScan(f"EmptyScan({node.reason})")
        op.est_rows = 0
        return _Relation(op, unit_layout(node.child), set(node.bindings), 0)

    def _lower_derived(self, node: LogicalDerived) -> _Relation:
        if node.view_name is not None:
            self._note_dependency(node.view_name)
        sub_op, _layout, names = self._plan_select(node.select, None)
        layout = [(node.alias, name) for name in names]
        cache_key = id(node)

        def produce(env, _op=sub_op, _key=cache_key):
            cached = env.cache.get(_key)
            if cached is None:
                cached = _op.rows(env)
                env.cache[_key] = cached
            return cached

        op = ops.Subplan(produce, f"Derived({node.alias})")
        op.children = (sub_op,)
        return _Relation(op, layout, {node.alias}, 1000)

    def _lower_virtual_scan(self, node: LogicalVirtualScan) -> _Relation:
        """Lower a ``repro_stat_*`` system view to a VirtualScan operator.

        The dependency note is recorded for uniformity; system views have
        no catalog version (``version_of`` stays 0), so cached plans over
        them never invalidate — correct, since the *rows* are assembled
        fresh on every execution."""
        self._note_dependency(node.view_name)
        db = self.db
        view_name = node.view_name

        def produce(_db=db, _name=view_name):
            return _db.system_view_rows(_name)

        op = ops.VirtualScan(produce, f"VirtualScan({view_name})")
        op.est_rows = node.est_rows
        layout = [(node.alias, column) for column in node.columns]
        return _Relation(op, layout, {node.alias}, node.est_rows)

    def _lower_scan(self, node: LogicalScan, outer_scope, referenced) -> _Relation:
        ref = node.ref
        self._note_dependency(ref.name)
        table = self.db.table(ref.name)
        schema = table.schema
        binding = node.binding
        layout = [(binding, column) for column in schema.column_names()]
        scope = Scope(layout, outer=outer_scope)

        temporal_filters, has_system_clause = self._resolve_temporal(
            ref, schema, outer_scope
        )

        # which partitions must be read?
        if not table.is_versioned:
            partitions = [table.current_partition_name()]
        elif not table.has_split:
            partitions = [table.current_partition_name()]
            if not has_system_clause:
                # System D "current" semantics: filter open versions by value
                period = schema.system_period
                temporal_filters.append(
                    TemporalBounds(
                        period.begin_column,
                        period.end_column,
                        "overlap",
                        low=lambda env: END_OF_TIME - 1,
                        high=lambda env: END_OF_TIME,
                    )
                )
        elif has_system_clause:
            # Fig 6: explicit system time always unions in the history
            # partition (no optimizer prunes it), unless the profile opts in.
            partitions = [table.current_partition_name(), "history"]
        else:
            partitions = [table.current_partition_name()]

        # pushed conjuncts (assigned by the rewrite pass) -> access constraints
        pushed = list(node.pushed)
        constraints: List[ColumnConstraint] = []
        for conjunct in pushed:
            constraint = self._to_constraint(conjunct, binding, schema, scope, outer_scope)
            if constraint is not None:
                constraints.append(constraint)

        need_temporal = self._needs_temporal(
            schema, binding, referenced, has_system_clause, table
        )

        access = TableAccessPlan(
            table,
            self.profile,
            partitions,
            temporal_filters,
            constraints,
            need_temporal,
        )
        description = (
            f"Access({schema.name} as {binding}, partitions={partitions}, "
            f"temporal={len(temporal_filters)})"
        )
        # node.est_rows carries the partition-count heuristic from
        # build_logical, or a refined per-partition selectivity estimate
        # when the rewrite pass found a valid ANALYZE snapshot
        est = max(1, node.est_rows)
        stats_backed = node.est_source == "stats"
        raw_est = table.current_count() + (
            table.history_count() if (has_system_clause and table.has_split) else 0
        )
        op: ops.Operator = ops.TableAccess(access, description)
        if pushed:
            # the access node shows the pre-filter partition estimate
            op.est_rows = max(1, raw_est)
            pushed_expr = conjoin(pushed)
            predicate = self._compile(pushed_expr, scope)
            op = ops.Filter(
                op,
                predicate,
                f"Filter({binding})",
                batch_predicate=self._compile_batch(pushed_expr, scope),
            )
        op.est_rows = est
        return _Relation(op, layout, {binding}, est, stats_backed=stats_backed)

    # -- joins -----------------------------------------------------------------

    def _build_join(
        self, left: _Relation, right: _Relation, conjuncts, kind, outer_scope,
        est_hint: Optional[int] = None,
    ) -> _Relation:
        combined_layout = left.layout + right.layout
        combined_bindings = left.bindings | right.bindings
        stats_backed = left.stats_backed or right.stats_backed
        left_scope = Scope(left.layout, outer=outer_scope)
        right_scope = Scope(right.layout, outer=outer_scope)
        combined_scope = Scope(combined_layout, outer=outer_scope)

        left_keys, right_keys, residual = [], [], []
        batch_left_keys, batch_right_keys = [], []
        for conjunct in conjuncts:
            pair = self._equi_key(conjunct, left_scope, right_scope)
            if pair is not None:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
                batch_left_keys.append(pair[2])
                batch_right_keys.append(pair[3])
            else:
                residual.append(conjunct)
        residual_fn = (
            self._compile(conjoin(residual), combined_scope) if residual else None
        )
        est = max(1, (left.est_rows * right.est_rows) // max(left.est_rows, right.est_rows, 1))
        if left_keys:
            # With statistics-backed estimates, build the hash table on the
            # cheaper input.  Left joins must keep probe=left (every left
            # row must surface), and without statistics the historical
            # build=right layout is preserved byte-for-byte.
            build_side = "right"
            if kind == "inner" and stats_backed and left.est_rows < right.est_rows:
                build_side = "left"
            op = ops.HashJoin(
                left.op,
                right.op,
                left_keys,
                right_keys,
                residual=residual_fn,
                kind=kind,
                right_width=len(right.layout),
                build_side=build_side,
                batch_left_keys=batch_left_keys,
                batch_right_keys=batch_right_keys,
            )
        elif residual_fn is not None or kind == "left":
            op = ops.NestedLoopJoin(
                left.op, right.op, residual_fn, kind=kind, right_width=len(right.layout)
            )
            est = max(left.est_rows, right.est_rows)
        else:
            op = ops.CrossJoin(left.op, right.op)
            est = left.est_rows * max(right.est_rows, 1)
        if est_hint is not None:
            est = max(1, est_hint)
        op.est_rows = est
        return _Relation(
            op, combined_layout, combined_bindings, est, stats_backed=stats_backed
        )

    def _lower_temporal_aggregate(
        self, node: LogicalTemporalAggregate, outer_scope, referenced
    ) -> _Relation:
        child = self._lower_relation(node.child, outer_scope, referenced)
        scope = Scope(child.layout, outer=outer_scope)
        accumulators = []
        batch_args = []
        for agg in node.aggregates:
            arg_fn = self._compile(agg.arg, scope) if agg.arg is not None else None
            accumulators.append((agg.func, arg_fn, agg.distinct))
            batch_args.append(
                self._compile_batch(agg.arg, scope)
                if agg.arg is not None
                else None
            )
        op = ops.TemporalAggregate(
            child.op,
            self._compile(node.begin, scope),
            self._compile(node.end, scope),
            accumulators,
            batch_begin=self._compile_batch(node.begin, scope),
            batch_end=self._compile_batch(node.end, scope),
            batch_args=batch_args,
            period=node.period,
        )
        est = node.est_hint or int(
            cost.estimate_temporal_aggregate_rows(child.est_rows)
        )
        op.est_rows = max(1, est)
        layout = [("__tagg", "t")] + [
            ("__tagg", f"__a{i}") for i in range(len(node.aggregates))
        ]
        return _Relation(
            op, layout, {"__tagg"}, op.est_rows, stats_backed=child.stats_backed
        )

    def _lower_align_join(
        self, node: LogicalAlignJoin, outer_scope, referenced
    ) -> _Relation:
        left = self._lower_relation(node.left, outer_scope, referenced)
        right = self._lower_relation(node.right, outer_scope, referenced)
        left_scope = Scope(left.layout, outer=outer_scope)
        right_scope = Scope(right.layout, outer=outer_scope)
        left_keys, right_keys = [], []
        for conjunct in node.conjuncts:
            pair = self._equi_key(conjunct, left_scope, right_scope)
            if pair is None:
                raise ProgrammingError(
                    "TEMPORAL JOIN condition must equate a column of each "
                    f"side, got {expr_to_string(conjunct)!r}"
                )
            left_keys.append(pair[0])
            right_keys.append(pair[1])
        left_begin, left_end = node.left_period
        right_begin, right_end = node.right_period
        op = ops.TemporalAlignJoin(
            left.op,
            right.op,
            left_keys,
            right_keys,
            self._compile(left_begin, left_scope),
            self._compile(left_end, left_scope),
            self._compile(right_begin, right_scope),
            self._compile(right_end, right_scope),
            period=node.period,
        )
        est = node.est_hint or int(
            cost.estimate_align_join_rows(
                left.est_rows, right.est_rows, len(left_keys)
            )
        )
        op.est_rows = max(1, est)
        layout = (
            left.layout
            + right.layout
            + [("__align", "overlap_begin"), ("__align", "overlap_end")]
        )
        bindings = left.bindings | right.bindings | {"__align"}
        return _Relation(
            op,
            layout,
            bindings,
            op.est_rows,
            stats_backed=left.stats_backed or right.stats_backed,
        )

    def _equi_key(self, conjunct, left_scope, right_scope):
        """If *conjunct* is ``left_col = right_col`` across the two sides,
        return compiled key extractors (left_fn, right_fn, batch_left_fn,
        batch_right_fn) — the batch variants are None when the key
        expression is not vectorizable."""
        if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="):
            return None
        for first, second in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
            try:
                left_fn = compile_expr(first, Scope(left_scope.layout))
            except ProgrammingError:
                continue
            try:
                right_fn = compile_expr(second, Scope(right_scope.layout))
            except ProgrammingError:
                continue
            return (
                left_fn,
                right_fn,
                compile_batch_expr(first, Scope(left_scope.layout)),
                compile_batch_expr(second, Scope(right_scope.layout)),
            )
        return None

    # -- temporal resolution ----------------------------------------------------

    def _resolve_temporal(self, ref, schema: TableSchema, outer_scope):
        filters: List[TemporalBounds] = []
        has_system = False
        for clause in ref.temporal:
            period = self._resolve_period(schema, clause.period)
            if period.is_system:
                has_system = True
                if not self.profile.supports_system_time:
                    raise NotSupportedError(
                        f"{self.profile.name} has no system-time support"
                    )
            low_fn = self._const_fn(clause.low, outer_scope)
            high_fn = self._const_fn(clause.high, outer_scope)
            if clause.mode == "all":
                bounds = TemporalBounds(
                    period.begin_column, period.end_column, "all"
                )
            elif clause.mode == "as_of":
                bounds = TemporalBounds(
                    period.begin_column, period.end_column, "as_of", low=low_fn
                )
            elif clause.mode == "from_to":
                bounds = TemporalBounds(
                    period.begin_column, period.end_column, "overlap",
                    low=low_fn, high=high_fn,
                )
            else:  # between: inclusive upper bound
                bounds = TemporalBounds(
                    period.begin_column, period.end_column, "overlap",
                    low=low_fn,
                    high=(lambda env, fn=high_fn: fn(env) + 1),
                )
            filters.append(bounds)
        return filters, has_system

    def _resolve_period(self, schema: TableSchema, name: str):
        if name == "system_time":
            period = schema.system_period
            if period is None:
                raise ProgrammingError(
                    f"table {schema.name} has no system-time period"
                )
            return period
        if name == "business_time":
            app = schema.application_periods
            if not app:
                raise ProgrammingError(
                    f"table {schema.name} has no application-time period"
                )
            return app[0]
        return schema.period(name)

    def _const_fn(self, expr, outer_scope):
        """Compile an expression with no local columns into fn(env)."""
        if expr is None:
            return None
        fn = compile_expr(expr, Scope([], outer=outer_scope))
        return lambda env: fn((), env)

    def _to_constraint(self, conjunct, binding, schema, scope, outer_scope):
        """Turn a pushed conjunct into a ColumnConstraint when sargable."""
        if isinstance(conjunct, ast.Between):
            column = self._local_column(conjunct.operand, binding, schema)
            if column is None:
                return None
            low_fn = self._value_fn(conjunct.low, outer_scope)
            high_fn = self._value_fn(conjunct.high, outer_scope)
            if low_fn is None or high_fn is None or conjunct.negated:
                return None
            return ColumnConstraint(column, "between", low=low_fn, high=high_fn)
        if not isinstance(conjunct, ast.Binary):
            return None
        op = conjunct.op
        if op not in ("=", "<", "<=", ">", ">="):
            return None
        column = self._local_column(conjunct.left, binding, schema)
        value_expr = conjunct.right
        if column is None:
            column = self._local_column(conjunct.right, binding, schema)
            value_expr = conjunct.left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if column is None:
            return None
        value_fn = self._value_fn(value_expr, outer_scope)
        if value_fn is None:
            return None
        if op == "=":
            return ColumnConstraint(column, "=", low=value_fn, high=value_fn)
        if op in ("<", "<="):
            return ColumnConstraint(column, op, high=value_fn)
        return ColumnConstraint(column, op, low=value_fn)

    def _local_column(self, expr, binding, schema) -> Optional[str]:
        if isinstance(expr, ast.ColumnRef):
            if expr.table == binding and schema.has_column(expr.name):
                return expr.name
            if expr.table is None and schema.has_column(expr.name):
                return expr.name
        return None

    def _value_fn(self, expr, outer_scope):
        """Compile a value-side expression (constants, params, outer refs)."""
        try:
            fn = compile_expr(expr, Scope([], outer=outer_scope))
        except ProgrammingError:
            return None
        return lambda env: fn((), env)

    def _needs_temporal(self, schema, binding, referenced, has_system_clause, table):
        if not table.is_versioned:
            return False
        if has_system_clause:
            return True
        if not table.has_split:
            return True  # the implicit-current filter reads sys_end
        period = schema.system_period
        sys_cols = {period.begin_column, period.end_column}
        for ref_binding, name in referenced:
            if name in sys_cols and ref_binding in (binding, None):
                return True
        return False

    # -- aggregation -----------------------------------------------------------

    def _plan_aggregation(self, select, items, source_op, scope, outer_scope):
        group_keys = list(select.group_by)
        key_fns = [self._compile(expr, scope) for expr in group_keys]
        key_ids = [_expr_key(expr, scope) for expr in group_keys]

        aggregates: List[ast.Aggregate] = []
        agg_ids: List[str] = []

        def register(agg: ast.Aggregate) -> int:
            agg_id = _expr_key(agg, scope)
            if agg_id in agg_ids:
                return agg_ids.index(agg_id)
            agg_ids.append(agg_id)
            aggregates.append(agg)
            return len(aggregates) - 1

        def rewrite(expr):
            if expr is None:
                return None
            expr_id = _expr_key(expr, scope)
            for i, key_id in enumerate(key_ids):
                if expr_id == key_id:
                    return ast.ColumnRef(f"__g{i}", table="__agg")
            if isinstance(expr, ast.Aggregate):
                idx = register(expr)
                return ast.ColumnRef(f"__a{idx}", table="__agg")
            return rebuild_expr(expr, rewrite)

        rewritten_items = [
            ast.SelectItem(rewrite(item.expr), item.alias) for item in items
        ]
        rewritten_having = rewrite(select.having) if select.having is not None else None

        accumulators = []
        batch_args = []
        for agg in aggregates:
            arg_fn = (
                self._compile(agg.arg, scope) if agg.arg is not None else None
            )
            accumulators.append((agg.func, arg_fn, agg.distinct))
            batch_args.append(
                self._compile_batch(agg.arg, scope) if agg.arg is not None else None
            )

        agg_op = ops.Aggregate(
            source_op,
            key_fns,
            accumulators,
            global_agg=not group_keys,
            batch_keys=[self._compile_batch(expr, scope) for expr in group_keys],
            batch_args=batch_args,
        )
        post_layout = [("__agg", f"__g{i}") for i in range(len(group_keys))] + [
            ("__agg", f"__a{i}") for i in range(len(aggregates))
        ]
        post_scope = Scope(post_layout, outer=outer_scope)
        return agg_op, post_scope, rewritten_items, rewritten_having, rewrite

    # -- projection / ordering ------------------------------------------------------

    def _expand_stars(self, items, source_layout):
        out = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for binding, column in source_layout:
                    if item.expr.table is None or item.expr.table == binding:
                        out.append(
                            ast.SelectItem(ast.ColumnRef(column, table=binding), None)
                        )
            else:
                out.append(item)
        if not out:
            raise ProgrammingError("empty select list after star expansion")
        return out

    def _output_names(self, items) -> List[str]:
        names = []
        for index, item in enumerate(items):
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ast.ColumnRef):
                names.append(item.expr.name)
            else:
                names.append(f"col{index}")
        return names

    def _sort_specs(self, order_by, items, out_names, pre_scope, order_rewrite):
        """Each spec is ('out', slot, desc) or ('pre', fn, desc)."""
        specs = []
        for order_item in order_by:
            expr = order_item.expr
            desc = not order_item.ascending
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                slot = expr.value - 1
                if not (0 <= slot < len(out_names)):
                    raise ProgrammingError(f"ORDER BY position {expr.value} out of range")
                specs.append(("out", slot, desc))
                continue
            if isinstance(expr, ast.ColumnRef) and expr.table is None and expr.name in out_names:
                specs.append(("out", out_names.index(expr.name), desc))
                continue
            target = order_rewrite(expr) if order_rewrite is not None else expr
            fn = self._compile(target, pre_scope)
            specs.append(("pre", fn, desc))
        return specs

    def _order_on_output(self, op, order_by, out_names, outer_scope):
        key_fns = []
        batch_keys = []
        descending = []
        for order_item in order_by:
            expr = order_item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                slot = expr.value - 1
            elif isinstance(expr, ast.ColumnRef) and expr.name in out_names:
                slot = out_names.index(expr.name)
            else:
                raise ProgrammingError(
                    "ORDER BY after UNION must reference output columns"
                )
            key_fns.append(lambda row, env, s=slot: row[s])
            batch_keys.append(lambda batch, env, s=slot: batch.column(s))
            descending.append(not order_item.ascending)
        return ops.Sort(op, key_fns, descending, batch_keys=batch_keys)

    def _apply_limit(self, op, select, outer_scope):
        if select.limit is None:
            return op
        limit_fn = self._compile(select.limit, Scope([], outer=outer_scope))
        offset_fn = (
            self._compile(select.offset, Scope([], outer=outer_scope))
            if select.offset is not None
            else None
        )
        return ops.Limit(op, limit_fn, offset_fn)

    # -- expression compilation with subquery support ------------------------------

    def _compile(self, expr, scope):
        if expr is None:
            return None
        return compile_expr(expr, scope, self._subquery_compiler)

    def _compile_batch(self, expr, scope):
        """Chunk-wise variant of :meth:`_compile`; None when *expr* is
        not vectorizable (subqueries, CASE) — callers then keep the
        per-row closure as the fallback path."""
        if expr is None:
            return None
        return compile_batch_expr(expr, scope, self._subquery_compiler)

    def _subquery_compiler(self, select: ast.Select, scope: Scope):
        planned = self.plan_select(select, outer_scope=scope)
        if self._subplans is not None:
            self._subplans.append(planned)
        # uncorrelated subqueries (those that also plan with no outer scope)
        # are cached per statement execution; the probe must not register
        # its throwaway plans as SubPlans
        correlated = True
        saved_subplans = self._subplans
        self._subplans = None
        try:
            self.plan_select(select, outer_scope=None)
            correlated = False
        except (ProgrammingError, PlanError):
            correlated = True
        finally:
            self._subplans = saved_subplans
        cache_key = id(planned)

        def run(env: Env):
            if not correlated:
                cached = env.cache.get(cache_key)
                if cached is None:
                    cached = planned.rows(env)
                    env.cache[cache_key] = cached
                return cached
            return planned.rows(env)

        return run


class _Finalize(ops.Operator):
    """Projection + distinct + order + limit in one node.

    Keeps pre-projection rows alongside the projected output (only when
    a sort spec needs them) so ORDER BY can reference either the
    projected output (aliases, positions) or the pre-projection row
    (arbitrary expressions), as SQL requires.  Projection runs
    chunk-wise per output column when the planner could vectorize the
    item expression, per-row otherwise.
    """

    def __init__(self, child, item_fns, distinct, sort_specs, limit_fn, offset_fn,
                 batch_item_fns=None):
        self.children = (child,)
        self._item_fns = item_fns
        self._batch_item_fns = batch_item_fns
        self._distinct = distinct
        self._sort_specs = sort_specs
        self._limit_fn = limit_fn
        self._offset_fn = offset_fn

    def execute_batches(self, env):
        item_fns = self._item_fns
        check = getattr(env, "check", None)
        need_pre = any(spec[0] == "pre" for spec in self._sort_specs)
        pre_rows: List[tuple] = []
        out_rows: List[tuple] = []
        if vectorized_enabled() and self._batch_item_fns is not None:
            for batch in self.children[0].batches(env):
                if check is not None:
                    check()
                columns = []
                rows = None
                for batch_fn, row_fn in zip(self._batch_item_fns, item_fns):
                    if batch_fn is not None:
                        columns.append(batch_fn(batch, env))
                    else:  # per-row fallback for this output column only
                        if rows is None:
                            rows = batch.to_rows()
                        columns.append([row_fn(row, env) for row in rows])
                out_rows.extend(zip(*columns))
                if need_pre:
                    pre_rows.extend(batch.to_rows())
        else:
            guard = getattr(env, "guard_iter", None)
            for batch in self.children[0].batches(env):
                rows = batch.to_rows()
                if guard is not None:
                    rows = guard(rows)
                for pre_row in rows:
                    out_rows.append(tuple(fn(pre_row, env) for fn in item_fns))
                    if need_pre:
                        pre_rows.append(pre_row)
        if self._distinct:
            seen = set()
            keep = []
            for index, out_row in enumerate(out_rows):
                if out_row not in seen:
                    seen.add(out_row)
                    keep.append(index)
            if len(keep) != len(out_rows):
                out_rows = [out_rows[i] for i in keep]
                if need_pre:
                    pre_rows = [pre_rows[i] for i in keep]
        for spec in reversed(self._sort_specs):
            kind, key, desc = spec
            if check is not None:
                check()
            if kind == "out":
                keys = [row[key] for row in out_rows]
            else:
                keys = [key(row, env) for row in pre_rows]
            order = sorted(
                range(len(out_rows)),
                key=lambda i: ops._sort_token(keys[i]),
                reverse=desc,
            )
            out_rows = [out_rows[i] for i in order]
            if need_pre:
                pre_rows = [pre_rows[i] for i in order]
        if self._limit_fn is not None:
            start = int(self._offset_fn((), env)) if self._offset_fn else 0
            out_rows = out_rows[start:start + int(self._limit_fn((), env))]
        return batches_from_rows(out_rows)

    def label(self):
        bits = [f"Project({len(self._item_fns)})"]
        if self._distinct:
            bits.append("distinct")
        if self._sort_specs:
            bits.append(f"sort={len(self._sort_specs)}")
        if self._limit_fn is not None:
            bits.append("limit")
        return "Finalize[" + ", ".join(bits) + "]"


# Backwards-compatible alias: earlier code imported _rebuild from here.
_rebuild = rebuild_expr
