"""Rule-based rewrites over the logical plan IR.

Three rules, applied in order and individually switchable through
``ArchitectureProfile.rewrite_rules`` (for ablation benchmarks):

* **constant-folding** — closed expression subtrees (no columns, params or
  subqueries) are evaluated once at plan time, so ``DATE '1994-01-01' +
  INTERVAL '1' YEAR`` costs nothing per row;
* **predicate-pushdown** — WHERE conjuncts that reference a single base
  table move onto its scan (where they can become index constraints), and
  multi-table conjuncts become join edges;
* **join-reorder** — the edge pool plus per-unit row estimates drive a
  greedy size-ordered join tree (the heuristic every §5.9 system uses:
  "standard storage and query processing techniques").

Join-tree construction from a :class:`LogicalProduct` always runs — physical
lowering requires binary joins — but with ``join-reorder`` disabled the
units keep their textual FROM order instead of being size-sorted.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from ..errors import PlanError, ProgrammingError
from ..expr import Env, Interval, Scope, compile_expr
from ..sql import ast
from .logical import (
    LogicalDerived,
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalProduct,
    LogicalQuery,
    LogicalScan,
    LogicalValues,
    collect_column_refs,
    conjoin,
    rebuild_expr,
    replace_scans,
    scans_in_order,
    split_conjuncts,
    unit_layout,
)

ALL_RULES: Tuple[str, ...] = (
    "constant-folding",
    "predicate-pushdown",
    "join-reorder",
)

# Every rule must state the invariants it preserves; tools/engine_lint.py
# fails the build when a rule in ALL_RULES has no declaration here.
RULE_INVARIANTS: Dict[str, Tuple[str, ...]] = {
    "constant-folding": (
        "result-equivalence",
        "source-spans",
        "temporal-clause-modes",
    ),
    "predicate-pushdown": (
        "result-equivalence",
        "left-join-null-extension",
        "subqueries-stay-residual",
    ),
    "join-reorder": (
        "result-equivalence",
        "inner-joins-only",
        "left-deep-shape",
    ),
}


def rewrite_logical(
    query: LogicalQuery, db, profile, outer_scope: Optional[Scope] = None
) -> LogicalQuery:
    """Apply the profile's enabled rules; always normalise products to joins."""
    rules = getattr(profile, "rewrite_rules", ALL_RULES)
    applied: List[str] = list(query.applied_rules)
    select = query.select
    relation = query.relation

    if "constant-folding" in rules:
        select, relation, changed = _fold_query(select, relation)
        if changed:
            applied.append("constant-folding")

    if "predicate-pushdown" in rules:
        relation, changed = _push_predicates(relation, outer_scope)
        if changed:
            applied.append("predicate-pushdown")

    relation, reordered = _order_joins(relation, cost_based="join-reorder" in rules)
    if reordered:
        applied.append("join-reorder")

    return LogicalQuery(select, relation, query.referenced, applied)


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

_OPEN_NODES = (
    ast.ColumnRef,
    ast.Param,
    ast.Star,
    ast.Aggregate,
    ast.InSubquery,
    ast.Exists,
    ast.ScalarSubquery,
)


def _is_closed(expr) -> bool:
    """True when the subtree references no columns, params or subqueries."""
    return all(not isinstance(node, _OPEN_NODES) for node in ast.walk_expr(expr))


def fold_expr(expr):
    """Fold closed subtrees bottom-up into literals; returns the input node
    unchanged (identity) when nothing folded."""
    if expr is None or isinstance(expr, (ast.Literal, ast.Param, ast.ColumnRef, ast.Star)):
        return expr
    child_changed = False

    def fold_child(child):
        nonlocal child_changed
        out = fold_expr(child)
        if out is not child:
            child_changed = True
        return out

    folded = rebuild_expr(expr, fold_child)
    if not child_changed:
        folded = expr  # identity-preserving: no child folded
    if isinstance(folded, ast.Literal):
        return folded
    if not _is_closed(folded):
        return folded
    try:
        fn = compile_expr(folded, Scope([]))
        value = fn((), _EMPTY_ENV)
    except Exception:
        return folded
    if isinstance(value, Interval):
        # intervals have no literal form; leave the expression intact
        return folded
    return ast.copy_span(folded, ast.Literal(value))


_EMPTY_ENV = Env({})


def _fold_query(select: ast.Select, relation: LogicalNode):
    changed = False

    def fold(expr):
        nonlocal changed
        out = fold_expr(expr)
        if out is not expr:
            changed = True
        return out

    items = [ast.SelectItem(fold(item.expr), item.alias) for item in select.items]
    group_by = [fold(expr) for expr in select.group_by]
    having = fold(select.having) if select.having is not None else None
    limit = fold(select.limit) if select.limit is not None else None
    offset = fold(select.offset) if select.offset is not None else None

    def fold_order_item(item):
        folded = fold(item.expr)
        if isinstance(folded, ast.Literal) and not isinstance(item.expr, ast.Literal):
            # a bare integer literal in ORDER BY is positional — folding an
            # expression down to one would change its meaning
            return item
        if folded is item.expr:
            return item
        return ast.OrderItem(folded, item.ascending)

    order_by = [fold_order_item(item) for item in select.order_by]
    folded_select = ast.Select(
        items=items,
        from_items=select.from_items,
        where=select.where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
        offset=offset,
        distinct=select.distinct,
        set_op=select.set_op,
    )
    folded_relation = _fold_relation(relation, fold)
    if not changed:
        return select, relation, False
    return folded_select, folded_relation, True


def _fold_relation(node: LogicalNode, fold) -> LogicalNode:
    if isinstance(node, LogicalFilter):
        child = _fold_relation(node.child, fold)
        predicate = fold(node.predicate)
        if child is node.child and predicate is node.predicate:
            return node
        return replace(node, child=child, predicate=predicate)
    if isinstance(node, LogicalJoin):
        left = _fold_relation(node.left, fold)
        right = _fold_relation(node.right, fold)
        conjuncts = tuple(fold(c) for c in node.conjuncts)
        if (
            left is node.left
            and right is node.right
            and all(a is b for a, b in zip(conjuncts, node.conjuncts))
        ):
            return node
        return replace(node, left=left, right=right, conjuncts=conjuncts)
    if isinstance(node, LogicalProduct):
        units = tuple(_fold_relation(u, fold) for u in node.units)
        if all(a is b for a, b in zip(units, node.units)):
            return node
        return replace(node, units=units)
    if isinstance(node, LogicalScan):
        ref = node.ref
        if not ref.temporal:
            return node
        clauses = tuple(
            ast.copy_span(
                clause,
                replace(
                    clause,
                    low=fold(clause.low) if clause.low is not None else None,
                    high=fold(clause.high) if clause.high is not None else None,
                ),
            )
            for clause in ref.temporal
        )
        if all(
            a.low is b.low and a.high is b.high
            for a, b in zip(clauses, ref.temporal)
        ):
            return node
        return replace(node, ref=ast.copy_span(ref, replace(ref, temporal=clauses)))
    # LogicalDerived sub-selects fold when they are planned themselves
    return node


# ---------------------------------------------------------------------------
# predicate pushdown
# ---------------------------------------------------------------------------


def _push_predicates(relation: LogicalNode, outer_scope):
    """Distribute top-level WHERE conjuncts onto scans and join edges."""
    if not isinstance(relation, LogicalFilter) or relation.label != "where":
        return relation, False
    if isinstance(relation.child, LogicalValues):
        return relation, False
    source = relation.child
    units: Tuple[LogicalNode, ...] = (
        source.units if isinstance(source, LogicalProduct) else (source,)
    )
    all_bindings: Set[str] = set()
    for unit in units:
        all_bindings |= unit.bindings
    # candidate scans in FROM order, excluding any beneath the right side of
    # a LEFT JOIN: filtering that input before the join would suppress the
    # NULL-extended rows a non-null-rejecting predicate (e.g. IS NULL) needs
    scans = []
    for unit in units:
        scans.extend(_pushable_scans(unit))

    conjuncts = split_conjuncts(relation.predicate)
    assigned: Dict[int, List[ast.Expr]] = {id(scan): [] for scan in scans}
    remaining: List[ast.Expr] = []
    for conjunct in conjuncts:
        target = None
        for scan in scans:
            if only_references(
                conjunct, scan.binding, scan.schema, all_bindings, outer_scope
            ):
                target = scan
                break
        if target is not None:
            assigned[id(target)].append(conjunct)
        else:
            remaining.append(conjunct)

    pushed_any = any(assigned[id(scan)] for scan in scans)
    mapping = {
        id(scan): replace(
            scan, pushed=scan.pushed + tuple(assigned[id(scan)])
        )
        for scan in scans
        if assigned[id(scan)]
    }
    new_units = tuple(replace_scans(unit, mapping) for unit in units)

    edges: List[Tuple[frozenset, ast.Expr]] = []
    residual: List[ast.Expr] = []
    if len(new_units) > 1:
        for conjunct in remaining:
            bindings = conjunct_bindings(conjunct, units)
            if bindings is not None and len(bindings) >= 2:
                edges.append((frozenset(bindings), conjunct))
            else:
                residual.append(conjunct)
        out: LogicalNode = LogicalProduct(new_units, tuple(edges))
    else:
        residual = remaining
        out = new_units[0]

    if residual:
        out = LogicalFilter(out, conjoin(residual), "where")
    return out, pushed_any or bool(edges)


def _pushable_scans(node: LogicalNode) -> List[LogicalScan]:
    if isinstance(node, LogicalScan):
        return [node]
    if isinstance(node, LogicalJoin):
        out = _pushable_scans(node.left)
        if node.kind != "left":
            out.extend(_pushable_scans(node.right))
        return out
    if isinstance(node, LogicalFilter):
        return _pushable_scans(node.child)
    if isinstance(node, LogicalProduct):
        out = []
        for unit in node.units:
            out.extend(_pushable_scans(unit))
        return out
    return []


def only_references(
    conjunct, binding, schema, all_bindings=frozenset(), outer_scope=None
) -> bool:
    """True if every column in *conjunct* belongs to *binding*; references
    that resolve only in an enclosing query behave like constants, while
    references to sibling FROM units disqualify the conjunct."""
    has_local = False
    for ref in collect_column_refs(conjunct):
        if ref.table == binding:
            has_local = True
        elif ref.table is None and schema.has_column(ref.name):
            has_local = True
        elif ref.table is not None and ref.table not in all_bindings:
            # qualified with something that is not a sibling: a correlation
            # column from an enclosing query, if it resolves
            if outer_scope is None:
                return False
            try:
                outer_scope.resolve(ref)
            except ProgrammingError:
                return False
        else:
            return False
    # subquery-bearing predicates are never pushed into access paths
    for node in ast.walk_expr(conjunct):
        if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
            return False
    return has_local


def conjunct_bindings(conjunct, units) -> Optional[Set[str]]:
    """Bindings (among *units*) referenced by a conjunct."""
    all_bindings: Set[str] = set()
    for unit in units:
        all_bindings |= unit.bindings
    found: Set[str] = set()
    for ref in collect_column_refs(conjunct):
        if ref.table is not None:
            if ref.table in all_bindings:
                found.add(ref.table)
        else:
            owner = _binding_of_unqualified(ref.name, units)
            if owner is not None:
                found.add(owner)
    return found


def _binding_of_unqualified(name, units) -> Optional[str]:
    owners = []
    for unit in units:
        for binding, column in unit_layout(unit):
            if column == name:
                owners.append(binding)
    if len(owners) == 1:
        return owners[0]
    return None


# ---------------------------------------------------------------------------
# join-order selection
# ---------------------------------------------------------------------------


def _order_joins(relation: LogicalNode, cost_based: bool):
    """Replace every LogicalProduct with a left-deep join chain.

    With *cost_based* the units are size-sorted first (greedy smallest-
    relation heuristic); otherwise textual FROM order is kept.  Edges attach
    as soon as both sides are available; edges that never apply surface as a
    join-residual filter.
    """
    reordered = False

    def transform(node: LogicalNode) -> LogicalNode:
        nonlocal reordered
        if isinstance(node, LogicalFilter):
            child = transform(node.child)
            if child is node.child:
                return node
            return replace(node, child=child)
        if isinstance(node, LogicalProduct):
            reordered = True
            return _join_tree(node, cost_based)
        return node

    return transform(relation), reordered


def _join_tree(product: LogicalProduct, cost_based: bool) -> LogicalNode:
    units = list(product.units)
    if cost_based:
        remaining = sorted(units, key=lambda u: u.est_rows)
    else:
        remaining = list(units)
    current = remaining.pop(0)
    pending: List[Tuple[frozenset, ast.Expr]] = list(product.edges)
    while remaining:
        # find a unit connected to `current` through at least one edge
        chosen = None
        for candidate in remaining:
            combined = current.bindings | candidate.bindings
            if any(
                b <= combined and (b & candidate.bindings) and (b & current.bindings)
                for b, _c in pending
            ):
                chosen = candidate
                break
        if chosen is None:
            chosen = remaining[0]
        remaining.remove(chosen)
        combined = current.bindings | chosen.bindings
        applicable = [c for b, c in pending if b <= combined]
        pending = [(b, c) for b, c in pending if c not in applicable]
        current = LogicalJoin("inner", current, chosen, tuple(applicable))
    if pending:
        current = LogicalFilter(
            current, conjoin([c for _b, c in pending]), "join-residual"
        )
    return current
