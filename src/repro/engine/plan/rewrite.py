"""Rule-based rewrites over the logical plan IR.

Three rules, applied in order and individually switchable through
``ArchitectureProfile.rewrite_rules`` (for ablation benchmarks):

* **constant-folding** — closed expression subtrees (no columns, params or
  subqueries) are evaluated once at plan time, so ``DATE '1994-01-01' +
  INTERVAL '1' YEAR`` costs nothing per row;
* **predicate-pushdown** — WHERE conjuncts that reference a single base
  table move onto its scan (where they can become index constraints), and
  multi-table conjuncts become join edges;
* **join-reorder** — the edge pool plus per-unit row estimates drive the
  join tree.  When at least one base table in the product has a valid
  ``ANALYZE`` snapshot, the AST predicates are translated into neutral
  sketches and :mod:`.cost` enumerates a left-deep order (DP up to
  :data:`.cost.MAX_DP_RELATIONS` relations, greedy above); without
  statistics the pre-statistics greedy size-ordered tree is produced
  unchanged (the heuristic every §5.9 system uses: "standard storage and
  query processing techniques").

Join-tree construction from a :class:`LogicalProduct` always runs — physical
lowering requires binary joins — but with ``join-reorder`` disabled the
units keep their textual FROM order instead of being size-sorted.

Scan estimates are also refined here: when a scan's table has statistics,
its ``est_rows`` is recomputed from per-partition selectivities (pushed
predicates plus temporal-period clauses) and marked ``est_source="stats"``
— the flag that arms the cost-based ordering and, downstream, the
hash-join build-side swap.  See docs/COST_MODEL.md.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from ..analyze_domains import scan_domain_map
from ..errors import CatalogError, ProgrammingError
from ..expr import Env, Interval, Scope, compile_expr
from ..sql import ast
from ..types import END_OF_TIME
from . import cost
from .logical import (
    _has_system_clause,
    LogicalAlignJoin,
    LogicalDerived,
    LogicalEmpty,
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalProduct,
    LogicalQuery,
    LogicalScan,
    LogicalTemporalAggregate,
    LogicalValues,
    collect_column_refs,
    conjoin,
    rebuild_expr,
    replace_scans,
    scans_in_order,
    split_conjuncts,
    unit_layout,
)

ALL_RULES: Tuple[str, ...] = (
    "constant-folding",
    "predicate-pushdown",
    "join-reorder",
    "constraint-pruning",
    "temporal-fusion",
)

# Every rule must state the invariants it preserves; tools/engine_lint.py
# fails the build when a rule in ALL_RULES has no declaration here.
RULE_INVARIANTS: Dict[str, Tuple[str, ...]] = {
    "constant-folding": (
        "result-equivalence",
        "source-spans",
        "temporal-clause-modes",
    ),
    "predicate-pushdown": (
        "result-equivalence",
        "left-join-null-extension",
        "subqueries-stay-residual",
    ),
    "join-reorder": (
        "result-equivalence",
        "inner-joins-only",
        "left-deep-shape",
    ),
    "constraint-pruning": (
        "result-equivalence",
        "source-spans",
        "temporal-clause-modes",
    ),
    "temporal-fusion": (
        "result-equivalence",
        "exact-rewrite-shape-only",
        "order-insensitive-aggregates-only",
    ),
}


def rewrite_logical(
    query: LogicalQuery,
    db,
    profile,
    outer_scope: Optional[Scope] = None,
    exclude: Tuple[str, ...] = (),
) -> LogicalQuery:
    """Apply the profile's enabled rules; always normalise products to joins.

    *exclude* masks individual rules for this invocation — the analyzer
    uses it to lint the pre-pruning plan, where the evidence for its
    interval-domain rules is still visible.
    """
    rules = [
        rule
        for rule in getattr(profile, "rewrite_rules", ALL_RULES)
        if rule not in exclude
    ]
    applied: List[str] = list(query.applied_rules)
    select = query.select
    relation = query.relation

    if "constant-folding" in rules:
        select, relation, changed = _fold_query(select, relation)
        if changed:
            applied.append("constant-folding")

    if "predicate-pushdown" in rules:
        relation, changed = _push_predicates(relation, outer_scope)
        if changed:
            applied.append("predicate-pushdown")

    relation = _refine_scan_estimates(relation, db)

    relation, reordered = _order_joins(
        relation, cost_based="join-reorder" in rules, db=db
    )
    if reordered:
        applied.append("join-reorder")

    if "constraint-pruning" in rules:
        relation, changed = _prune_constraints(relation)
        if changed:
            applied.append("constraint-pruning")

    if "temporal-fusion" in rules:
        select, relation, fused = _fuse_temporal_ops(select, relation, db)
        if fused:
            applied.append("temporal-fusion")

    # explicit dialect syntax (GROUP BY TEMPORAL(p)) lowers to the native
    # operator on every profile — it is not a rewrite of standard SQL
    select, relation = _lower_temporal_group(select, relation)

    return LogicalQuery(select, relation, query.referenced, applied)


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

_OPEN_NODES = (
    ast.ColumnRef,
    ast.Param,
    ast.Star,
    ast.Aggregate,
    ast.InSubquery,
    ast.Exists,
    ast.ScalarSubquery,
)


def _is_closed(expr) -> bool:
    """True when the subtree references no columns, params or subqueries."""
    return all(not isinstance(node, _OPEN_NODES) for node in ast.walk_expr(expr))


def fold_expr(expr):
    """Fold closed subtrees bottom-up into literals; returns the input node
    unchanged (identity) when nothing folded."""
    if expr is None or isinstance(expr, (ast.Literal, ast.Param, ast.ColumnRef, ast.Star)):
        return expr
    child_changed = False

    def fold_child(child):
        nonlocal child_changed
        out = fold_expr(child)
        if out is not child:
            child_changed = True
        return out

    folded = rebuild_expr(expr, fold_child)
    if not child_changed:
        folded = expr  # identity-preserving: no child folded
    if isinstance(folded, ast.Literal):
        return folded
    if not _is_closed(folded):
        return folded
    try:
        fn = compile_expr(folded, Scope([]))
        value = fn((), _EMPTY_ENV)
    except Exception:
        return folded
    if isinstance(value, Interval):
        # intervals have no literal form; leave the expression intact
        return folded
    return ast.copy_span(folded, ast.Literal(value))


_EMPTY_ENV = Env({})


def _fold_query(select: ast.Select, relation: LogicalNode):
    changed = False

    def fold(expr):
        nonlocal changed
        out = fold_expr(expr)
        if out is not expr:
            changed = True
        return out

    items = [ast.SelectItem(fold(item.expr), item.alias) for item in select.items]
    group_by = [fold(expr) for expr in select.group_by]
    having = fold(select.having) if select.having is not None else None
    limit = fold(select.limit) if select.limit is not None else None
    offset = fold(select.offset) if select.offset is not None else None

    def fold_order_item(item):
        folded = fold(item.expr)
        if isinstance(folded, ast.Literal) and not isinstance(item.expr, ast.Literal):
            # a bare integer literal in ORDER BY is positional — folding an
            # expression down to one would change its meaning
            return item
        if folded is item.expr:
            return item
        return ast.OrderItem(folded, item.ascending)

    order_by = [fold_order_item(item) for item in select.order_by]
    folded_select = ast.Select(
        items=items,
        from_items=select.from_items,
        where=select.where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
        offset=offset,
        distinct=select.distinct,
        set_op=select.set_op,
    )
    folded_relation = _fold_relation(relation, fold)
    if not changed:
        return select, relation, False
    return folded_select, folded_relation, True


def _fold_relation(node: LogicalNode, fold) -> LogicalNode:
    if isinstance(node, LogicalFilter):
        child = _fold_relation(node.child, fold)
        predicate = fold(node.predicate)
        if child is node.child and predicate is node.predicate:
            return node
        return replace(node, child=child, predicate=predicate)
    if isinstance(node, LogicalJoin):
        left = _fold_relation(node.left, fold)
        right = _fold_relation(node.right, fold)
        conjuncts = tuple(fold(c) for c in node.conjuncts)
        if (
            left is node.left
            and right is node.right
            and all(a is b for a, b in zip(conjuncts, node.conjuncts))
        ):
            return node
        return replace(node, left=left, right=right, conjuncts=conjuncts)
    if isinstance(node, LogicalProduct):
        units = tuple(_fold_relation(u, fold) for u in node.units)
        if all(a is b for a, b in zip(units, node.units)):
            return node
        return replace(node, units=units)
    if isinstance(node, LogicalScan):
        ref = node.ref
        if not ref.temporal:
            return node
        clauses = tuple(
            ast.copy_span(
                clause,
                replace(
                    clause,
                    low=fold(clause.low) if clause.low is not None else None,
                    high=fold(clause.high) if clause.high is not None else None,
                ),
            )
            for clause in ref.temporal
        )
        if all(
            a.low is b.low and a.high is b.high
            for a, b in zip(clauses, ref.temporal)
        ):
            return node
        return replace(node, ref=ast.copy_span(ref, replace(ref, temporal=clauses)))
    # LogicalDerived sub-selects fold when they are planned themselves
    return node


# ---------------------------------------------------------------------------
# predicate pushdown
# ---------------------------------------------------------------------------


def _push_predicates(relation: LogicalNode, outer_scope):
    """Distribute top-level WHERE conjuncts onto scans and join edges."""
    if not isinstance(relation, LogicalFilter) or relation.label != "where":
        return relation, False
    if isinstance(relation.child, LogicalValues):
        return relation, False
    source = relation.child
    units: Tuple[LogicalNode, ...] = (
        source.units if isinstance(source, LogicalProduct) else (source,)
    )
    all_bindings: Set[str] = set()
    for unit in units:
        all_bindings |= unit.bindings
    # candidate scans in FROM order, excluding any beneath the right side of
    # a LEFT JOIN: filtering that input before the join would suppress the
    # NULL-extended rows a non-null-rejecting predicate (e.g. IS NULL) needs
    scans = []
    for unit in units:
        scans.extend(_pushable_scans(unit))

    conjuncts = split_conjuncts(relation.predicate)
    assigned: Dict[int, List[ast.Expr]] = {id(scan): [] for scan in scans}
    remaining: List[ast.Expr] = []
    for conjunct in conjuncts:
        target = None
        for scan in scans:
            if only_references(
                conjunct, scan.binding, scan.schema, all_bindings, outer_scope
            ):
                target = scan
                break
        if target is not None:
            assigned[id(target)].append(conjunct)
        else:
            remaining.append(conjunct)

    pushed_any = any(assigned[id(scan)] for scan in scans)
    mapping = {
        id(scan): replace(
            scan, pushed=scan.pushed + tuple(assigned[id(scan)])
        )
        for scan in scans
        if assigned[id(scan)]
    }
    new_units = tuple(replace_scans(unit, mapping) for unit in units)

    edges: List[Tuple[frozenset, ast.Expr]] = []
    residual: List[ast.Expr] = []
    if len(new_units) > 1:
        for conjunct in remaining:
            bindings = conjunct_bindings(conjunct, units)
            if bindings is not None and len(bindings) >= 2:
                edges.append((frozenset(bindings), conjunct))
            else:
                residual.append(conjunct)
        out: LogicalNode = LogicalProduct(new_units, tuple(edges))
    else:
        residual = remaining
        out = new_units[0]

    if residual:
        out = LogicalFilter(out, conjoin(residual), "where")
    return out, pushed_any or bool(edges)


def _pushable_scans(node: LogicalNode) -> List[LogicalScan]:
    if isinstance(node, LogicalScan):
        return [node]
    if isinstance(node, LogicalJoin):
        out = _pushable_scans(node.left)
        if node.kind != "left":
            out.extend(_pushable_scans(node.right))
        return out
    if isinstance(node, LogicalAlignJoin):
        # filtering either input before the align merge is sound: the
        # join keeps only key-matched overlapping pairs either way
        out = _pushable_scans(node.left)
        out.extend(_pushable_scans(node.right))
        return out
    if isinstance(node, LogicalFilter):
        return _pushable_scans(node.child)
    if isinstance(node, LogicalProduct):
        out = []
        for unit in node.units:
            out.extend(_pushable_scans(unit))
        return out
    return []


def only_references(
    conjunct, binding, schema, all_bindings=frozenset(), outer_scope=None
) -> bool:
    """True if every column in *conjunct* belongs to *binding*; references
    that resolve only in an enclosing query behave like constants, while
    references to sibling FROM units disqualify the conjunct."""
    has_local = False
    for ref in collect_column_refs(conjunct):
        if ref.table == binding:
            has_local = True
        elif ref.table is None and schema.has_column(ref.name):
            has_local = True
        elif ref.table is not None and ref.table not in all_bindings:
            # qualified with something that is not a sibling: a correlation
            # column from an enclosing query, if it resolves
            if outer_scope is None:
                return False
            try:
                outer_scope.resolve(ref)
            except ProgrammingError:
                return False
        else:
            return False
    # subquery-bearing predicates are never pushed into access paths
    for node in ast.walk_expr(conjunct):
        if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
            return False
    return has_local


def conjunct_bindings(conjunct, units) -> Optional[Set[str]]:
    """Bindings (among *units*) referenced by a conjunct."""
    all_bindings: Set[str] = set()
    for unit in units:
        all_bindings |= unit.bindings
    found: Set[str] = set()
    for ref in collect_column_refs(conjunct):
        if ref.table is not None:
            if ref.table in all_bindings:
                found.add(ref.table)
        else:
            owner = _binding_of_unqualified(ref.name, units)
            if owner is not None:
                found.add(owner)
    return found


def _binding_of_unqualified(name, units) -> Optional[str]:
    owners = []
    for unit in units:
        for binding, column in unit_layout(unit):
            if column == name:
                owners.append(binding)
    if len(owners) == 1:
        return owners[0]
    return None


# ---------------------------------------------------------------------------
# statistics: scan-estimate refinement and predicate sketches
# ---------------------------------------------------------------------------


def _refine_scan_estimates(relation: LogicalNode, db) -> LogicalNode:
    """Recompute scan cardinalities from ANALYZE snapshots when available.

    Tables without a valid snapshot keep their partition-count heuristic
    (and ``est_source="heuristic"``), so a database that was never
    analyzed produces plans byte-identical to the pre-statistics engine.
    """
    if db is None or not hasattr(db, "stats_for"):
        return relation
    mapping = {}
    for scan in scans_in_order(relation):
        snapshot = db.stats_for(scan.schema.name)
        if snapshot is None:
            continue
        table = db.table(scan.ref.name)
        partitions, predicates = _scan_cost_inputs(scan, table, snapshot)
        est = cost.estimate_scan_rows(partitions, predicates)
        mapping[id(scan)] = replace(
            scan, est_rows=max(1, int(est + 0.5)), est_source="stats"
        )
    if not mapping:
        return relation
    return replace_scans(relation, mapping)


def _scan_cost_inputs(scan: LogicalScan, table, snapshot):
    """(partition sketches, predicate sketches) the cost model prices.

    Partition choice mirrors physical lowering: explicit system time on a
    split table adds the history partition; a versioned single-partition
    table (System D) without a system clause gets the implicit-current
    bound on the period end column instead.
    """
    has_system = _has_system_clause(scan.schema, scan.ref)
    names = [table.current_partition_name()]
    if table.is_versioned and table.has_split and has_system:
        names.append("history")
    partitions = []
    for name in names:
        part = snapshot.partition(name)
        if part is not None:
            partitions.append(
                cost.PartitionSketch(name, part.row_count, part.columns)
            )
        else:
            rows = (
                table.history_count() if name == "history" else table.current_count()
            )
            partitions.append(cost.PartitionSketch(name, rows))
    predicates = [_conjunct_sketch(c, scan.binding, scan.schema) for c in scan.pushed]
    predicates.extend(_temporal_sketches(scan))
    if table.is_versioned and not table.has_split and not has_system:
        period = scan.schema.system_period
        if period is not None:
            predicates.append(
                cost.PredicateSketch(period.end_column, ">", END_OF_TIME - 1)
            )
    return partitions, predicates


def _literal_value(expr):
    """Comparison value when closed (constant folding already ran)."""
    if isinstance(expr, ast.Literal):
        return expr.value
    return None


def _local_column_name(expr, binding, schema) -> Optional[str]:
    if not isinstance(expr, ast.ColumnRef):
        return None
    if expr.table is not None and expr.table != binding:
        return None
    if expr.table is None and not schema.has_column(expr.name):
        return None
    return expr.name


def _conjunct_sketch(conjunct, binding, schema) -> cost.PredicateSketch:
    """One pushed conjunct as a neutral sketch (op "other" when opaque)."""
    if isinstance(conjunct, ast.Between) and not conjunct.negated:
        column = _local_column_name(conjunct.operand, binding, schema)
        if column is not None:
            return cost.PredicateSketch(
                column,
                "between",
                _literal_value(conjunct.low),
                high=_literal_value(conjunct.high),
            )
    if isinstance(conjunct, ast.IsNull):
        column = _local_column_name(conjunct.operand, binding, schema)
        if column is not None:
            return cost.PredicateSketch(
                column, "notnull" if conjunct.negated else "isnull"
            )
    if isinstance(conjunct, ast.InList) and not conjunct.negated:
        column = _local_column_name(conjunct.operand, binding, schema)
        if column is not None:
            return cost.PredicateSketch(column, "in", count=len(conjunct.items))
    if isinstance(conjunct, ast.Binary) and conjunct.op in ("=", "<", "<=", ">", ">="):
        flipped = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
        for operand, other, op in (
            (conjunct.left, conjunct.right, conjunct.op),
            (conjunct.right, conjunct.left, flipped[conjunct.op]),
        ):
            column = _local_column_name(operand, binding, schema)
            if column is not None and not isinstance(other, ast.ColumnRef):
                return cost.PredicateSketch(column, op, _literal_value(other))
    return cost.PredicateSketch("", "other")


def _temporal_sketches(scan: LogicalScan) -> List[cost.PredicateSketch]:
    """Temporal clauses as range sketches over the period's columns.

    ``AS OF t`` selects versions with ``begin <= t AND end > t``; overlap
    modes bound begin below the high end and end above the low end.  The
    per-partition statistics then price them naturally: a current
    partition's ``end`` column is pinned at END_OF_TIME so ``end > t``
    costs ~1.0 there, while a history partition prices both bounds from
    its closed intervals.
    """
    out: List[cost.PredicateSketch] = []
    for clause in scan.ref.temporal:
        period = _period_for(scan.schema, clause.period)
        if period is None or clause.mode == "all":
            continue
        low = _literal_value(clause.low)
        high = _literal_value(clause.high)
        if clause.mode == "as_of":
            out.append(cost.PredicateSketch(period.begin_column, "<=", low))
            out.append(cost.PredicateSketch(period.end_column, ">", low))
        elif clause.mode == "from_to":
            out.append(cost.PredicateSketch(period.begin_column, "<", high))
            out.append(cost.PredicateSketch(period.end_column, ">", low))
        else:  # between: inclusive upper bound
            out.append(cost.PredicateSketch(period.begin_column, "<=", high))
            out.append(cost.PredicateSketch(period.end_column, ">", low))
    return out


def _period_for(schema, name: str):
    if name == "system_time":
        return schema.system_period
    if name == "business_time":
        app = schema.application_periods
        return app[0] if app else None
    try:
        return schema.period(name)
    except CatalogError:
        return None


# ---------------------------------------------------------------------------
# join-order selection
# ---------------------------------------------------------------------------


def _order_joins(relation: LogicalNode, cost_based: bool, db=None):
    """Replace every LogicalProduct with a left-deep join chain.

    With *cost_based* the order comes from the cost model when statistics
    are available (see :func:`_cost_based_order`) and from the greedy
    smallest-relation heuristic otherwise; without it textual FROM order
    is kept.  Edges attach as soon as both sides are available; edges
    that never apply surface as a join-residual filter.
    """
    reordered = False

    def transform(node: LogicalNode) -> LogicalNode:
        nonlocal reordered
        if isinstance(node, LogicalFilter):
            child = transform(node.child)
            if child is node.child:
                return node
            return replace(node, child=child)
        if isinstance(node, LogicalProduct):
            reordered = True
            return _join_tree(node, cost_based, db)
        return node

    return transform(relation), reordered


def _join_tree(product: LogicalProduct, cost_based: bool, db=None) -> LogicalNode:
    units = list(product.units)
    ordered: Optional[List[LogicalNode]] = None
    prefix_rows: Optional[Tuple[int, ...]] = None
    metrics = getattr(db, "metrics", None) if db is not None else None
    if cost_based:
        plan = _cost_based_order(product, db)
        if plan is not None:
            ordered, prefix_rows = plan
            if metrics is not None:
                metrics.inc("plan.cost_based_joins")
        elif metrics is not None:
            metrics.inc("plan.greedy_joins")
    if ordered is not None:
        remaining = list(ordered)
    elif cost_based:
        remaining = sorted(units, key=lambda u: u.est_rows)
    else:
        remaining = list(units)
    current = remaining.pop(0)
    pending: List[Tuple[frozenset, ast.Expr]] = list(product.edges)
    step = 0
    while remaining:
        if ordered is not None:
            chosen = remaining.pop(0)
        else:
            # find a unit connected to `current` through at least one edge
            chosen = None
            for candidate in remaining:
                combined = current.bindings | candidate.bindings
                if any(
                    b <= combined and (b & candidate.bindings) and (b & current.bindings)
                    for b, _c in pending
                ):
                    chosen = candidate
                    break
            if chosen is None:
                chosen = remaining[0]
            remaining.remove(chosen)
        combined = current.bindings | chosen.bindings
        applicable = [c for b, c in pending if b <= combined]
        pending = [(b, c) for b, c in pending if c not in applicable]
        step += 1
        hint = prefix_rows[step] if prefix_rows is not None else None
        current = LogicalJoin(
            "inner", current, chosen, tuple(applicable), est_hint=hint
        )
    if pending:
        current = LogicalFilter(
            current, conjoin([c for _b, c in pending]), "join-residual"
        )
    return current


def _cost_based_order(product: LogicalProduct, db):
    """Cost-model join order, or None when the greedy path must run.

    Engages only when the product holds ≥ 2 units and at least one is a
    base-table scan whose estimate was refined from a valid ANALYZE
    snapshot — the no-statistics plan must stay byte-identical to the
    pre-statistics engine.
    """
    if db is None:
        return None
    units = list(product.units)
    if len(units) < 2:
        return None
    if not any(
        isinstance(u, LogicalScan) and u.est_source == "stats" for u in units
    ):
        return None
    sketches = []
    for index, unit in enumerate(units):
        ndv: Dict[Tuple[str, str], int] = {}
        if isinstance(unit, LogicalScan) and unit.est_source == "stats":
            snapshot = db.stats_for(unit.schema.name)
            if snapshot is not None:
                for column in unit.schema.column_names():
                    merged = snapshot.merged_column(column)
                    if merged is not None and merged.ndv > 0:
                        ndv[(unit.binding, column)] = merged.ndv
        sketches.append(
            cost.UnitSketch(
                index,
                frozenset(unit.bindings),
                float(max(1, unit.est_rows)),
                ndv,
            )
        )
    edges = [
        cost.EdgeSketch(frozenset(bindings), _equi_edge_keys(conjunct, units))
        for bindings, conjunct in product.edges
    ]
    result = cost.order_joins(sketches, edges)
    return [units[i] for i in result.order], result.prefix_rows


# ---------------------------------------------------------------------------
# constraint pruning (interval-domain abstract interpretation)
# ---------------------------------------------------------------------------


def _prune_constraints(relation: LogicalNode):
    """Prune provably-redundant temporal constraints per scan.

    Runs last, on the join-ordered tree, using the shared interval-domain
    engine (:mod:`..analyze_domains`).  Three actions, each justified by
    the lattice:

    * a scan whose constraint intersection is *empty* on some column is
      replaced by :class:`LogicalEmpty` (lowered to an ``EmptyScan``);
    * a pushed predicate whose interval contains the intersection of the
      remaining constraints is dropped (only exact, non-equality atoms —
      equalities drive primary-key and hash-index probes);
    * ``FROM..TO`` / ``BETWEEN`` clause literals are tightened to the
      predicate-implied bounds, shrinking what access paths must read.

    Emptiness then propagates upward (filter of empty, inner join with an
    empty side) so EXPLAIN shows the collapse at the highest sound node.
    """
    mapping = {}
    changed = False
    for scan in scans_in_order(relation):
        domains = scan_domain_map(scan)
        if not domains.contributions:
            continue
        empties = domains.empty_columns()
        if empties:
            (binding, column), _contributions = empties[0]
            mapping[id(scan)] = LogicalEmpty(
                scan, f"contradictory constraints on {binding}.{column}"
            )
            changed = True
            continue
        new_scan = scan
        drop = {id(c.source) for c in domains.redundant_predicates()}
        if drop:
            new_scan = replace(
                new_scan,
                pushed=tuple(c for c in new_scan.pushed if id(c) not in drop),
            )
        new_scan = _tighten_clauses(new_scan, domains)
        if new_scan is not scan:
            mapping[id(scan)] = new_scan
            changed = True
    if not changed:
        return relation, False
    relation = replace_scans(relation, mapping)
    return _lift_empty(relation), True


def _tighten_clauses(scan: LogicalScan, domains) -> LogicalScan:
    """Narrow range-clause literals to the predicate-implied bounds.

    Sound as a conjunction: the scan's predicates stay in place, so
    ``clause' = clause AND (bounds the predicates imply)`` selects the
    same rows — including NULL period ends, which the predicates that
    justified the tightening reject themselves.
    """
    clauses = []
    any_changed = False
    for clause in scan.ref.temporal:
        if clause.mode not in ("from_to", "between"):
            clauses.append(clause)
            continue
        period = _period_for(scan.schema, clause.period)
        low = _clause_literal(clause.low)
        high = _clause_literal(clause.high)
        if period is None or low is None or high is None:
            clauses.append(clause)
            continue
        begin = domains.predicate_domain((scan.binding, period.begin_column))
        end = domains.predicate_domain((scan.binding, period.end_column))
        new_low, new_high = low, high
        if begin.high is not None:
            # the clause constrains begin < high (from_to) / <= high (between)
            limit = begin.high + 1 if clause.mode == "from_to" else begin.high
            if limit < new_high:
                new_high = limit
        if end.low is not None:
            # both modes constrain end > low, i.e. end >= low + 1
            if end.low - 1 > new_low:
                new_low = end.low - 1
        if (new_low, new_high) == (low, high):
            clauses.append(clause)
            continue
        any_changed = True
        clauses.append(
            ast.copy_span(
                clause,
                replace(
                    clause,
                    low=ast.copy_span(clause.low, ast.Literal(new_low)),
                    high=ast.copy_span(clause.high, ast.Literal(new_high)),
                ),
            )
        )
    if not any_changed:
        return scan
    ref = ast.copy_span(scan.ref, replace(scan.ref, temporal=tuple(clauses)))
    return replace(scan, ref=ref)


def _clause_literal(expr):
    if isinstance(expr, ast.Literal) and isinstance(expr.value, int) and not isinstance(
        expr.value, bool
    ):
        return expr.value
    return None


def _lift_empty(node: LogicalNode) -> LogicalNode:
    """Propagate emptiness upward where it is sound to do so.

    Lifting wraps the rebuilt node, so the original subtree stays
    attached for layout resolution.  It only happens over subtrees whose
    layout is exact (scans all the way down) — derived tables expose
    best-effort column lists that must not decide an EmptyScan's width.
    """
    if isinstance(node, LogicalFilter):
        child = _lift_empty(node.child)
        out = node if child is node.child else replace(node, child=child)
        if isinstance(child, LogicalEmpty) and _exact_layout(out):
            return LogicalEmpty(out, child.reason)
        return out
    if isinstance(node, LogicalJoin):
        left = _lift_empty(node.left)
        right = _lift_empty(node.right)
        out = node
        if left is not node.left or right is not node.right:
            out = replace(node, left=left, right=right)
        reason = None
        if isinstance(left, LogicalEmpty):
            reason = left.reason
        elif node.kind != "left" and isinstance(right, LogicalEmpty):
            # a LEFT JOIN's empty right side still pads — never lifted
            reason = right.reason
        if reason is not None and _exact_layout(out):
            return LogicalEmpty(out, reason)
        return out
    if isinstance(node, LogicalProduct):
        units = tuple(_lift_empty(u) for u in node.units)
        out = node
        if any(a is not b for a, b in zip(units, node.units)):
            out = replace(node, units=units)
        for unit in units:
            if isinstance(unit, LogicalEmpty) and _exact_layout(out):
                return LogicalEmpty(out, unit.reason)
        return out
    return node


def _exact_layout(node: LogicalNode) -> bool:
    """True when ``unit_layout`` is exact for the whole subtree."""
    if isinstance(node, LogicalScan):
        return True
    if isinstance(node, (LogicalEmpty, LogicalFilter)):
        return _exact_layout(node.child)
    if isinstance(node, LogicalJoin):
        return _exact_layout(node.left) and _exact_layout(node.right)
    if isinstance(node, LogicalAlignJoin):
        return _exact_layout(node.left) and _exact_layout(node.right)
    if isinstance(node, LogicalProduct):
        return all(_exact_layout(u) for u in node.units)
    return False


def _equi_edge_keys(conjunct, units):
    """``((binding, column), (binding, column))`` for a two-column equi
    conjunct, else None (the cost model then uses a default selectivity)."""
    if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="):
        return None
    sides = []
    for expr in (conjunct.left, conjunct.right):
        if not isinstance(expr, ast.ColumnRef):
            return None
        binding = expr.table or _binding_of_unqualified(expr.name, units)
        if binding is None:
            return None
        sides.append((binding, expr.name))
    if sides[0][0] == sides[1][0]:
        return None
    return (sides[0], sides[1])


# ---------------------------------------------------------------------------
# native temporal operators: rewrite-shape fusion and dialect lowering
# ---------------------------------------------------------------------------
#
# The paper's sharpest finding is that temporal aggregation and temporal
# joins, missing from SQL:2011, are simulated via self-join rewrites that
# cost orders of magnitude more than a history scan.  ``temporal-fusion``
# (System E only) recognises the exact rewrite shapes the benchmark uses
# and replaces them with the native sweep-line / sort-merge operators;
# ``GROUP BY TEMPORAL(p)`` / ``TEMPORAL JOIN`` reach the same operators
# through explicit syntax on every profile.  The matchers are exported so
# the analyzer's TQ017 rule can flag fusable shapes on profiles without
# the rule.


def _normalize_ineq(conjunct):
    """(smaller, larger, strict) for a ``< <= > >=`` comparison, else None."""
    if not isinstance(conjunct, ast.Binary):
        return None
    if conjunct.op == "<":
        return conjunct.left, conjunct.right, True
    if conjunct.op == "<=":
        return conjunct.left, conjunct.right, False
    if conjunct.op == ">":
        return conjunct.right, conjunct.left, True
    if conjunct.op == ">=":
        return conjunct.right, conjunct.left, False
    return None


def _is_scan_col(expr, column, scan: LogicalScan) -> bool:
    return (
        isinstance(expr, ast.ColumnRef)
        and expr.name == column
        and (
            expr.table == scan.binding
            or (expr.table is None and scan.schema.has_column(column))
        )
    )


def _is_t_ref(expr, t_name, alias) -> bool:
    return (
        isinstance(expr, ast.ColumnRef)
        and expr.name == t_name
        and expr.table in (None, alias)
    )


def _agg_over_scan(agg: ast.Aggregate, scan: LogicalScan) -> bool:
    """True when the aggregate's argument reads only the scan's columns."""
    if agg.arg is None:
        return True
    for node in ast.walk_expr(agg.arg):
        if isinstance(
            node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery, ast.Star)
        ):
            return False
        if isinstance(node, ast.ColumnRef):
            if node.table is not None and node.table != scan.binding:
                return False
            if node.table is None and not scan.schema.has_column(node.name):
                return False
    return True


def _boundary_core(select: ast.Select):
    """Match ``SELECT <endpoint> AS t FROM <table> FOR <period> ALL`` —
    one core of the rewrite's boundary derived table.  Returns
    ``(table_name, endpoint_column, temporal_clause, output_name)``."""
    if (
        len(select.items) != 1
        or select.where is not None
        or select.group_by
        or select.having is not None
        or select.order_by
        or select.limit is not None
        or select.distinct
        or len(select.from_items) != 1
    ):
        return None
    item = select.items[0]
    if not isinstance(item.expr, ast.ColumnRef):
        return None
    ref = select.from_items[0]
    if not isinstance(ref, ast.TableRef) or len(ref.temporal) != 1:
        return None
    clause = ref.temporal[0]
    if clause.mode != "all":
        return None
    if item.expr.table is not None and item.expr.table != ref.binding:
        return None
    return ref.name, item.expr.name, clause, (item.alias or item.expr.name)


def match_temporal_aggregate_rewrite(select: ast.Select, relation: LogicalNode):
    """Detect the boundary-union temporal-aggregation rewrite.

    Shape (the corrected R3 family): a derived table unioning *both*
    period endpoints of a table joined back to a pristine scan of the
    same table on ``begin <= t AND t < end``, grouped by ``t``, with the
    select list containing only ``t`` and aggregates over the scan.
    Returns a match description for :func:`_fuse_temporal_ops` /
    the analyzer's TQ017 rule, or None.
    """
    if not isinstance(relation, LogicalJoin) or relation.kind != "inner":
        return None
    sides = (relation.left, relation.right)
    scan = next((s for s in sides if isinstance(s, LogicalScan)), None)
    derived = next((s for s in sides if isinstance(s, LogicalDerived)), None)
    if scan is None or derived is None or scan.pushed:
        return None
    dsel = derived.select
    if dsel.set_op is None or dsel.order_by or dsel.limit is not None:
        return None
    op_name, rhs, all_flag = dsel.set_op
    if op_name != "union" or all_flag or rhs.set_op is not None:
        return None
    left_core = ast.Select(
        items=dsel.items,
        from_items=dsel.from_items,
        where=dsel.where,
        group_by=dsel.group_by,
        having=dsel.having,
        distinct=dsel.distinct,
    )
    first = _boundary_core(left_core)
    second = _boundary_core(rhs)
    if first is None or second is None:
        return None
    table_a, col_a, clause_a, out_a = first
    table_b, col_b, clause_b, out_b = second
    if table_a != table_b or out_a != out_b:
        return None
    if (clause_a.period, clause_a.mode) != (clause_b.period, clause_b.mode):
        return None
    if scan.ref.name != table_a or len(scan.ref.temporal) != 1:
        return None
    sclause = scan.ref.temporal[0]
    if sclause.mode != "all" or sclause.period != clause_a.period:
        return None
    period = _period_for(scan.schema, clause_a.period)
    if period is None:
        return None
    if {col_a, col_b} != {period.begin_column, period.end_column}:
        return None
    t_name = out_a
    alias = derived.alias
    if len(relation.conjuncts) != 2:
        return None
    saw_begin = saw_end = False
    for conjunct in relation.conjuncts:
        norm = _normalize_ineq(conjunct)
        if norm is None:
            return None
        small, large, strict = norm
        if (
            not strict
            and _is_scan_col(small, period.begin_column, scan)
            and _is_t_ref(large, t_name, alias)
        ):
            saw_begin = True
        elif (
            strict
            and _is_t_ref(small, t_name, alias)
            and _is_scan_col(large, period.end_column, scan)
        ):
            saw_end = True
        else:
            return None
    if not (saw_begin and saw_end):
        return None
    if len(select.group_by) != 1 or not _is_t_ref(
        select.group_by[0], t_name, alias
    ):
        return None
    if select.having is not None or select.distinct:
        return None
    for item in select.items:
        if _is_t_ref(item.expr, t_name, alias):
            continue
        if isinstance(item.expr, ast.Aggregate) and _agg_over_scan(
            item.expr, scan
        ):
            continue
        return None
    for order_item in select.order_by:
        if _is_t_ref(order_item.expr, t_name, alias):
            continue
        if isinstance(order_item.expr, ast.Literal):
            continue
        return None
    return {
        "scan": scan,
        "t_name": t_name,
        "alias": alias,
        "period": clause_a.period,
        "period_def": period,
    }


def _scan_column_side(expr, left: LogicalScan, right: LogicalScan):
    if not isinstance(expr, ast.ColumnRef):
        return None
    if expr.table == left.binding:
        return ("left", expr.name) if left.schema.has_column(expr.name) else None
    if expr.table == right.binding:
        return ("right", expr.name) if right.schema.has_column(expr.name) else None
    if expr.table is None:
        in_left = left.schema.has_column(expr.name)
        in_right = right.schema.has_column(expr.name)
        if in_left and not in_right:
            return ("left", expr.name)
        if in_right and not in_left:
            return ("right", expr.name)
    return None


def _period_with_columns(schema, begin_column, end_column):
    for period in schema.periods:
        if (
            period.begin_column == begin_column
            and period.end_column == end_column
        ):
            return period
    return None


def match_align_join_rewrite(select: ast.Select, relation: LogicalNode):
    """Detect the inequality-pair temporal-join rewrite.

    Shape (the R1/R5 family): an inner join of two scans whose condition
    is equality keys plus exactly the strict overlap pair ``L.begin <
    R.end AND R.begin < L.end`` over one declared period per side (same
    kind on both).  Fusion is gated on an order-insensitive select list —
    global count/min/max aggregates only — because the align merge emits
    pairs in a different order than the nested loop it replaces.
    Returns a match description or None.
    """
    if not isinstance(relation, LogicalJoin) or relation.kind != "inner":
        return None
    left, right = relation.left, relation.right
    if not (isinstance(left, LogicalScan) and isinstance(right, LogicalScan)):
        return None
    equi: List[ast.Expr] = []
    ineqs: List[ast.Expr] = []
    for conjunct in relation.conjuncts:
        if _equi_edge_keys(conjunct, (left, right)) is not None:
            equi.append(conjunct)
        else:
            ineqs.append(conjunct)
    if len(ineqs) != 2:
        return None
    pair = []
    for conjunct in ineqs:
        norm = _normalize_ineq(conjunct)
        if norm is None or not norm[2]:
            return None
        side_small = _scan_column_side(norm[0], left, right)
        side_large = _scan_column_side(norm[1], left, right)
        if (
            side_small is None
            or side_large is None
            or side_small[0] == side_large[0]
        ):
            return None
        pair.append((side_small, side_large))
    lpart = next((p for p in pair if p[0][0] == "left"), None)
    rpart = next((p for p in pair if p[0][0] == "right"), None)
    if lpart is None or rpart is None:
        return None
    left_begin, right_end = lpart[0][1], lpart[1][1]
    right_begin, left_end = rpart[0][1], rpart[1][1]
    left_period = _period_with_columns(left.schema, left_begin, left_end)
    right_period = _period_with_columns(right.schema, right_begin, right_end)
    if (
        left_period is None
        or right_period is None
        or left_period.is_system != right_period.is_system
    ):
        return None
    if select.group_by or select.having is not None or select.distinct:
        return None
    if not select.items:
        return None
    for item in select.items:
        if not isinstance(item.expr, ast.Aggregate):
            return None
        if item.expr.func not in ("count", "min", "max"):
            return None
    return {
        "equi": tuple(equi),
        "left_period": left_period,
        "right_period": right_period,
        "period": "system_time" if left_period.is_system else "business_time",
    }


def _rewrite_tagg_items(select: ast.Select, is_group_key, register):
    """Select/order lists rewritten against the ``__tagg`` layout.

    *is_group_key* recognises the grouping expression; *register* maps an
    aggregate to its accumulator index.  Aliases are pinned so output
    column names stay what the un-fused query produced.
    """
    items = []
    for index, item in enumerate(select.items):
        if is_group_key(item.expr):
            rewritten: ast.Expr = ast.ColumnRef("t", table="__tagg")
        else:
            rewritten = ast.ColumnRef(
                f"__a{register(item.expr)}", table="__tagg"
            )
        alias = item.alias
        if alias is None:
            alias = (
                item.expr.name
                if isinstance(item.expr, ast.ColumnRef)
                else f"col{index}"
            )
        items.append(ast.SelectItem(rewritten, alias))
    order_by = [
        ast.OrderItem(ast.ColumnRef("t", table="__tagg"), item.ascending)
        if is_group_key(item.expr)
        else item
        for item in select.order_by
    ]
    return items, order_by


def _fuse_temporal_ops(select: ast.Select, relation: LogicalNode, db):
    """Apply whichever native-operator fusion matches (at most one can)."""
    metrics = getattr(db, "metrics", None) if db is not None else None
    match = match_temporal_aggregate_rewrite(select, relation)
    if match is not None:
        scan = match["scan"]
        period = match["period_def"]
        aggregates: List[ast.Aggregate] = []

        def register(agg):
            aggregates.append(agg)
            return len(aggregates) - 1

        items, order_by = _rewrite_tagg_items(
            select,
            lambda expr: _is_t_ref(expr, match["t_name"], match["alias"]),
            register,
        )
        relation = LogicalTemporalAggregate(
            scan,
            ast.ColumnRef(period.begin_column, table=scan.binding),
            ast.ColumnRef(period.end_column, table=scan.binding),
            tuple(aggregates),
            period=match["period"],
        )
        select = ast.Select(
            items=items,
            from_items=select.from_items,
            where=select.where,
            group_by=[],
            having=None,
            order_by=order_by,
            limit=select.limit,
            offset=select.offset,
            distinct=select.distinct,
            set_op=select.set_op,
        )
        if metrics is not None:
            metrics.inc("plan.temporal_fusions")
        return select, relation, True
    match = match_align_join_rewrite(select, relation)
    if match is not None:
        left, right = relation.left, relation.right
        lperiod, rperiod = match["left_period"], match["right_period"]
        relation = LogicalAlignJoin(
            left,
            right,
            match["equi"],
            left_period=(
                ast.ColumnRef(lperiod.begin_column, table=left.binding),
                ast.ColumnRef(lperiod.end_column, table=left.binding),
            ),
            right_period=(
                ast.ColumnRef(rperiod.begin_column, table=right.binding),
                ast.ColumnRef(rperiod.end_column, table=right.binding),
            ),
            period=match["period"],
        )
        if metrics is not None:
            metrics.inc("plan.temporal_fusions")
        return select, relation, True
    return select, relation, False


def _lower_temporal_group(select: ast.Select, relation: LogicalNode):
    """Lower ``GROUP BY TEMPORAL(p)`` to :class:`LogicalTemporalAggregate`.

    Explicit dialect syntax, honoured on every profile.  The relation
    (filters included — WHERE precedes grouping) becomes the sweep's
    input; the select list may contain only ``TEMPORAL(p)`` and
    aggregates over the input's columns.
    """
    groups = [
        expr for expr in select.group_by if isinstance(expr, ast.TemporalGroup)
    ]
    if not groups:
        for item in select.items:
            if any(
                isinstance(node, ast.TemporalGroup)
                for node in ast.walk_expr(item.expr)
            ):
                raise ProgrammingError(
                    "TEMPORAL(...) in the select list requires GROUP BY "
                    "TEMPORAL(...)"
                )
        return select, relation
    if len(select.group_by) != 1:
        raise ProgrammingError(
            "GROUP BY TEMPORAL(...) cannot be combined with other "
            "grouping expressions"
        )
    if select.having is not None:
        raise ProgrammingError("HAVING is not supported with GROUP BY TEMPORAL")
    period_name = groups[0].period
    scans = scans_in_order(relation)
    if len(scans) != 1:
        raise ProgrammingError(
            "GROUP BY TEMPORAL(...) requires a single-table FROM clause"
        )
    scan = scans[0]
    period = _period_for(scan.schema, period_name)
    if period is None:
        raise ProgrammingError(
            f"table {scan.schema.name!r} has no period {period_name!r}"
        )
    aggregates: List[ast.Aggregate] = []

    def register(agg):
        if not isinstance(agg, ast.Aggregate):
            raise ProgrammingError(
                "the select list of a GROUP BY TEMPORAL query may contain "
                "only TEMPORAL(...) and aggregates"
            )
        aggregates.append(agg)
        return len(aggregates) - 1

    items, order_by = _rewrite_tagg_items(
        select, lambda expr: isinstance(expr, ast.TemporalGroup), register
    )
    fused = LogicalTemporalAggregate(
        relation,
        ast.ColumnRef(period.begin_column, table=scan.binding),
        ast.ColumnRef(period.end_column, table=scan.binding),
        tuple(aggregates),
        period=period_name,
    )
    lowered = ast.Select(
        items=items,
        from_items=select.from_items,
        where=select.where,
        group_by=[],
        having=None,
        order_by=order_by,
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
        set_op=select.set_op,
    )
    return lowered, fused
