"""Statement dispatch: parse → plan → execute, for all statement kinds.

DML statements follow the rewrite strategy the paper documents: an UPDATE
or DELETE first *finds* the affected current versions with an ordinary
query over the current partition, then applies the temporal row operations
(invalidate / re-insert / split) through :mod:`repro.engine.temporal`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import temporal
from .catalog import Column, IndexDef, TableSchema, PeriodDef
from .errors import NotSupportedError, ProgrammingError, QueryCancelled, QueryTimeout
from .expr import Env, Scope, compile_expr
from .plan.context import ExecutionContext, ResourceCounters
from .plan.planner import Planner, PlannedQuery
from .sql import ast, parse_statement
from .types import SqlType


@dataclass
class Result:
    """Outcome of one statement execution."""

    rows: List[tuple] = field(default_factory=list)
    columns: List[str] = field(default_factory=list)
    rowcount: int = -1

    def scalar(self):
        """First column of the first row (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)


def _normalize_params(params) -> Dict:
    if params is None:
        return {}
    if isinstance(params, dict):
        return {str(k).lower(): v for k, v in params.items()}
    return dict(enumerate(params))


class SqlEngine:
    """Per-database SQL façade with an LRU plan cache.

    Plans are cached per SQL text and validated against the catalog versions
    of the objects they reference: DDL on a table invalidates exactly the
    plans that touch it, everything else stays cached.  Overflow evicts the
    least recently used entry instead of clearing the whole cache.
    """

    def __init__(self, db):
        self.db = db
        self.planner = Planner(db)
        self._plan_cache: "OrderedDict[str, PlannedQuery]" = OrderedDict()
        self.plan_cache_limit = 256
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0
        #: plan of the most recent SELECT, for the slow-query log snapshot
        self._last_planned: Optional[PlannedQuery] = None
        #: plan-cache outcome of the most recent statement (True hit /
        #: False miss / None not applicable), for the telemetry store
        self._cache_outcome: Optional[bool] = None
        #: whether _run_planned should collect whole-statement resource
        #: totals, and where it left them
        self._collect_resources = False
        self._last_resources: Optional[ResourceCounters] = None

    # -- plan cache ----------------------------------------------------------

    def _cached_plan(self, sql: str) -> Optional[PlannedQuery]:
        metrics = self.db.metrics
        planned = self._plan_cache.get(sql)
        if planned is None:
            self.cache_misses += 1
            metrics.inc("plan.cache_miss")
            return None
        catalog = self.db.catalog
        # per-name checks only run when some DDL happened since this plan
        # was last validated; the common hit path is one int comparison
        if planned.checked_at_version != catalog.version:
            for name, version in planned.dependencies.items():
                if catalog.version_of(name) != version:
                    del self._plan_cache[sql]
                    self.cache_invalidations += 1
                    self.cache_misses += 1
                    metrics.inc("plan.cache_invalidate")
                    metrics.inc("plan.cache_miss")
                    return None
            planned.checked_at_version = catalog.version
        self._plan_cache.move_to_end(sql)
        self.cache_hits += 1
        metrics.inc("plan.cache_hit")
        return planned

    def _store_plan(self, sql: str, planned: PlannedQuery):
        while len(self._plan_cache) >= self.plan_cache_limit:
            self._plan_cache.popitem(last=False)
            self.db.metrics.inc("plan.cache_evict")
        planned.checked_at_version = self.db.catalog.version
        self._plan_cache[sql] = planned

    def cache_stats(self) -> Dict[str, int]:
        return {
            "size": len(self._plan_cache),
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "invalidations": self.cache_invalidations,
        }

    # -- public API ----------------------------------------------------------

    def execute(self, sql, params=None, timeout_s=None) -> Result:
        tracer = self.db.tracer
        telemetry = self.db.telemetry
        tracking = telemetry.enabled and isinstance(sql, str)
        self._collect_resources = tracking
        if not tracer.active and not tracking:
            # hot path: no sinks, no slow-query log, no statement stats —
            # zero observability overhead
            return self._dispatch(sql, params, timeout_s)
        self._last_planned = None
        self._cache_outcome = None
        self._last_resources = None
        sql_text = sql if isinstance(sql, str) else type(sql).__name__
        root = tracer.start("query", sql=sql_text) if tracer.active else None
        started = time.perf_counter()
        try:
            result = self._dispatch(sql, params, timeout_s)
        except BaseException as exc:
            if root is not None:
                tracer.finish(root, aborted=True)
                self._record_slow_query(root, sql, error=type(exc).__name__)
            if tracking:
                timed_out = isinstance(exc, (QueryTimeout, QueryCancelled))
                telemetry.record(
                    sql,
                    time.perf_counter() - started,
                    cache_hit=self._cache_outcome,
                    timed_out=timed_out,
                    aborted=not timed_out,
                    resources=self._last_resources,
                )
            raise
        elapsed = time.perf_counter() - started
        if root is not None:
            root.set(rows=result.rowcount)
            tracer.finish(root)
            self._record_slow_query(root, sql)
        if tracking:
            telemetry.record(
                sql,
                elapsed,
                rows=max(result.rowcount, 0),
                cache_hit=self._cache_outcome,
                resources=self._last_resources,
            )
        return result

    def _dispatch(self, sql, params, timeout_s) -> Result:
        stmt = None
        tracer = self.db.tracer
        if isinstance(sql, str):
            with tracer.span("plan_cache.lookup") as span:
                cached = self._cached_plan(sql)
                span.set(outcome="hit" if cached is not None else "miss")
            if cached is not None:
                self._cache_outcome = True
                self._last_planned = cached
                return self._run_planned(cached, params, timeout_s)
            with tracer.span("parse"):
                stmt = parse_statement(sql)
        else:
            stmt = sql  # pre-parsed AST
        if isinstance(stmt, ast.Select):
            planned = self.planner.plan_select(stmt)
            if isinstance(sql, str):
                self._store_plan(sql, planned)
                self._cache_outcome = False
            self._last_planned = planned
            return self._run_planned(planned, params, timeout_s)
        if isinstance(stmt, ast.Explain):
            return self._execute_explain(
                stmt, params, timeout_s, sql if isinstance(sql, str) else None
            )
        if isinstance(stmt, ast.Analyze):
            return self._execute_analyze(stmt)
        if isinstance(stmt, ast.Insert):
            return self._execute_insert(stmt, params)
        if isinstance(stmt, ast.Update):
            return self._execute_update(stmt, params)
        if isinstance(stmt, ast.Delete):
            return self._execute_delete(stmt, params)
        if isinstance(stmt, ast.CreateTable):
            return self._execute_create_table(stmt)
        if isinstance(stmt, ast.CreateIndex):
            return self._execute_create_index(stmt)
        if isinstance(stmt, ast.CreateView):
            self.db.create_view(stmt.name, stmt.select)
            return Result(rowcount=0)
        if isinstance(stmt, ast.DropView):
            self.db.drop_view(stmt.name)
            return Result(rowcount=0)
        if isinstance(stmt, ast.DropTable):
            self.db.drop_table(stmt.name)
            return Result(rowcount=0)
        if isinstance(stmt, ast.DropIndex):
            self.db.drop_index(stmt.name)
            return Result(rowcount=0)
        raise ProgrammingError(f"cannot execute statement {stmt!r}")

    def _run_planned(self, planned: PlannedQuery, params, timeout_s) -> Result:
        tracer = self.db.tracer
        tracing = tracer.active
        resources = ResourceCounters() if self._collect_resources else None
        self._last_resources = resources
        if timeout_s is None and not tracing and resources is None:
            env = Env(_normalize_params(params))
        else:
            env = ExecutionContext.begin(
                _normalize_params(params),
                timeout_s=timeout_s,
                tracer=tracer if tracing else None,
                resources=resources,
            )
        started = time.perf_counter()
        with tracer.span("execute") as span:
            rows = planned.rows(env)
            span.set(rows=len(rows))
        self.db.metrics.observe("query.execute_s", time.perf_counter() - started)
        return Result(rows, planned.column_names, len(rows))

    def _record_slow_query(self, root, sql, error=None):
        """Append a slow-query-log entry when *root* breached the threshold."""
        log = self.db.slow_query_log
        if log is None or root is None or root.duration is None:
            return
        if root.duration < log.threshold_s:
            return
        planned = self._last_planned
        diagnostics = []
        if isinstance(sql, str) and planned is not None:
            try:
                diagnostics = [
                    {"code": d.code, "severity": d.severity,
                     "rendered": d.render()}
                    for d in self.lint(sql)
                ]
            except Exception:
                diagnostics = []  # advisory: never let lint mask the query
        log.record({
            "database": self.db.name,
            "sql": sql if isinstance(sql, str) else type(sql).__name__,
            "duration_s": root.duration,
            "threshold_s": log.threshold_s,
            "error": error,
            "plan": planned.explain() if planned is not None else None,
            "spans": root.to_dict(recursive=True),
            "diagnostics": diagnostics,
        })
        self.db.metrics.inc("slowlog.entries")

    def explain(self, sql, params=None) -> str:
        stmt = parse_statement(sql) if isinstance(sql, str) else sql
        if isinstance(stmt, ast.Explain):
            stmt = stmt.statement
        if not isinstance(stmt, ast.Select):
            raise ProgrammingError("EXPLAIN is only supported for SELECT")
        planned = self.planner.plan_select(stmt)
        return planned.explain()

    def explain_analyze(self, sql, params=None) -> str:
        was_wrapped = False
        stmt = parse_statement(sql) if isinstance(sql, str) else sql
        if isinstance(stmt, ast.Explain):
            stmt = stmt.statement
            was_wrapped = True
        if not isinstance(stmt, ast.Select):
            raise ProgrammingError("EXPLAIN ANALYZE is only supported for SELECT")
        # The plan cache is keyed by statement text, so when the caller hands
        # us the bare SELECT text we consult (and populate) the same cache
        # execute() uses — the reported hit/miss is the outcome an ordinary
        # execution of this text would have seen.  EXPLAIN-wrapped text keys
        # would collide with the inner SELECT's results, so those bypass.
        outcome = None
        if isinstance(sql, str) and not was_wrapped:
            planned = self._cached_plan(sql)
            outcome = "hit" if planned is not None else "miss"
            if planned is None:
                planned = self.planner.plan_select(stmt)
                self._store_plan(sql, planned)
        else:
            planned = self.planner.plan_select(stmt)
        ctx = ExecutionContext.begin(
            _normalize_params(params), collect_metrics=True
        )
        planned.rows(ctx)
        text = planned.explain_analyze(ctx.metrics)
        if outcome is not None:
            text += f"\nplan cache: {outcome}"
        return text

    def lint(self, sql):
        """Static diagnostics for a SELECT (see :mod:`repro.engine.analyze`)."""
        from .analyze import analyze_select, analyze_sql  # deferred: cycle

        if isinstance(sql, str):
            return analyze_sql(self.db, sql)
        if isinstance(sql, ast.Explain):
            sql = sql.statement
        if not isinstance(sql, ast.Select):
            raise ProgrammingError("the analyzer only lints SELECT statements")
        return analyze_select(self.db, sql)

    def _execute_explain(self, stmt: ast.Explain, params, timeout_s, sql=None) -> Result:
        # EXPLAIN output is never cached: it is a diagnostic, and ANALYZE
        # runs the query anyway
        if stmt.lint:
            from .analyze import analyze_select  # deferred: cycle

            diagnostics = analyze_select(self.db, stmt.statement, sql=sql)
            lines = []
            for diagnostic in diagnostics:
                lines.extend(diagnostic.render().split("\n"))
            if not lines:
                lines = ["no diagnostics"]
            if stmt.analyze:
                lines.append("")
        else:
            lines = []
        if not stmt.lint or stmt.analyze:
            lines.extend(self._explain_lines(stmt, params, timeout_s))
        return Result([(line,) for line in lines], ["plan"], len(lines))

    def _explain_lines(self, stmt: ast.Explain, params, timeout_s) -> List[str]:
        if stmt.analyze:
            planned = self.planner.plan_select(stmt.statement)
            ctx = ExecutionContext.begin(
                _normalize_params(params),
                timeout_s=timeout_s,
                collect_metrics=True,
            )
            planned.rows(ctx)
            text = planned.explain_analyze(ctx.metrics)
            text += "\nplan cache: bypass (EXPLAIN statements are never cached)"
        else:
            text = self.explain(stmt.statement)
        return text.split("\n")

    def _execute_analyze(self, stmt: ast.Analyze) -> Result:
        """ANALYZE [TABLE] [name]: collect statistics, report per partition."""
        collected = self.db.analyze(stmt.table)
        rows = []
        for snapshot in collected:
            for name in sorted(snapshot.partitions):
                part = snapshot.partitions[name]
                rows.append(
                    (snapshot.table, name, part.row_count, len(part.columns))
                )
        return Result(
            rows, ["table", "partition", "row_count", "columns_analyzed"], len(rows)
        )

    # -- DML ---------------------------------------------------------------------

    def _execute_insert(self, stmt: ast.Insert, params) -> Result:
        table = self.db.table(stmt.table)
        schema = table.schema
        env = Env(_normalize_params(params))
        scope = Scope([])
        if stmt.select is not None:
            planned = self.planner.plan_select(stmt.select)
            source_rows = planned.rows(env)
        else:
            source_rows = [
                tuple(compile_expr(e, scope)((), env) for e in row)
                for row in stmt.rows
            ]
        columns = stmt.columns or schema.column_names()
        count = 0
        for values in source_rows:
            if len(values) != len(columns):
                raise ProgrammingError(
                    f"INSERT arity mismatch: {len(columns)} columns, "
                    f"{len(values)} values"
                )
            self.db.insert_row(stmt.table, dict(zip(columns, values)))
            count += 1
        return Result(rowcount=count)

    def _find_affected_keys(self, table, where, env):
        """Distinct primary keys of current versions matching *where*."""
        schema = table.schema
        if not schema.primary_key:
            raise NotSupportedError(
                f"DML on table {schema.name} requires a primary key"
            )
        layout = [(schema.name, column) for column in schema.column_names()]
        scope = Scope(layout)
        predicate = (
            compile_expr(where, scope, self.planner._subquery_compiler)
            if where is not None
            else None
        )
        keys = []
        seen = set()
        # implicit-current semantics: on single-table layouts (System D)
        # closed versions are interleaved and must not count as affected
        for row in temporal.snapshot_rows(table, None):
            if predicate is not None and predicate(tuple(row), env) is not True:
                continue
            key = schema.key_of(row)
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return keys

    def _execute_update(self, stmt: ast.Update, params) -> Result:
        table = self.db.table(stmt.table)
        schema = table.schema
        env = Env(_normalize_params(params))
        keys = self._find_affected_keys(table, stmt.where, env)
        layout = [(schema.name, column) for column in schema.column_names()]
        scope = Scope(layout)
        assignment_fns = [
            (column, compile_expr(expr, scope)) for column, expr in stmt.assignments
        ]
        count = 0
        for key in keys:
            # evaluate SET expressions against the (first) current version
            versions = temporal.current_versions_for_key(table, key)
            if not versions:
                continue
            base_row = tuple(versions[0][1])
            changes = {
                column: fn(base_row, env) for column, fn in assignment_fns
            }
            if stmt.portion is not None:
                period_name = self._portion_period(schema, stmt.portion)
                low = compile_expr(stmt.portion.low, Scope([]))((), env)
                high = compile_expr(stmt.portion.high, Scope([]))((), env)
                count += self.db.sequenced_update_by_key(
                    stmt.table, key, changes, period_name, low, high
                )
            else:
                count += self.db.update_by_key(stmt.table, key, changes)
        return Result(rowcount=count)

    def _execute_delete(self, stmt: ast.Delete, params) -> Result:
        table = self.db.table(stmt.table)
        schema = table.schema
        env = Env(_normalize_params(params))
        keys = self._find_affected_keys(table, stmt.where, env)
        count = 0
        for key in keys:
            if stmt.portion is not None:
                period_name = self._portion_period(schema, stmt.portion)
                low = compile_expr(stmt.portion.low, Scope([]))((), env)
                high = compile_expr(stmt.portion.high, Scope([]))((), env)
                count += self.db.sequenced_delete_by_key(
                    stmt.table, key, period_name, low, high
                )
            else:
                count += self.db.delete_by_key(stmt.table, key)
        return Result(rowcount=count)

    def _portion_period(self, schema, portion: ast.Portion) -> str:
        if portion.period == "business_time":
            app = schema.application_periods
            if not app:
                raise ProgrammingError(
                    f"table {schema.name} has no application period"
                )
            return app[0].name
        return schema.period(portion.period).name

    # -- DDL -------------------------------------------------------------------

    def _execute_create_table(self, stmt: ast.CreateTable) -> Result:
        columns = [
            Column(c.name, SqlType(c.type_name), nullable=c.nullable)
            for c in stmt.columns
        ]
        periods = [
            PeriodDef(
                p.name,
                p.begin_column,
                p.end_column,
                is_system=(p.name == "system_time"),
            )
            for p in stmt.periods
        ]
        schema = TableSchema(
            name=stmt.name,
            columns=columns,
            primary_key=tuple(stmt.primary_key),
            periods=periods,
        )
        self.db.create_table(schema)
        return Result(rowcount=0)

    def _execute_create_index(self, stmt: ast.CreateIndex) -> Result:
        index = IndexDef(
            name=stmt.name,
            table=stmt.table,
            columns=tuple(stmt.columns),
            kind=stmt.kind,
            partition=stmt.partition,
        )
        self.db.create_index(index)
        return Result(rowcount=0)
