"""SQL front end: lexer, AST and recursive-descent parser."""

from .parser import parse_statement
from . import ast

__all__ = ["parse_statement", "ast"]
