"""Abstract syntax tree for the engine's SQL dialect.

The dialect is SQL:2011-flavoured: plain relational SQL plus the temporal
table clauses (``FOR SYSTEM_TIME AS OF`` and friends) and sequenced DML
(``FOR PORTION OF``).  Every node is a small dataclass; the planner walks
these directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of all expression nodes."""


# ---------------------------------------------------------------------------
# source spans
#
# Spans are stored out-of-band in a ``_span`` instance attribute (set with
# ``object.__setattr__`` so frozen dataclasses accept it).  They never
# participate in equality or hashing, so rewrites and plan caching are
# unaffected; they only feed error messages and analyzer diagnostics.
# ---------------------------------------------------------------------------


def set_span(node, start: int, end: int):
    """Attach a (start, end) character span to an AST node; returns it."""
    object.__setattr__(node, "_span", (start, end))
    return node


def span_of(node):
    """The (start, end) span of a node, or None when it has none."""
    return getattr(node, "_span", None)


def copy_span(source, target):
    """Carry *source*'s span over to *target* (a rewritten node) unless the
    target already has a narrower one of its own; returns *target*."""
    if target is not None and getattr(target, "_span", None) is None:
        span = getattr(source, "_span", None)
        if span is not None:
            object.__setattr__(target, "_span", span)
    return target


@dataclass(frozen=True)
class Literal(Expr):
    value: object  # int, float, str, bool or None


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None  # qualifier (table name or alias)

    def __str__(self):
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Param(Expr):
    """A statement parameter: positional (index) or named (name)."""

    index: Optional[int] = None
    name: Optional[str] = None


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "-", "+", "not"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # arithmetic, comparison, "and", "or", "||"
    left: Expr
    right: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Aggregate(Expr):
    func: str  # sum | avg | count | min | max
    arg: Optional[Expr]  # None only for count(*)
    distinct: bool = False


@dataclass(frozen=True)
class TemporalGroup(Expr):
    """``TEMPORAL(period)`` in GROUP BY / select list — the constant
    intervals of *period* as grouping unit (native temporal aggregation)."""

    period: str

    def __str__(self):
        return f"TEMPORAL({self.period})"


@dataclass(frozen=True)
class Case(Expr):
    branches: Tuple[Tuple[Expr, Expr], ...]  # (condition, result)
    default: Optional[Expr] = None


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: Tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expr):
    operand: Expr
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Exists(Expr):
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    subquery: "Select"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class IntervalLiteral(Expr):
    """``INTERVAL '3' MONTH`` — value in the stated unit."""

    value: int
    unit: str  # "day" | "month" | "year"


# ---------------------------------------------------------------------------
# table references and temporal clauses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TemporalClause:
    """One ``FOR <period> ...`` clause attached to a table reference.

    ``period`` is ``"system_time"``, ``"business_time"`` or the name of a
    declared application period.  ``mode`` is one of:

    * ``as_of`` — snapshot at ``low``
    * ``from_to`` — half-open range ``[low, high)``
    * ``between`` — closed range ``[low, high]``
    * ``all`` — the entire dimension (``FOR SYSTEM_TIME ALL``)
    """

    period: str
    mode: str
    low: Optional[Expr] = None
    high: Optional[Expr] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None
    temporal: Tuple[TemporalClause, ...] = ()

    @property
    def binding(self):
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable:
    select: "Select"
    alias: str

    @property
    def binding(self):
        return self.alias


@dataclass(frozen=True)
class Join:
    kind: str  # "inner" | "left" | "cross" | "temporal"
    left: "FromItem"
    right: "FromItem"
    on: Optional[Expr] = None
    period: Optional[str] = None  # TEMPORAL JOIN ... OVERLAPS (period)


FromItem = Union[TableRef, DerivedTable, Join]


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass
class Select:
    items: List[SelectItem]
    from_items: List[FromItem] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    distinct: bool = False
    set_op: Optional[Tuple[str, "Select", bool]] = None  # (op, rhs, all)


@dataclass
class Insert:
    table: str
    columns: List[str]
    rows: List[List[Expr]] = field(default_factory=list)
    select: Optional[Select] = None


@dataclass(frozen=True)
class Portion:
    """``FOR PORTION OF <period> FROM <low> TO <high>``."""

    period: str
    low: Expr
    high: Expr


@dataclass
class Update:
    table: str
    assignments: List[Tuple[str, Expr]]
    where: Optional[Expr] = None
    portion: Optional[Portion] = None


@dataclass
class Delete:
    table: str
    where: Optional[Expr] = None
    portion: Optional[Portion] = None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    nullable: bool = True


@dataclass(frozen=True)
class PeriodClause:
    name: str  # "system_time" or an application period name
    begin_column: str
    end_column: str


@dataclass
class CreateTable:
    name: str
    columns: List[ColumnDef]
    primary_key: List[str] = field(default_factory=list)
    periods: List[PeriodClause] = field(default_factory=list)


@dataclass
class CreateIndex:
    name: str
    table: str
    columns: List[str]
    kind: str = "btree"
    partition: str = "current"


@dataclass
class CreateView:
    name: str
    select: "Select"


@dataclass
class DropView:
    name: str


@dataclass
class DropTable:
    name: str


@dataclass
class DropIndex:
    name: str


@dataclass
class Explain:
    """``EXPLAIN [ANALYZE | LINT] <select>`` — plan (and optionally execute
    or statically lint) a query, returning one-column rows.

    ``EXPLAIN (LINT)`` runs the static analyzer over the rewritten logical
    plan and returns its diagnostics instead of the operator tree; the
    parenthesised option list also accepts ``(ANALYZE)`` and
    ``(ANALYZE, LINT)``.
    """

    statement: "Select"
    analyze: bool = False
    lint: bool = False


@dataclass
class Analyze:
    """``ANALYZE [TABLE] [name]`` — collect per-column statistics.

    With no table name, every table in the database is analyzed.  The
    snapshots feed the cost-based join ordering (docs/COST_MODEL.md).
    """

    table: Optional[str] = None


Statement = Union[
    Select, Insert, Update, Delete,
    CreateTable, CreateIndex, CreateView,
    DropTable, DropIndex, DropView,
    Explain, Analyze,
]


def walk_expr(expr):
    """Depth-first traversal over an expression tree (yields every node)."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, Unary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, Aggregate):
        yield from walk_expr(expr.arg)
    elif isinstance(expr, Case):
        for cond, result in expr.branches:
            yield from walk_expr(cond)
            yield from walk_expr(result)
        yield from walk_expr(expr.default)
    elif isinstance(expr, InList):
        yield from walk_expr(expr.operand)
        for item in expr.items:
            yield from walk_expr(item)
    elif isinstance(expr, (InSubquery,)):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Between):
        yield from walk_expr(expr.operand)
        yield from walk_expr(expr.low)
        yield from walk_expr(expr.high)
    elif isinstance(expr, Like):
        yield from walk_expr(expr.operand)
        yield from walk_expr(expr.pattern)
    elif isinstance(expr, IsNull):
        yield from walk_expr(expr.operand)


def contains_aggregate(expr) -> bool:
    """True if any node in *expr* is an aggregate call."""
    return any(isinstance(node, Aggregate) for node in walk_expr(expr))
