"""Hand-written SQL tokenizer.

Produces a flat token list; the parser indexes into it.  Keywords are
case-insensitive and normalised to lowercase; identifiers keep their
lowercase form (the benchmark schema is all lowercase); string literals
keep their exact contents.

Every token carries its source span: ``position`` (start offset),
``end`` (exclusive offset) and the 1-based ``line``/``column`` of the
start.  The parser threads these spans onto AST nodes so the static
analyzer and error messages can point at the offending SQL text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import SqlSyntaxError

KEYWORDS = frozenset(
    """
    select from where group by having order asc desc limit offset distinct
    as and or not in exists between like is null case when then else end
    inner left outer cross join on union all insert into values update set
    delete create table index drop primary key period for system_time
    business_time portion of as_of to date timestamp interval day month year
    true false using btree hash rtree history current extract substring
    count sum avg min max top view explain analyze lint
    """.split()
)

SIMPLE_OPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
    "(": "(",
    ")": ")",
    ",": ",",
    ".": ".",
    ";": ";",
    "=": "=",
    "?": "?",
}

TWO_CHAR_OPS = {"<=", ">=", "<>", "!=", "||"}


@dataclass(frozen=True)
class Token:
    kind: str  # keyword | ident | number | string | op | param | end
    value: object
    position: int
    end: int = -1  # exclusive end offset (-1: unknown, single-char assumed)
    line: int = 1
    column: int = 1


def line_col(sql: str, position: int) -> tuple:
    """1-based (line, column) of a character offset in *sql*."""
    position = max(0, min(position, len(sql)))
    line = sql.count("\n", 0, position) + 1
    last_newline = sql.rfind("\n", 0, position)
    return line, position - last_newline


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []

    def emit(kind, value, start, end):
        line, column = line_col(sql, start)
        tokens.append(Token(kind, value, start, end, line, column))

    def error(message, position):
        line, column = line_col(sql, position)
        raise SqlSyntaxError(message, position=position, line=line, column=column)

    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        # -- comments ---------------------------------------------------
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                error("unterminated comment", i)
            i = end + 2
            continue
        # -- strings ----------------------------------------------------
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    error("unterminated string literal", i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            emit("string", "".join(parts), i, j + 1)
            i = j + 1
            continue
        # -- numbers ----------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            has_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not has_dot)):
                if sql[j] == ".":
                    # a dot not followed by a digit is a separate token
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    has_dot = True
                j += 1
            text = sql[i:j]
            value = float(text) if has_dot else int(text)
            emit("number", value, i, j)
            i = j
            continue
        # -- named parameters --------------------------------------------
        if ch == ":":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            if j == i + 1:
                error("lone ':'", i)
            emit("param", sql[i + 1:j].lower(), i, j)
            i = j
            continue
        # -- identifiers / keywords ---------------------------------------
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j].lower()
            if word in KEYWORDS:
                emit("keyword", word, i, j)
            else:
                emit("ident", word, i, j)
            i = j
            continue
        # -- quoted identifiers -------------------------------------------
        if ch == '"':
            j = sql.find('"', i + 1)
            if j == -1:
                error("unterminated quoted identifier", i)
            emit("ident", sql[i + 1:j].lower(), i, j + 1)
            i = j + 1
            continue
        # -- operators ------------------------------------------------------
        two = sql[i:i + 2]
        if two in TWO_CHAR_OPS:
            op = "<>" if two == "!=" else two
            emit("op", op, i, i + 2)
            i += 2
            continue
        if ch in "<>":
            emit("op", ch, i, i + 1)
            i += 1
            continue
        if ch in SIMPLE_OPS:
            kind = "param" if ch == "?" else "op"
            value = None if ch == "?" else ch
            emit(kind, value, i, i + 1)
            i += 1
            continue
        error(f"unexpected character {ch!r}", i)
    emit("end", None, n, n)
    return tokens
