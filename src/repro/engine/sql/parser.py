"""Recursive-descent parser for the engine's SQL dialect.

Covers the full query surface of the TPC-BiH workload: SELECT with joins,
grouping, correlated subqueries, EXISTS/IN, CASE, LIKE, BETWEEN, date and
interval arithmetic — plus the SQL:2011 temporal additions (``FOR
SYSTEM_TIME/BUSINESS_TIME`` table clauses, ``FOR PORTION OF`` DML) and DDL
with ``PERIOD`` declarations.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import SqlSyntaxError
from . import ast
from .lexer import Token, tokenize

AGGREGATES = ("count", "sum", "avg", "min", "max")
COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")
TYPE_NAMES = {
    "int": "integer",
    "integer": "integer",
    "bigint": "integer",
    "smallint": "integer",
    "decimal": "decimal",
    "numeric": "decimal",
    "float": "decimal",
    "double": "decimal",
    "real": "decimal",
    "varchar": "varchar",
    "char": "varchar",
    "text": "varchar",
    "date": "date",
    "timestamp": "timestamp",
    "boolean": "boolean",
}


class Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self._param_counter = 0

    # -- token helpers ---------------------------------------------------

    def error(self, message, token=None, fragment=False) -> SqlSyntaxError:
        """Build a syntax error pointing at *token* (default: current)."""
        token = token or self.peek()
        return SqlSyntaxError(
            message,
            position=token.position,
            fragment=(
                self.sql[token.position:token.position + 24] if fragment else None
            ),
            line=token.line,
            column=token.column,
        )

    def _spanned(self, node, start_token: Token):
        """Attach the source span [start_token, last consumed token) to a
        node that does not already carry a narrower one."""
        if node is not None and ast.span_of(node) is None:
            last = self.tokens[self.pos - 1] if self.pos > 0 else start_token
            end = last.end if last.end >= 0 else last.position
            ast.set_span(node, start_token.position, max(end, start_token.position))
        return node

    def peek(self, offset=0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "end":
            self.pos += 1
        return token

    def check(self, kind, value=None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def check_keyword(self, *words) -> bool:
        return self.peek().kind == "keyword" and self.peek().value in words

    def accept(self, kind, value=None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def accept_keyword(self, *words) -> Optional[Token]:
        if self.check_keyword(*words):
            return self.advance()
        return None

    def expect(self, kind, value=None) -> Token:
        if not self.check(kind, value):
            want = value if value is not None else kind
            token = self.peek()
            raise self.error(
                f"expected {want!r}, found {token.value!r}", token, fragment=True
            )
        return self.advance()

    def expect_keyword(self, word) -> Token:
        return self.expect("keyword", word)

    def expect_name(self) -> str:
        """An identifier, allowing non-reserved keywords used as names."""
        token = self.peek()
        if token.kind == "ident":
            return self.advance().value
        if token.kind == "keyword" and token.value in (
            "date", "timestamp", "year", "month", "day", "history", "current",
            "key", "index", "count", "sum", "avg", "min", "max", "period",
        ):
            return self.advance().value
        raise self.error(f"expected identifier, found {token.value!r}", token)

    # -- statements ------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self.check_keyword("explain"):
            stmt = self.parse_explain()
        elif self.check_keyword("analyze"):
            stmt = self.parse_analyze()
        elif self.check_keyword("select"):
            stmt = self.parse_select()
        elif self.check_keyword("insert"):
            stmt = self.parse_insert()
        elif self.check_keyword("update"):
            stmt = self.parse_update()
        elif self.check_keyword("delete"):
            stmt = self.parse_delete()
        elif self.check_keyword("create"):
            stmt = self.parse_create()
        elif self.check_keyword("drop"):
            stmt = self.parse_drop()
        else:
            raise self.error(
                f"unexpected start of statement: {self.peek().value!r}"
            )
        self.accept("op", ";")
        if not self.check("end"):
            raise self.error(
                f"trailing input after statement: {self.peek().value!r}"
            )
        return stmt

    def parse_analyze(self) -> ast.Analyze:
        """``ANALYZE [TABLE] [name]`` — statistics collection."""
        self.expect_keyword("analyze")
        self.accept_keyword("table")
        name = None
        if not (self.check("end") or self.check("op", ";")):
            name = self.expect_name()
        return ast.Analyze(table=name)

    # -- SELECT -------------------------------------------------------------

    def parse_explain(self) -> ast.Explain:
        self.expect_keyword("explain")
        analyze = lint = False
        if self.accept("op", "("):
            # parenthesised option list: EXPLAIN (ANALYZE), (LINT), (ANALYZE, LINT)
            while True:
                if self.accept_keyword("analyze"):
                    analyze = True
                elif self.accept_keyword("lint"):
                    lint = True
                else:
                    raise self.error(
                        f"unknown EXPLAIN option {self.peek().value!r}"
                    )
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        elif self.accept_keyword("analyze"):
            analyze = True
        elif self.accept_keyword("lint"):
            lint = True
        if not self.check_keyword("select"):
            raise self.error("EXPLAIN only supports SELECT statements")
        return ast.Explain(self.parse_select(), analyze=analyze, lint=lint)

    def parse_select(self) -> ast.Select:
        select = self._parse_select_core()
        while self.accept_keyword("union"):
            all_flag = bool(self.accept_keyword("all"))
            rhs = self._parse_select_core()
            # a trailing ORDER BY / LIMIT binds to the whole union
            hoist_order, hoist_limit, hoist_offset = rhs.order_by, rhs.limit, rhs.offset
            rhs.order_by, rhs.limit, rhs.offset = [], None, None
            select = _fold_union(select, rhs, all_flag)
            if hoist_order:
                select.order_by = hoist_order
            if hoist_limit is not None:
                select.limit, select.offset = hoist_limit, hoist_offset
        # ORDER BY / LIMIT may follow a union chain
        if self.check_keyword("order"):
            select.order_by = self._parse_order_by()
        if self.accept_keyword("limit"):
            select.limit = self.parse_expr()
            if self.accept_keyword("offset"):
                select.offset = self.parse_expr()
        return select

    def _parse_select_core(self) -> ast.Select:
        self.expect_keyword("select")
        distinct = bool(self.accept_keyword("distinct"))
        self.accept_keyword("all")
        items = [self._parse_select_item()]
        while self.accept("op", ","):
            items.append(self._parse_select_item())
        select = ast.Select(items=items, distinct=distinct)
        if self.accept_keyword("from"):
            select.from_items = [self._parse_from_item()]
            while self.accept("op", ","):
                select.from_items.append(self._parse_from_item())
        if self.accept_keyword("where"):
            select.where = self.parse_expr()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            select.group_by = [self.parse_expr()]
            while self.accept("op", ","):
                select.group_by.append(self.parse_expr())
        if self.accept_keyword("having"):
            select.having = self.parse_expr()
        if self.check_keyword("order"):
            select.order_by = self._parse_order_by()
        if self.accept_keyword("limit"):
            select.limit = self.parse_expr()
            if self.accept_keyword("offset"):
                select.offset = self.parse_expr()
        return select

    def _parse_order_by(self) -> List[ast.OrderItem]:
        self.expect_keyword("order")
        self.expect_keyword("by")
        out = [self._parse_order_item()]
        while self.accept("op", ","):
            out.append(self._parse_order_item())
        return out

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return ast.OrderItem(expr, ascending)

    def _parse_select_item(self) -> ast.SelectItem:
        if self.check("op", "*"):
            token = self.advance()
            return ast.SelectItem(self._spanned(ast.Star(), token))
        # alias.*
        if (
            self.check("ident")
            and self.peek(1).kind == "op"
            and self.peek(1).value == "."
            and self.peek(2).kind == "op"
            and self.peek(2).value == "*"
        ):
            token = self.peek()
            table = self.advance().value
            self.advance()
            self.advance()
            return ast.SelectItem(self._spanned(ast.Star(table=table), token))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_name()
        elif self.check("ident"):
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    # -- FROM ------------------------------------------------------------------

    def _parse_from_item(self) -> ast.FromItem:
        item = self._parse_table_primary()
        while True:
            if self.check_keyword("join") or self.check_keyword("inner"):
                self.accept_keyword("inner")
                self.expect_keyword("join")
                right = self._parse_table_primary()
                self.expect_keyword("on")
                on = self.parse_expr()
                item = ast.Join("inner", item, right, on)
            elif self.check_keyword("left"):
                self.advance()
                self.accept_keyword("outer")
                self.expect_keyword("join")
                right = self._parse_table_primary()
                self.expect_keyword("on")
                on = self.parse_expr()
                item = ast.Join("left", item, right, on)
            elif self.check_keyword("cross"):
                self.advance()
                self.expect_keyword("join")
                right = self._parse_table_primary()
                item = ast.Join("cross", item, right, None)
            elif self._check_temporal_join():
                self.advance()  # TEMPORAL (lexes as an identifier)
                self.expect_keyword("join")
                right = self._parse_table_primary()
                self.expect_keyword("on")
                on = self.parse_expr()
                period = None
                if self.check("ident", "overlaps"):
                    self.advance()
                    self.expect("op", "(")
                    period = self._parse_period_name()
                    self.expect("op", ")")
                item = ast.Join("temporal", item, right, on, period)
            else:
                return item

    def _check_temporal_join(self) -> bool:
        return (
            self.check("ident", "temporal")
            and self.peek(1).kind == "keyword"
            and self.peek(1).value == "join"
        )

    def _parse_period_name(self) -> str:
        token = self.peek()
        if token.kind == "keyword" and token.value in (
            "system_time", "business_time",
        ):
            return self.advance().value
        return self.expect_name()

    def _parse_table_primary(self) -> ast.FromItem:
        if self.accept("op", "("):
            if self.check_keyword("select"):
                select = self.parse_select()
                self.expect("op", ")")
                self.accept_keyword("as")
                alias = self.expect_name()
                return ast.DerivedTable(select, alias)
            item = self._parse_from_item()
            self.expect("op", ")")
            return item
        start = self.peek()
        name = self.expect_name()
        temporal = []
        while self.check_keyword("for"):
            clause = self._try_parse_temporal_clause()
            if clause is None:
                break
            temporal.append(clause)
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_name()
        elif self.check("ident") and not self._check_temporal_join():
            # a bare TEMPORAL before JOIN is the join keyword, not an alias
            alias = self.advance().value
        # temporal clauses may also follow the alias (Teradata style)
        while self.check_keyword("for"):
            clause = self._try_parse_temporal_clause()
            if clause is None:
                break
            temporal.append(clause)
        return self._spanned(ast.TableRef(name, alias, tuple(temporal)), start)

    def _try_parse_temporal_clause(self) -> Optional[ast.TemporalClause]:
        start = self.pos
        start_token = self.peek()
        self.expect_keyword("for")
        token = self.peek()
        if token.kind == "keyword" and token.value in ("system_time", "business_time"):
            period = self.advance().value
        elif token.kind == "keyword" and token.value == "period":
            self.advance()
            period = self.expect_name()
        elif token.kind == "ident":
            period = self.advance().value
        else:
            self.pos = start  # not a temporal clause (e.g. FOR UPDATE)
            return None
        if self.accept_keyword("all"):
            clause = ast.TemporalClause(period, "all")
        elif self.accept_keyword("as"):
            self.expect_keyword("of")
            low = self.parse_expr()
            clause = ast.TemporalClause(period, "as_of", low)
        elif self.accept_keyword("from"):
            low = self.parse_expr()
            self.expect_keyword("to")
            high = self.parse_expr()
            clause = ast.TemporalClause(period, "from_to", low, high)
        elif self.accept_keyword("between"):
            # additive level: a bare parse_expr would swallow the AND
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            clause = ast.TemporalClause(period, "between", low, high)
        else:
            raise self.error(f"bad temporal clause near {self.peek().value!r}")
        return self._spanned(clause, start_token)

    # -- DML -----------------------------------------------------------------

    def parse_insert(self) -> ast.Insert:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_name()
        columns: List[str] = []
        if self.accept("op", "("):
            columns.append(self.expect_name())
            while self.accept("op", ","):
                columns.append(self.expect_name())
            self.expect("op", ")")
        if self.accept_keyword("values"):
            rows = [self._parse_value_row()]
            while self.accept("op", ","):
                rows.append(self._parse_value_row())
            return ast.Insert(table, columns, rows=rows)
        select = self.parse_select()
        return ast.Insert(table, columns, select=select)

    def _parse_value_row(self) -> List[ast.Expr]:
        self.expect("op", "(")
        row = [self.parse_expr()]
        while self.accept("op", ","):
            row.append(self.parse_expr())
        self.expect("op", ")")
        return row

    def _parse_portion(self) -> Optional[ast.Portion]:
        if not self.check_keyword("for"):
            return None
        self.advance()
        self.expect_keyword("portion")
        self.expect_keyword("of")
        if self.check_keyword("business_time"):
            period = self.advance().value
        else:
            period = self.expect_name()
        self.expect_keyword("from")
        low = self.parse_expr()
        self.expect_keyword("to")
        high = self.parse_expr()
        return ast.Portion(period, low, high)

    def parse_update(self) -> ast.Update:
        self.expect_keyword("update")
        table = self.expect_name()
        portion = self._parse_portion()
        self.expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self.accept("op", ","):
            assignments.append(self._parse_assignment())
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        return ast.Update(table, assignments, where, portion)

    def _parse_assignment(self):
        column = self.expect_name()
        self.expect("op", "=")
        return (column, self.parse_expr())

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_name()
        portion = self._parse_portion()
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        return ast.Delete(table, where, portion)

    # -- DDL -------------------------------------------------------------------

    def parse_create(self):
        self.expect_keyword("create")
        if self.accept_keyword("table"):
            return self._parse_create_table()
        if self.accept_keyword("index"):
            return self._parse_create_index()
        if self.accept_keyword("view"):
            name = self.expect_name()
            self.expect_keyword("as")
            return ast.CreateView(name, self.parse_select())
        raise self.error(
            f"expected TABLE, INDEX or VIEW after CREATE, found {self.peek().value!r}"
        )

    def _parse_create_table(self) -> ast.CreateTable:
        name = self.expect_name()
        self.expect("op", "(")
        stmt = ast.CreateTable(name, [])
        while True:
            if self.check_keyword("primary"):
                self.advance()
                self.expect_keyword("key")
                self.expect("op", "(")
                stmt.primary_key.append(self.expect_name())
                while self.accept("op", ","):
                    stmt.primary_key.append(self.expect_name())
                self.expect("op", ")")
            elif self.check_keyword("period"):
                self.advance()
                self.accept_keyword("for")
                if self.check_keyword("system_time") or self.check_keyword("business_time"):
                    pname = self.advance().value
                else:
                    pname = self.expect_name()
                self.expect("op", "(")
                begin = self.expect_name()
                self.expect("op", ",")
                end = self.expect_name()
                self.expect("op", ")")
                stmt.periods.append(ast.PeriodClause(pname, begin, end))
            else:
                col_name = self.expect_name()
                type_word = self.expect_name() if not self.check("keyword") else self.advance().value
                type_name = TYPE_NAMES.get(type_word)
                if type_name is None:
                    raise self.error(f"unknown type {type_word!r}")
                if self.accept("op", "("):
                    self.expect("number")  # length/precision, ignored
                    if self.accept("op", ","):
                        self.expect("number")
                    self.expect("op", ")")
                nullable = True
                if self.check_keyword("not"):
                    self.advance()
                    self.expect_keyword("null")
                    nullable = False
                stmt.columns.append(ast.ColumnDef(col_name, type_name, nullable))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        return stmt

    def _parse_create_index(self) -> ast.CreateIndex:
        name = self.expect_name()
        self.expect_keyword("on")
        table = self.expect_name()
        partition = "current"
        if self.accept_keyword("history"):
            partition = "history"
        self.expect("op", "(")
        columns = [self.expect_name()]
        while self.accept("op", ","):
            columns.append(self.expect_name())
        self.expect("op", ")")
        kind = "btree"
        if self.accept_keyword("using"):
            token = self.advance()
            if token.value not in ("btree", "hash", "rtree"):
                raise self.error(f"unknown index kind {token.value!r}", token)
            kind = token.value
        if self.accept_keyword("on"):
            token = self.advance()
            if token.value not in ("history", "current"):
                raise self.error(f"unknown partition {token.value!r}", token)
            partition = token.value
        return ast.CreateIndex(name, table, columns, kind, partition)

    def parse_drop(self):
        self.expect_keyword("drop")
        if self.accept_keyword("table"):
            return ast.DropTable(self.expect_name())
        if self.accept_keyword("index"):
            return ast.DropIndex(self.expect_name())
        if self.accept_keyword("view"):
            return ast.DropView(self.expect_name())
        raise self.error(
            f"expected TABLE or INDEX after DROP, found {self.peek().value!r}"
        )

    # -- expressions (precedence climbing) -------------------------------------

    def parse_expr(self) -> ast.Expr:
        start = self.peek()
        return self._spanned(self._parse_or(), start)

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.accept_keyword("or"):
            left = ast.Binary("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.accept_keyword("and"):
            left = ast.Binary("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        start = self.peek()
        if self.accept_keyword("not"):
            return self._spanned(ast.Unary("not", self._parse_not()), start)
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        start = self.peek()
        return self._spanned(self._parse_predicate_inner(), start)

    def _parse_predicate_inner(self) -> ast.Expr:
        left = self._parse_additive()
        negated = bool(self.accept_keyword("not"))
        if self.check("op") and self.peek().value in COMPARISONS:
            if negated:
                raise self.error("NOT before comparison operator")
            op = self.advance().value
            right = self._parse_additive()
            return ast.Binary(op, left, right)
        if self.accept_keyword("between"):
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self.accept_keyword("like"):
            pattern = self._parse_additive()
            return ast.Like(left, pattern, negated)
        if self.accept_keyword("in"):
            self.expect("op", "(")
            if self.check_keyword("select"):
                subquery = self.parse_select()
                self.expect("op", ")")
                return ast.InSubquery(left, subquery, negated)
            items = [self.parse_expr()]
            while self.accept("op", ","):
                items.append(self.parse_expr())
            self.expect("op", ")")
            return ast.InList(left, tuple(items), negated)
        if self.accept_keyword("is"):
            inner_neg = bool(self.accept_keyword("not"))
            self.expect_keyword("null")
            node = ast.IsNull(left, inner_neg)
            return ast.Unary("not", node) if negated else node
        if negated:
            raise self.error("dangling NOT in expression")
        return left

    def _parse_additive(self) -> ast.Expr:
        start = self.peek()
        return self._spanned(self._parse_additive_inner(), start)

    def _parse_additive_inner(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            if self.check("op") and self.peek().value in ("+", "-", "||"):
                op = self.advance().value
                left = ast.Binary(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            if self.check("op") and self.peek().value in ("*", "/", "%"):
                op = self.advance().value
                left = ast.Binary(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self.check("op") and self.peek().value in ("-", "+"):
            op = self.advance().value
            return ast.Unary(op, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        start = self.peek()
        return self._spanned(self._parse_primary_inner(), start)

    def _parse_primary_inner(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "param":
            self.advance()
            if token.value is None:
                param = ast.Param(index=self._param_counter)
                self._param_counter += 1
                return param
            return ast.Param(name=token.value)
        if token.kind == "keyword":
            return self._parse_keyword_primary(token)
        if token.kind == "ident":
            return self._parse_ident_primary()
        if self.accept("op", "("):
            if self.check_keyword("select"):
                subquery = self.parse_select()
                self.expect("op", ")")
                return ast.ScalarSubquery(subquery)
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise self.error(f"unexpected token {token.value!r} in expression", token)

    def _parse_keyword_primary(self, token) -> ast.Expr:
        word = token.value
        if word in ("true", "false"):
            self.advance()
            return ast.Literal(word == "true")
        if word == "null":
            self.advance()
            return ast.Literal(None)
        if word == "case":
            return self._parse_case()
        if word == "exists":
            self.advance()
            self.expect("op", "(")
            subquery = self.parse_select()
            self.expect("op", ")")
            return ast.Exists(subquery)
        if word in ("date", "timestamp"):
            # DATE '1994-01-01' literal, or a bare column named date/timestamp
            if self.peek(1).kind == "string":
                self.advance()
                value = self.advance().value
                return ast.FuncCall(word, (ast.Literal(value),))
            return self._parse_ident_primary()
        if word == "interval":
            self.advance()
            value_token = self.advance()
            if value_token.kind not in ("string", "number"):
                raise self.error("INTERVAL needs a quantity", value_token)
            value = int(value_token.value)
            unit_token = self.advance()
            if unit_token.value not in ("day", "month", "year"):
                raise self.error(f"bad interval unit {unit_token.value!r}", unit_token)
            return ast.IntervalLiteral(value, unit_token.value)
        if word == "extract":
            self.advance()
            self.expect("op", "(")
            field_token = self.advance()
            if field_token.value not in ("year", "month", "day"):
                raise self.error(f"bad EXTRACT field {field_token.value!r}", field_token)
            self.expect_keyword("from")
            arg = self.parse_expr()
            self.expect("op", ")")
            return ast.FuncCall("extract", (ast.Literal(field_token.value), arg))
        if word == "substring":
            self.advance()
            self.expect("op", "(")
            arg = self.parse_expr()
            if self.accept_keyword("from"):
                start = self.parse_expr()
                length = None
                if self.accept_keyword("for"):
                    length = self.parse_expr()
            else:
                self.expect("op", ",")
                start = self.parse_expr()
                length = None
                if self.accept("op", ","):
                    length = self.parse_expr()
            self.expect("op", ")")
            args = (arg, start) + ((length,) if length is not None else ())
            return ast.FuncCall("substring", args)
        if word in AGGREGATES:
            self.advance()
            self.expect("op", "(")
            distinct = bool(self.accept_keyword("distinct"))
            if word == "count" and self.accept("op", "*"):
                self.expect("op", ")")
                return ast.Aggregate("count", None, distinct)
            arg = self.parse_expr()
            self.expect("op", ")")
            return ast.Aggregate(word, arg, distinct)
        if word in ("current",):
            return self._parse_ident_primary()
        raise self.error(f"unexpected keyword {word!r} in expression", token)

    def _parse_case(self) -> ast.Case:
        self.expect_keyword("case")
        branches = []
        while self.accept_keyword("when"):
            cond = self.parse_expr()
            self.expect_keyword("then")
            result = self.parse_expr()
            branches.append((cond, result))
        if not branches:
            raise self.error("CASE without WHEN branch")
        default = None
        if self.accept_keyword("else"):
            default = self.parse_expr()
        self.expect_keyword("end")
        return ast.Case(tuple(branches), default)

    def _parse_ident_primary(self) -> ast.Expr:
        name = self.expect_name()
        # function call?
        if self.check("op", "("):
            if name == "temporal":
                # TEMPORAL(period) — native temporal grouping unit; the
                # period names lex as keywords, so the generic arg parse
                # below would reject them.
                self.advance()
                period = self._parse_period_name()
                self.expect("op", ")")
                return ast.TemporalGroup(period)
            self.advance()
            args = []
            if not self.check("op", ")"):
                args.append(self.parse_expr())
                while self.accept("op", ","):
                    args.append(self.parse_expr())
            self.expect("op", ")")
            return ast.FuncCall(name, tuple(args))
        # qualified column?
        if self.check("op", "."):
            self.advance()
            column = self.expect_name()
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)


def _fold_union(left: ast.Select, right: ast.Select, all_flag: bool) -> ast.Select:
    node = left
    while node.set_op is not None:
        node = node.set_op[1]
    node.set_op = ("union", right, all_flag)
    return left


def parse_statement(sql: str) -> ast.Statement:
    """Parse one SQL statement into its AST."""
    return Parser(sql).parse_statement()
