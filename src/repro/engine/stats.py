"""Per-column statistics: the raw material of the cost model.

``ANALYZE [TABLE]`` (or :meth:`Database.analyze`) scans every partition of
a table and records, per column: non-null count, null count, number of
distinct values, min/max, and an equi-width histogram over numeric
domains.  Statistics are collected *per partition* because the paper's
systems split current and history storage (§5.2) and the two populations
differ exactly where it matters — a history partition's ``sys_end``
column spans closed intervals while the current partition's is pinned at
``END_OF_TIME`` — so temporal-predicate selectivities (AS OF, OVERLAPS)
only make sense partition by partition.

Statistics are stored in the catalog and invalidated the same way cached
plans are (PR 1): the ``ANALYZE`` run bumps the table's catalog version
(which also forces cached plans to replan with the new statistics), and
the snapshot records both that version and the table's mutation marker.
DDL moves the catalog version, DML moves the mutation marker; either
drift makes :meth:`Database.stats_for` report the snapshot as stale and
the planner falls back to the pre-statistics greedy heuristics.

This module sits beside the storage layer: it imports nothing from
``engine/sql`` or ``engine/plan`` so the cost model (:mod:`.plan.cost`)
can consume its dataclasses without dragging the parser in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: number of equi-width buckets collected for numeric columns
HISTOGRAM_BUCKETS = 16


@dataclass(frozen=True)
class ColumnStats:
    """Statistics of one column within one partition."""

    count: int                  # non-null values observed
    nulls: int                  # NULL values observed
    ndv: int                    # number of distinct non-null values
    min_value: object = None
    max_value: object = None
    #: equi-width buckets ``(low, high, count)`` over numeric domains;
    #: empty when the column is non-numeric or constant
    histogram: Tuple[Tuple[float, float, int], ...] = ()

    @property
    def null_fraction(self) -> float:
        total = self.count + self.nulls
        return (self.nulls / total) if total else 0.0


@dataclass
class PartitionStats:
    """Row count plus per-column statistics of one storage partition."""

    partition: str
    row_count: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)


@dataclass
class TableStats:
    """One ANALYZE snapshot of a table, all partitions included."""

    table: str
    partitions: Dict[str, PartitionStats] = field(default_factory=dict)
    #: catalog version of the table when the snapshot was taken
    catalog_version: int = 0
    #: storage mutation marker (inserts + invalidations + plain writes)
    mutation_marker: int = 0

    @property
    def row_count(self) -> int:
        return sum(p.row_count for p in self.partitions.values())

    def partition(self, name: str) -> Optional[PartitionStats]:
        return self.partitions.get(name)

    def column(self, partition: str, name: str) -> Optional[ColumnStats]:
        part = self.partitions.get(partition)
        return part.columns.get(name) if part is not None else None

    def merged_column(self, name: str) -> Optional[ColumnStats]:
        """Column statistics folded across partitions (for join NDV).

        NDV is approximated by the largest per-partition NDV — current and
        history versions of the same key overlap heavily, so summing would
        overcount badly; the max is the conservative under-count.
        """
        parts = [p.columns[name] for p in self.partitions.values() if name in p.columns]
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        mins = [p.min_value for p in parts if p.min_value is not None]
        maxes = [p.max_value for p in parts if p.max_value is not None]
        try:
            low = min(mins) if mins else None
            high = max(maxes) if maxes else None
        except TypeError:
            low = high = None
        return ColumnStats(
            count=sum(p.count for p in parts),
            nulls=sum(p.nulls for p in parts),
            ndv=max(p.ndv for p in parts),
            min_value=low,
            max_value=high,
        )


def mutation_marker(table) -> int:
    """Monotone DML marker of a table: any write moves it forward."""
    stats = table.stats
    return stats.inserts + stats.invalidations + stats.plain_writes


def _column_stats(values: List[object], buckets: int) -> ColumnStats:
    non_null = [v for v in values if v is not None]
    nulls = len(values) - len(non_null)
    distinct = set(non_null)
    low = high = None
    if non_null:
        try:
            low = min(non_null)
            high = max(non_null)
        except TypeError:
            low = high = None  # mixed types: no order statistics
    histogram: Tuple[Tuple[float, float, int], ...] = ()
    numeric = (
        low is not None
        and isinstance(low, (int, float))
        and isinstance(high, (int, float))
        and not isinstance(low, bool)
        and not isinstance(high, bool)
        and high > low
    )
    if numeric:
        width = (high - low) / buckets
        counts = [0] * buckets
        for value in non_null:
            slot = min(buckets - 1, int((value - low) / width))
            counts[slot] += 1
        histogram = tuple(
            (low + i * width, low + (i + 1) * width, counts[i])
            for i in range(buckets)
        )
    return ColumnStats(
        count=len(non_null),
        nulls=nulls,
        ndv=len(distinct),
        min_value=low,
        max_value=high,
        histogram=histogram,
    )


def collect_table_stats(table, buckets: int = HISTOGRAM_BUCKETS) -> TableStats:
    """Scan every partition of *table* and compute its statistics."""
    schema = table.schema
    column_names = schema.column_names()
    out = TableStats(table=schema.name)
    for name in table.partition_names():
        rows = [row for _rid, row in table.scan_partition(name, need_temporal=True)]
        part = PartitionStats(partition=name, row_count=len(rows))
        for position, column in enumerate(column_names):
            part.columns[column] = _column_stats(
                [row[position] for row in rows], buckets
            )
        out.partitions[name] = part
    return out
