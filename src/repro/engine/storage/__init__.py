"""Storage layer: row store, delta/main column store, bitemporal tables."""

from .column_store import ColumnStore
from .row_store import RowStore
from .versioned import StorageOptions, VersionedTable

__all__ = ["RowStore", "ColumnStore", "VersionedTable", "StorageOptions"]
