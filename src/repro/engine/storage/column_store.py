"""A delta/main column store (the System C / SAP HANA archetype, §2.6).

Writes land in an unsorted, row-wise *delta*; a *merge* operation folds the
delta into dictionary-encoded *main* column vectors.  Scans stream the main
vectors column-at-a-time and then replay the delta, which is why the paper's
System C is fast at scans, insensitive to B-Tree indexes, and pays a small
merge cost during loading.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..batch import Batch


class _Dictionary:
    """Per-column dictionary encoding (value <-> code)."""

    def __init__(self):
        self._codes: Dict[Any, int] = {}
        self._values: List[Any] = []

    def encode(self, value) -> int:
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def decode(self, code):
        return self._values[code]

    def __len__(self):
        return len(self._values)


class ColumnStore:
    """Columnar storage with delta/main split and explicit merge."""

    def __init__(self, column_count, merge_threshold=8192, metrics=None):
        self._column_count = column_count
        self._merge_threshold = merge_threshold
        self._metrics = metrics  # optional obs.MetricsRegistry
        self._dictionaries = [_Dictionary() for _ in range(column_count)]
        self._main: List[List[int]] = [[] for _ in range(column_count)]
        self._main_deleted: List[bool] = []
        self._delta: List[Optional[list]] = []
        self._merge_count = 0

    def __len__(self):
        live_main = sum(1 for d in self._main_deleted if not d)
        live_delta = sum(1 for row in self._delta if row is not None)
        return live_main + live_delta

    @property
    def delta_size(self):
        return len(self._delta)

    @property
    def main_size(self):
        return len(self._main[0]) if self._main else 0

    @property
    def merge_count(self):
        return self._merge_count

    # -- writes ------------------------------------------------------------

    def append(self, row) -> int:
        """Append *row* to the delta; rid is main_size + delta offset."""
        if len(row) != self._column_count:
            raise ValueError("row arity mismatch")
        rid = self.main_size + len(self._delta)
        self._delta.append(list(row))
        if len(self._delta) >= self._merge_threshold:
            self.merge()
        return rid

    def update_in_place(self, rid, row):
        main_size = self.main_size
        if rid < main_size:
            # rewrite the encoded cells
            for col, value in enumerate(row):
                self._main[col][rid] = self._dictionaries[col].encode(value)
        else:
            self._delta[rid - main_size] = list(row)

    def delete(self, rid) -> bool:
        main_size = self.main_size
        if rid < main_size:
            if self._main_deleted[rid]:
                return False
            self._main_deleted[rid] = True
            return True
        offset = rid - main_size
        if offset >= len(self._delta) or self._delta[offset] is None:
            return False
        self._delta[offset] = None
        return True

    def merge(self):
        """Fold the delta into main (preserving rids: delta follows main)."""
        if not self._delta:
            return
        for row in self._delta:
            if row is None:
                # keep the slot to preserve rid arithmetic, mark deleted
                for col in range(self._column_count):
                    self._main[col].append(0)
                self._main_deleted.append(True)
            else:
                for col, value in enumerate(row):
                    self._main[col].append(self._dictionaries[col].encode(value))
                self._main_deleted.append(False)
        self._delta = []
        self._merge_count += 1
        if self._metrics is not None:
            self._metrics.inc("storage.column_merges")

    # -- reads ---------------------------------------------------------------

    def fetch(self, rid) -> Optional[list]:
        main_size = self.main_size
        if rid < main_size:
            if self._main_deleted[rid]:
                return None
            return [
                self._dictionaries[col].decode(self._main[col][rid])
                for col in range(self._column_count)
            ]
        offset = rid - main_size
        if 0 <= offset < len(self._delta):
            row = self._delta[offset]
            return list(row) if row is not None else None
        return None

    def scan(self) -> Iterator[Tuple[int, list]]:
        """(rid, row) over main then delta, skipping deleted rows."""
        decode = [d.decode for d in self._dictionaries]
        cols = self._main
        for rid in range(self.main_size):
            if self._main_deleted[rid]:
                continue
            yield rid, [decode[c](cols[c][rid]) for c in range(self._column_count)]
        base = self.main_size
        for offset, row in enumerate(self._delta):
            if row is not None:
                yield base + offset, list(row)

    def scan_batches(self, size: int) -> Iterator[Batch]:
        """Scan as column-major batches: main vectors are decoded a slice
        at a time (no per-row tuple construction), the delta is replayed
        as row-major chunks.  Row order matches :meth:`scan` exactly."""
        decode = [d.decode for d in self._dictionaries]
        cols = self._main
        deleted = self._main_deleted
        main_size = self.main_size
        for start in range(0, main_size, size):
            stop = min(start + size, main_size)
            if any(deleted[start:stop]):
                live = [rid for rid in range(start, stop) if not deleted[rid]]
                if not live:
                    continue
                columns = [
                    [dec(vector[rid]) for rid in live]
                    for dec, vector in zip(decode, cols)
                ]
                yield Batch.from_columns(columns, len(live))
            else:
                columns = [
                    list(map(dec, vector[start:stop]))
                    for dec, vector in zip(decode, cols)
                ]
                yield Batch.from_columns(columns, stop - start)
        chunk: List[tuple] = []
        for row in self._delta:
            if row is None:
                continue
            chunk.append(tuple(row))
            if len(chunk) >= size:
                yield Batch.from_rows(chunk)
                chunk = []
        if chunk:
            yield Batch.from_rows(chunk)

    def scan_column(self, col) -> Iterator[Tuple[int, Any]]:
        """Single-column scan — the column store's natural access path."""
        decode = self._dictionaries[col].decode
        vector = self._main[col]
        for rid in range(self.main_size):
            if not self._main_deleted[rid]:
                yield rid, decode(vector[rid])
        base = self.main_size
        for offset, row in enumerate(self._delta):
            if row is not None:
                yield base + offset, row[col]

    def clear(self):
        self._dictionaries = [_Dictionary() for _ in range(self._column_count)]
        self._main = [[] for _ in range(self._column_count)]
        self._main_deleted = []
        self._delta = []
