"""A paged, append-mostly row store.

Rows live in fixed-size pages; a row id (rid) encodes (page, slot).  The
page structure matters for the benchmark because the disk-based archetypes
(Systems A, B, D) pay a per-page overhead on sequential scans, which is how
a table scan's cost grows linearly with history length (paper Fig 4).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

PAGE_SIZE = 256  # rows per page


class RowStore:
    """Slotted pages of row tuples, addressed by integer rid."""

    def __init__(self, page_size=PAGE_SIZE):
        self._page_size = page_size
        self._pages: List[List[Optional[list]]] = []
        self._count = 0          # live rows
        self._next_rid = 0       # monotonically increasing

    def __len__(self):
        return self._count

    @property
    def page_count(self):
        return len(self._pages)

    def append(self, row) -> int:
        """Store *row* (a list of values) and return its rid."""
        rid = self._next_rid
        page_no, slot = divmod(rid, self._page_size)
        if page_no == len(self._pages):
            self._pages.append([])
        self._pages[page_no].append(row)
        assert len(self._pages[page_no]) == slot + 1
        self._next_rid += 1
        self._count += 1
        return rid

    def fetch(self, rid) -> Optional[list]:
        """The row stored under *rid*, or None if deleted/never existed."""
        page_no, slot = divmod(rid, self._page_size)
        if page_no >= len(self._pages) or slot >= len(self._pages[page_no]):
            return None
        return self._pages[page_no][slot]

    def update_in_place(self, rid, row):
        """Overwrite the row at *rid* (used for sys_end invalidation)."""
        page_no, slot = divmod(rid, self._page_size)
        self._pages[page_no][slot] = row

    def delete(self, rid) -> bool:
        """Tombstone the row at *rid*; returns True if a row was present."""
        page_no, slot = divmod(rid, self._page_size)
        if page_no >= len(self._pages) or slot >= len(self._pages[page_no]):
            return False
        if self._pages[page_no][slot] is None:
            return False
        self._pages[page_no][slot] = None
        self._count -= 1
        return True

    def scan(self) -> Iterator[Tuple[int, list]]:
        """Yield (rid, row) for every live row in rid order."""
        rid_base = 0
        for page in self._pages:
            for slot, row in enumerate(page):
                if row is not None:
                    yield rid_base + slot, row
            rid_base += self._page_size

    def scan_rows(self) -> Iterator[list]:
        for _, row in self.scan():
            yield row

    def clear(self):
        self._pages.clear()
        self._count = 0
        self._next_rid = 0


class AppendLog:
    """An append-only log of arbitrary records (System B's undo log)."""

    def __init__(self):
        self._records: List[Any] = []

    def __len__(self):
        return len(self._records)

    def append(self, record):
        self._records.append(record)

    def drain(self) -> List[Any]:
        """Return and remove all buffered records in append order."""
        records, self._records = self._records, []
        return records

    def peek(self):
        return list(self._records)
