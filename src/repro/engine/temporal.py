"""Bitemporal DML semantics: snapshot visibility and sequenced updates.

Implements the SEQUENCED model of Snodgrass that the paper attributes to
DB2 (§2.3): *"deletes or updates may introduce additional rows when the
time interval of the update does not exactly correspond to the intervals of
the affected rows"*.

All functions operate on :class:`~repro.engine.storage.versioned.VersionedTable`
instances and a system-time tick supplied by the transaction manager; they
are shared by every system archetype, because the paper found that all
systems realise these semantics by rewriting into plain row operations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .catalog import TableSchema
from .errors import IntegrityError
from .storage.versioned import VersionedTable
from .types import END_OF_TIME, Period


def visible_at(schema: TableSchema, row, tick) -> bool:
    """True if *row* is visible in the system-time snapshot *tick*."""
    period = schema.system_period
    if period is None:
        return True
    begin = row[schema.position(period.begin_column)]
    end = row[schema.position(period.end_column)]
    if begin is None:
        return False
    return begin <= tick < end


def app_period_of(schema: TableSchema, row, period_name) -> Period:
    period = schema.period(period_name)
    begin = row[schema.position(period.begin_column)]
    end = row[schema.position(period.end_column)]
    return Period(begin, end)


def _set_period(schema: TableSchema, row, period_name, period: Period):
    pdef = schema.period(period_name)
    row[schema.position(pdef.begin_column)] = period.begin
    row[schema.position(pdef.end_column)] = period.end


def current_versions_for_key(table: VersionedTable, key) -> List[Tuple[int, list]]:
    """(rid, row) of all currently visible versions of a primary key."""
    rids = table.current_rids_for_key(key)
    out = []
    part = table.current_partition_name()
    for rid in rids:
        row = table.fetch(part, rid)
        if row is not None:
            out.append((rid, row))
    return out


def check_app_overlap(
    table: VersionedTable, key, period_name, period: Period, ignore_rids=()
):
    """Raise IntegrityError if *period* overlaps an existing version of *key*.

    DB2-style ``BUSINESS_TIME WITHOUT OVERLAPS`` constraint (§2.3).
    """
    for rid, row in current_versions_for_key(table, key):
        if rid in ignore_rids:
            continue
        existing = app_period_of(table.schema, row, period_name)
        if existing.overlaps(period):
            raise IntegrityError(
                f"{table.schema.name}: application period {period} overlaps "
                f"{existing} for key {key}"
            )


def temporal_insert(
    table: VersionedTable,
    values: list,
    tick: int,
    enforce_overlap: Optional[str] = None,
    txn_meta=None,
) -> int:
    """Insert one new version, optionally enforcing app-time uniqueness."""
    if enforce_overlap is not None and table.schema.primary_key:
        key = table.schema.key_of(values)
        period = app_period_of(table.schema, values, enforce_overlap)
        check_app_overlap(table, key, enforce_overlap, period)
    return table.insert_version(values, sys_begin=tick, txn_meta=txn_meta)


def nontemporal_update(
    table: VersionedTable,
    key,
    changes: Dict[str, object],
    tick: int,
    txn_meta=None,
) -> int:
    """Update value columns of all current versions of *key*.

    Only system time advances: each affected version is invalidated and a
    successor with identical application time but new values is inserted.
    Returns the number of versions rewritten.
    """
    schema = table.schema
    victims = current_versions_for_key(table, key)
    if not victims:
        return 0
    for rid, row in victims:
        new_row = list(row)
        for column, value in changes.items():
            new_row[schema.position(column)] = value
        table.invalidate(rid, tick, txn_meta=txn_meta)
        table.insert_version(new_row, sys_begin=tick, txn_meta=txn_meta)
    return len(victims)


def sequenced_update(
    table: VersionedTable,
    key,
    changes: Dict[str, object],
    period_name: str,
    portion: Period,
    tick: int,
    txn_meta=None,
) -> int:
    """``UPDATE ... FOR PORTION OF <period> FROM .. TO ..`` for one key.

    Every current version overlapping *portion* is invalidated; the
    non-overlapping remainders are re-inserted unchanged and the overlap is
    re-inserted with the new values — so a single row can fan out into up to
    three successors.  Returns the number of affected versions.
    """
    schema = table.schema
    affected = 0
    for rid, row in current_versions_for_key(table, key):
        existing = app_period_of(schema, row, period_name)
        overlap = existing.intersect(portion)
        if overlap is None:
            continue
        affected += 1
        table.invalidate(rid, tick, txn_meta=txn_meta)
        for remainder in existing.subtract(portion):
            keep = list(row)
            _set_period(schema, keep, period_name, remainder)
            table.insert_version(keep, sys_begin=tick, txn_meta=txn_meta)
        changed = list(row)
        for column, value in changes.items():
            changed[schema.position(column)] = value
        _set_period(schema, changed, period_name, overlap)
        table.insert_version(changed, sys_begin=tick, txn_meta=txn_meta)
    return affected


def sequenced_delete(
    table: VersionedTable,
    key,
    period_name: str,
    portion: Period,
    tick: int,
    txn_meta=None,
) -> int:
    """``DELETE ... FOR PORTION OF`` — remainders survive, overlap dies."""
    schema = table.schema
    affected = 0
    for rid, row in current_versions_for_key(table, key):
        existing = app_period_of(schema, row, period_name)
        if existing.intersect(portion) is None:
            continue
        affected += 1
        table.invalidate(rid, tick, txn_meta=txn_meta)
        for remainder in existing.subtract(portion):
            keep = list(row)
            _set_period(schema, keep, period_name, remainder)
            table.insert_version(keep, sys_begin=tick, txn_meta=txn_meta)
    return affected


def temporal_delete(table: VersionedTable, key, tick: int, txn_meta=None) -> int:
    """Plain DELETE: close every current version of *key*."""
    victims = current_versions_for_key(table, key)
    for rid, _row in victims:
        table.delete_version(rid, tick, txn_meta=txn_meta)
    return len(victims)


def snapshot_rows(
    table: VersionedTable,
    sys_tick: Optional[int],
    include_history: bool = True,
) -> Iterable[list]:
    """Rows visible at system time *sys_tick* (None = implicit current).

    ``include_history`` models the paper's Fig 6 finding: an *explicit*
    AS OF of the current time still unions in the history partition because
    no optimizer recognises the partition-pruning opportunity; only the
    *implicit* current query (sys_tick None) touches the current partition
    alone.
    """
    schema = table.schema
    if not table.is_versioned:
        for _rid, row in table.scan_current():
            yield row
        return
    if sys_tick is None:
        if table.has_split:
            # implicit current: the current partition alone is sufficient
            for _rid, row in table.scan_current():
                yield row
        else:
            # single-table layout (System D): closed versions are interleaved
            end_pos = schema.position(schema.system_period.end_column)
            for _rid, row in table.scan_current():
                if row[end_pos] >= END_OF_TIME:
                    yield row
        return
    for _rid, row in table.scan_current():
        if visible_at(schema, row, sys_tick):
            yield row
    if include_history and table.has_split:
        for _rid, row in table.scan_history():
            if visible_at(schema, row, sys_tick):
                yield row


def key_history(
    table: VersionedTable,
    key,
    order_by_sys: bool = True,
) -> List[list]:
    """Every stored version of *key*, across current and history (audit)."""
    schema = table.schema
    out = []
    for _part, _rid, row in table.scan_versions():
        if schema.key_of(row) == tuple(key):
            out.append(row)
    if order_by_sys and schema.system_period is not None:
        pos = schema.position(schema.system_period.begin_column)
        out.sort(key=lambda r: (r[pos] is None, r[pos]))
    return out
