"""Value domains, SQL types and bitemporal periods.

Conventions (see DESIGN.md §6):

* **System time** is an integer *tick*.  The transaction manager assigns one
  tick per committed transaction, so ticks totally order the history exactly
  as commit timestamps do in the paper's systems.
* **Application time** is an integer day number (days since 1992-01-01, the
  start of the TPC-H date range), which keeps date arithmetic exact and
  cheap.  :func:`date_to_day` / :func:`day_to_date` convert to ISO dates.
* Periods are half-open intervals ``[begin, end)``; a row that is currently
  visible carries ``end == END_OF_TIME``.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from enum import Enum

from .errors import DataError

#: Sentinel for "until changed" / "forever"; fits comfortably in an int64.
END_OF_TIME = 2 ** 62

#: The TPC-H calendar starts at 1992-01-01 (day 0 of application time).
EPOCH_DATE = datetime.date(1992, 1, 1)


class SqlType(Enum):
    """The value domains supported by the engine."""

    INTEGER = "integer"
    DECIMAL = "decimal"
    VARCHAR = "varchar"
    DATE = "date"
    TIMESTAMP = "timestamp"
    BOOLEAN = "boolean"

    def validate(self, value):
        """Return *value* coerced into this domain, or raise DataError."""
        if value is None:
            return None
        if self in (SqlType.INTEGER, SqlType.DATE, SqlType.TIMESTAMP):
            if isinstance(value, bool) or not isinstance(value, int):
                raise DataError(f"expected int for {self.value}, got {value!r}")
            return value
        if self is SqlType.DECIMAL:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise DataError(f"expected number for {self.value}, got {value!r}")
            return float(value)
        if self is SqlType.VARCHAR:
            if not isinstance(value, str):
                raise DataError(f"expected str for {self.value}, got {value!r}")
            return value
        if self is SqlType.BOOLEAN:
            if not isinstance(value, bool):
                raise DataError(f"expected bool for {self.value}, got {value!r}")
            return value
        raise DataError(f"unknown type {self}")  # pragma: no cover


def date_to_day(value):
    """Convert a ``datetime.date`` or ISO string to an application-time day."""
    if isinstance(value, str):
        value = datetime.date.fromisoformat(value)
    if not isinstance(value, datetime.date):
        raise DataError(f"not a date: {value!r}")
    return (value - EPOCH_DATE).days


def day_to_date(day):
    """Convert an application-time day number back to a ``datetime.date``."""
    if day >= END_OF_TIME:
        raise DataError("END_OF_TIME has no calendar representation")
    return EPOCH_DATE + datetime.timedelta(days=day)


@dataclass(frozen=True)
class Period:
    """A half-open time interval ``[begin, end)``.

    Used both for system-time validity and application-time validity.
    """

    begin: int
    end: int

    def __post_init__(self):
        if self.begin >= self.end:
            raise DataError(f"empty or inverted period [{self.begin}, {self.end})")

    def contains(self, point):
        """True if *point* lies inside the period."""
        return self.begin <= point < self.end

    def overlaps(self, other):
        """True if the two periods share at least one instant."""
        return self.begin < other.end and other.begin < self.end

    def intersect(self, other):
        """The overlapping sub-period, or ``None`` when disjoint."""
        begin = max(self.begin, other.begin)
        end = min(self.end, other.end)
        if begin >= end:
            return None
        return Period(begin, end)

    def covers(self, other):
        """True if *other* lies entirely within this period."""
        return self.begin <= other.begin and other.end <= self.end

    def meets(self, other):
        """True if this period ends exactly where *other* begins."""
        return self.end == other.begin

    def subtract(self, other):
        """The (0..2) sub-periods of ``self`` not covered by *other*.

        This is the row-splitting primitive behind sequenced updates and
        deletes (Snodgrass's SEQUENCED model, paper §2.3): updating a
        portion of a row's application time leaves the uncovered left and
        right remainders as new rows.
        """
        if not self.overlaps(other):
            return [self]
        parts = []
        if self.begin < other.begin:
            parts.append(Period(self.begin, other.begin))
        if other.end < self.end:
            parts.append(Period(other.end, self.end))
        return parts

    @property
    def is_open(self):
        """True when the period extends to END_OF_TIME."""
        return self.end >= END_OF_TIME

    def duration(self):
        """Length of the period in ticks/days (END_OF_TIME-aware)."""
        if self.is_open:
            return END_OF_TIME
        return self.end - self.begin

    def __str__(self):
        end = "inf" if self.is_open else str(self.end)
        return f"[{self.begin},{end})"


#: The period covering all of time.
ALL_TIME = Period(0, END_OF_TIME)


def compare_values(left, right):
    """Three-way comparison with SQL NULL ordering (NULLs last).

    Returns -1, 0 or 1.  Used by sort and merge-join operators.
    """
    if left is None and right is None:
        return 0
    if left is None:
        return 1
    if right is None:
        return -1
    if left < right:
        return -1
    if left > right:
        return 1
    return 0
