"""The four system archetypes evaluated in the paper (anonymised A–D).

Each archetype bundles a storage layout (:class:`StorageOptions`), an
optimizer profile (:class:`ArchitectureProfile`) and the tuning surface of
§5.1 (index settings).  ``make_system("A")`` returns a ready
:class:`TemporalSystem`.
"""

from .base import TemporalSystem
from .system_a import SystemA
from .system_b import SystemB
from .system_c import SystemC
from .system_d import SystemD
from .system_e import SystemE
from .tuning import IndexSetting, apply_index_setting, drop_tuning_indexes

_REGISTRY = {
    "a": SystemA,
    "b": SystemB,
    "c": SystemC,
    "d": SystemD,
    # the research archetype from the paper's future-work discussion;
    # not part of the measured A-D set (all_system_names)
    "e": SystemE,
}


def make_system(name: str, **kwargs) -> TemporalSystem:
    """Instantiate a system archetype by name ("A".."D")."""
    try:
        cls = _REGISTRY[name.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown system {name!r}; choose one of A, B, C, D") from None
    return cls(**kwargs)


def all_system_names():
    """The paper's measured systems (System E is the extension)."""
    return ["A", "B", "C", "D"]


__all__ = [
    "TemporalSystem",
    "SystemA",
    "SystemB",
    "SystemC",
    "SystemD",
    "SystemE",
    "IndexSetting",
    "apply_index_setting",
    "drop_tuning_indexes",
    "make_system",
    "all_system_names",
]
