"""A workload-driven index advisor (the paper's §5.4 appendix study).

The paper fed TPC-H queries 1–22 to a commercial index advisor and got
**54** proposed indexes for the non-temporal workload, **301** for the
application-time workload and **309** for the system-time workload —
because *"indexes for the non-temporal workload were extended with the
time fields in the temporal workloads"* and *"the increased number of
indexes for the system-time workloads reflects the history table split"*.

This module reproduces that mechanism: it walks a workload's ASTs,
collects the sargable columns (equality/range predicates and equi-join
keys), and proposes per-table index candidates.  For temporal workloads
every candidate is extended with the relevant time columns, and on
systems with a current/history split each candidate is doubled across the
partitions — which is exactly where the paper's 54 → 301/309 inflation
comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine.catalog import IndexDef
from ..engine.errors import CatalogError
from ..engine.sql import ast, parse_statement


@dataclass(frozen=True)
class IndexCandidate:
    """One proposed index."""

    table: str
    columns: Tuple[str, ...]
    partition: str = "current"
    reason: str = ""

    def to_index_def(self, name: str) -> IndexDef:
        return IndexDef(
            name=name,
            table=self.table,
            columns=self.columns,
            kind="btree",
            partition=self.partition,
        )


@dataclass
class Advice:
    """The advisor's output for one workload."""

    mode: str
    candidates: List[IndexCandidate] = field(default_factory=list)

    def count(self) -> int:
        return len(self.candidates)

    def per_table(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for candidate in self.candidates:
            out[candidate.table] = out.get(candidate.table, 0) + 1
        return out

    def summary(self) -> str:
        lines = [f"index advisor ({self.mode}): {self.count()} proposals"]
        for table, count in sorted(self.per_table().items()):
            lines.append(f"  {table:<10} {count}")
        return "\n".join(lines)


class IndexAdvisor:
    """Collects sargable columns from query ASTs and proposes indexes."""

    def __init__(self, db):
        self.db = db

    # -- column harvesting ------------------------------------------------

    def _tables_in(self, select: ast.Select) -> Dict[str, str]:
        """binding -> table name for every base-table reference."""
        out: Dict[str, str] = {}

        def walk_from(item):
            if isinstance(item, ast.TableRef):
                if self.db.catalog.has_table(item.name):
                    out[item.binding] = item.name
            elif isinstance(item, ast.Join):
                walk_from(item.left)
                walk_from(item.right)
            elif isinstance(item, ast.DerivedTable):
                out.update(self._tables_in(item.select))

        for item in select.from_items:
            walk_from(item)
        if select.set_op is not None:
            out.update(self._tables_in(select.set_op[1]))
        return out

    def _harvest(self, select: ast.Select, found: Set[Tuple[str, str]]):
        bindings = self._tables_in(select)

        def owner_of(ref: ast.ColumnRef) -> Optional[str]:
            if ref.table is not None:
                return bindings.get(ref.table)
            for table_name in bindings.values():
                schema = self.db.catalog.table(table_name)
                if schema.has_column(ref.name):
                    return table_name
            return None

        def visit(expr):
            if expr is None:
                return
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.Binary) and node.op in (
                    "=", "<", "<=", ">", ">=",
                ):
                    for side in (node.left, node.right):
                        if isinstance(side, ast.ColumnRef):
                            table = owner_of(side)
                            if table is not None:
                                found.add((table, side.name))
                elif isinstance(node, ast.Between) and isinstance(
                    node.operand, ast.ColumnRef
                ):
                    table = owner_of(node.operand)
                    if table is not None:
                        found.add((table, node.operand.name))
                elif isinstance(node, (ast.InList, ast.InSubquery)) and isinstance(
                    node.operand, ast.ColumnRef
                ):
                    table = owner_of(node.operand)
                    if table is not None:
                        found.add((table, node.operand.name))
                if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
                    self._harvest(node.subquery, found)

        visit(select.where)
        visit(select.having)
        for item in select.from_items:
            self._harvest_joins(item, found, bindings)
        for item in select.from_items:
            if isinstance(item, ast.DerivedTable):
                self._harvest(item.select, found)
        if select.set_op is not None:
            self._harvest(select.set_op[1], found)

    def _harvest_joins(self, item, found, bindings):
        if isinstance(item, ast.Join):
            self._harvest_joins(item.left, found, bindings)
            self._harvest_joins(item.right, found, bindings)
            if item.on is not None:
                for node in ast.walk_expr(item.on):
                    if isinstance(node, ast.ColumnRef):
                        if node.table in bindings:
                            found.add((bindings[node.table], node.name))

    # -- proposal ---------------------------------------------------------

    def advise(self, queries: Sequence[str], mode: str = "plain") -> Advice:
        """Propose indexes for *queries* (SQL strings) in a workload mode.

        ``mode`` mirrors Fig 7: ``plain`` (non-temporal), ``app``
        (candidates extended with application-time columns) or ``sys``
        (extended with system-time columns and doubled across the
        current/history split).
        """
        found: Set[Tuple[str, str]] = set()
        for sql in queries:
            stmt = parse_statement(sql)
            if isinstance(stmt, ast.Select):
                self._harvest(stmt, found)
        advice = Advice(mode=mode)
        seen: Set[Tuple[str, Tuple[str, ...], str]] = set()

        def propose(table, columns, partition, reason):
            key = (table, tuple(columns), partition)
            if key in seen:
                return
            seen.add(key)
            advice.candidates.append(
                IndexCandidate(table, tuple(columns), partition, reason)
            )

        for table_name, column in sorted(found):
            schema = self.db.catalog.table(table_name)
            period_columns = set()
            for period in schema.periods:
                period_columns.add(period.begin_column)
                period_columns.add(period.end_column)
            if column in period_columns:
                continue  # time columns are added below, not on their own
            if mode == "plain":
                propose(table_name, [column], "current", "predicate/join column")
                continue
            if mode == "app":
                # the temporal workload keeps the plain candidates AND
                # extends them with the time fields (§5.4) — the source of
                # the paper's 54 → 301 inflation
                propose(table_name, [column], "current", "predicate/join column")
                for period in schema.application_periods[:1]:
                    propose(table_name, [column, period.begin_column],
                            "current", "value column + application time")
                continue
            # sys mode: plain + (value, system time) candidates, each on
            # both partitions of split systems (the history-table split)
            sys_period = schema.system_period
            table = self.db.table(table_name)
            propose(table_name, [column], "current", "predicate/join column")
            if sys_period is not None:
                propose(table_name, [column, sys_period.begin_column],
                        "current", "value column + system time")
            if table.has_split:
                propose(table_name, [column], "history",
                        "history-table split duplicate")
                if sys_period is not None:
                    propose(table_name, [column, sys_period.begin_column],
                            "history", "history split + system time")
        return advice

    def apply(self, advice: Advice, prefix: str = "adv") -> List[str]:
        """Create every proposed index; returns the created names."""
        created = []
        for number, candidate in enumerate(advice.candidates):
            name = f"{prefix}_{advice.mode}_{number}"
            try:
                self.db.create_index(candidate.to_index_def(name))
            except CatalogError:
                continue
            created.append(name)
        return created

    def drop_applied(self, prefix: str = "adv") -> int:
        dropped = 0
        for index in list(self.db.catalog.indexes()):
            if index.name.startswith(f"{prefix}_"):
                self.db.drop_index(index.name)
                dropped += 1
        return dropped
