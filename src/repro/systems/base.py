"""Common surface of a system archetype under test."""

from __future__ import annotations

from typing import Dict, Optional

from ..engine.database import ArchitectureProfile, Database
from ..engine.storage.versioned import StorageOptions


class TemporalSystem:
    """A database-under-test: an engine instance with a fixed architecture.

    Subclasses define :meth:`storage_options` and :meth:`profile`; everything
    else (loading, querying, tuning) is uniform, mirroring how the paper
    drives four different products through one benchmark service.
    """

    #: anonymised name used in figures ("A".."D")
    name: str = "?"
    #: one-line architecture summary (the §5.2 analysis)
    architecture: str = ""
    #: whether the archetype natively supports application-time periods
    native_application_time: bool = True
    #: whether the archetype natively supports system-time versioning
    native_system_time: bool = True

    def __init__(self):
        self.db = Database(
            options=self.storage_options(),
            profile=self.profile(),
            name=f"system_{self.name.lower()}",
        )

    # -- architecture ------------------------------------------------------

    def storage_options(self) -> StorageOptions:
        raise NotImplementedError

    def profile(self) -> ArchitectureProfile:
        raise NotImplementedError

    # -- convenience -------------------------------------------------------

    def execute(self, sql, params=None, timeout_s=None):
        return self.db.execute(sql, params, timeout_s=timeout_s)

    def explain(self, sql, params=None):
        return self.db.explain(sql, params)

    def explain_analyze(self, sql, params=None):
        return self.db.explain_analyze(sql, params)

    def lint(self, sql):
        """Static diagnostics, gated by this archetype's lint_suppressions."""
        return self.db.lint(sql)

    def cache_stats(self) -> Dict[str, int]:
        return self.db.cache_stats()

    def analyze(self, table: Optional[str] = None):
        """Collect per-column statistics (ANALYZE); arms cost-based joins."""
        return self.db.analyze(table)

    def metrics(self) -> Dict[str, Dict]:
        """Engine metric counters + histogram summaries for this system."""
        return self.db.metrics.snapshot()

    def reset_metrics(self):
        """Zero the metric registry (between benchmark measurements)."""
        self.db.metrics.reset()

    def enable_telemetry(self, enabled: bool = True):
        """Switch the pg_stat_statements-style statement store on/off."""
        return self.db.enable_telemetry(enabled)

    def stat_statements(self, top: Optional[int] = None, sort: str = "time"):
        """Cumulative per-fingerprint statement statistics."""
        return self.db.telemetry.snapshot(top=top, sort=sort)

    def telemetry_snapshot(self, top: Optional[int] = None, sort: str = "time"):
        """Registry snapshot + statement statistics, JSON-serialisable."""
        return self.db.telemetry_snapshot(top=top, sort=sort)

    def openmetrics(self, top: int = 10) -> str:
        """OpenMetrics text exposition of this system's telemetry."""
        return self.db.openmetrics(top=top)

    @property
    def tracer(self):
        """The engine's span tracer (install sinks here to trace queries)."""
        return self.db.tracer

    def set_slow_query_log(self, threshold_s, path=None, max_bytes=None):
        """Enable (or disable with ``None``) the slow-query log."""
        return self.db.set_slow_query_log(
            threshold_s, path=path, max_bytes=max_bytes
        )

    def connect(self):
        """A PEP 249 connection to this system."""
        from ..engine import dbapi

        return dbapi.connect(database=self.db)

    def storage_report(self) -> Dict[str, Dict[str, int]]:
        return self.db.storage_report()

    def now(self) -> int:
        return self.db.now()

    def describe(self) -> str:
        """Human-readable architecture card (paper §2 style)."""
        opts = self.db.default_options
        lines = [
            f"System {self.name}: {self.architecture}",
            f"  store kind:            {opts.store_kind}",
            f"  current/history split: {opts.split_history}",
            f"  vertical partitioning: {opts.vertical_partition_current}",
            f"  undo log:              {opts.undo_log}",
            f"  version metadata:      {opts.record_metadata}",
            f"  native app time:       {self.native_application_time}",
            f"  native system time:    {self.native_system_time}",
            f"  optimizer uses indexes:{self.db.profile.uses_indexes}",
        ]
        return "\n".join(lines)

    def __repr__(self):
        return f"<TemporalSystem {self.name}>"
