"""System A: disk-based row store with native bitemporal support.

Paper §5.2 characteristics reproduced here:

* system time via horizontal partitioning into current + history tables,
  with **identical schemas** on both sides;
* updates *"save data instantly to the history tables"* — no buffering;
* B-Tree indexes available everywhere, none created on history by default;
* full SQL:2011 temporal surface (both time dimensions).
"""

from ..engine.database import ArchitectureProfile
from ..engine.storage.versioned import StorageOptions
from .base import TemporalSystem


class SystemA(TemporalSystem):
    name = "A"
    architecture = (
        "disk-based RDBMS, native bitemporal; current/history split with "
        "identical schemas; synchronous history writes"
    )

    def storage_options(self):
        return StorageOptions(
            store_kind="row",
            split_history=True,
            vertical_partition_current=False,
            undo_log=False,
            record_metadata=False,
        )

    def profile(self):
        return ArchitectureProfile(
            name="System A",
            supports_application_time=True,
            supports_system_time=True,
            uses_indexes=True,
            prunes_explicit_current=False,
            manual_system_time=False,
            index_selectivity_threshold=0.15,
            rewrite_rules=(
                "constant-folding", "predicate-pushdown", "join-reorder",
                "constraint-pruning",
            ),
            # every analyzer rule applies to the row-store reference system
            lint_suppressions=(),
        )
