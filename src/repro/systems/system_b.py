"""System B: disk-based row store with heavyweight history machinery.

Paper §5.2 characteristics reproduced here:

* *"the current table does not contain any temporal information, as it is
  vertically partitioned into a separate table"* — reconstructing system
  time for current rows costs a sort/merge join on every access;
* *"System B adds updates first to an undo log"* drained by a background
  step, which produces the two-orders-of-magnitude 97th-percentile update
  latencies of Fig 16;
* *"System B records more detailed metadata, e.g., on transaction
  identifiers and the update query type"* — wider history rows;
* full SQL:2011 temporal surface.
"""

from ..engine.database import ArchitectureProfile
from ..engine.storage.versioned import StorageOptions
from .base import TemporalSystem


class SystemB(TemporalSystem):
    name = "B"
    architecture = (
        "disk-based RDBMS, native bitemporal; temporal columns vertically "
        "partitioned off the current table; undo-log buffered history writes"
    )

    def storage_options(self):
        return StorageOptions(
            store_kind="row",
            split_history=True,
            vertical_partition_current=True,
            undo_log=True,
            undo_drain_batch=64,
            record_metadata=True,
        )

    def profile(self):
        return ArchitectureProfile(
            name="System B",
            supports_application_time=True,
            supports_system_time=True,
            uses_indexes=True,
            prunes_explicit_current=False,
            manual_system_time=False,
            index_selectivity_threshold=0.15,
            rewrite_rules=(
                "constant-folding", "predicate-pushdown", "join-reorder",
                "constraint-pruning",
            ),
            lint_suppressions=(),
        )
