"""System C: in-memory column store, system time only.

Paper §2.6/§5.2 characteristics reproduced here:

* columnar storage with a delta/main split and merge operation; history
  tables are *"regular columnar tables"* partitioned into current and
  history parts;
* *"no specific support for application time"* — application periods are
  plain DATE columns and temporal semantics on them are the client's job
  (our planner still accepts BUSINESS_TIME clauses and rewrites them to
  value predicates, which is what users of this system do by hand);
* scan-based execution: *"System C does not benefit at all from the
  additional B-Tree index"* — the optimizer profile disables index plans;
* AS OF time travel recomputes snapshot visibility during the scan.
"""

from ..engine.database import ArchitectureProfile
from ..engine.storage.versioned import StorageOptions
from .base import TemporalSystem


class SystemC(TemporalSystem):
    name = "C"
    architecture = (
        "in-memory column store; delta/main writes; system time native, "
        "application time simulated; scan-based plans"
    )
    native_application_time = False

    def storage_options(self):
        return StorageOptions(
            store_kind="column",
            split_history=True,
            vertical_partition_current=False,
            undo_log=False,
            record_metadata=False,
            column_merge_threshold=4096,
        )

    def profile(self):
        return ArchitectureProfile(
            name="System C",
            supports_application_time=False,
            supports_system_time=True,
            uses_indexes=False,
            prunes_explicit_current=False,
            manual_system_time=False,
            index_selectivity_threshold=0.0,
            rewrite_rules=(
                "constant-folding", "predicate-pushdown", "join-reorder",
                "constraint-pruning",
            ),
            # the column store has no secondary indexes, so the unindexed
            # history-probe diagnostic is noise here
            lint_suppressions=("TQ007",),
        )
