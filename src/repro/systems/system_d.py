"""System D: disk-based row store without native temporal support.

Paper §2.5/§5.2 characteristics reproduced here:

* *"System D stores all information in a single non-temporal table"* —
  no current/history split: every version, open or closed, lives in one
  row store, so "current" queries must filter the full table but history
  access needs no union of partitions (the reason D has the least overhead
  on system-time TPC-H, Fig 7b);
* both time dimensions are ordinary columns **set by the client**
  (``manual_system_time``), which enables the bulk-load path of §5.8;
* indexes may be B-Trees or GiST (R-Tree) structures (§2.5).
"""

from ..engine.database import ArchitectureProfile
from ..engine.storage.versioned import StorageOptions
from .base import TemporalSystem


class SystemD(TemporalSystem):
    name = "D"
    architecture = (
        "disk-based RDBMS without temporal support; single table with "
        "ordinary time columns; client-managed timestamps; B-Tree and GiST"
    )
    native_application_time = False
    native_system_time = False

    def storage_options(self):
        return StorageOptions(
            store_kind="row",
            split_history=False,
            vertical_partition_current=False,
            undo_log=False,
            record_metadata=False,
        )

    def profile(self):
        return ArchitectureProfile(
            name="System D",
            supports_application_time=False,
            supports_system_time=True,  # clauses rewrite to value predicates
            uses_indexes=True,
            prunes_explicit_current=False,
            manual_system_time=True,
            index_selectivity_threshold=0.15,
            rewrite_rules=(
                "constant-folding", "predicate-pushdown", "join-reorder",
                "constraint-pruning",
            ),
            # implicit time travel over a single interleaved table (§5.8):
            # history is not a separate partition, so full-history-scan,
            # explicit-current and history-index diagnostics do not apply
            lint_suppressions=("TQ001", "TQ002", "TQ007"),
        )
