"""System E: the "future work" archetype the paper's conclusion asks for.

§6 of the paper: *"we hope that the evaluation performed in this paper
provide a good starting point for future optimizations of temporal DBMS"*.
System E is that optimisation, built from the Timeline Index of the
paper's reference [13] (Kaufmann et al., SIGMOD 2013):

* a **single-table row store** (like System D) — no partition unions to
  reassemble, versions are append-only;
* a **Timeline Index per table**, maintained on every write: time travel
  resolves to a checkpoint + bounded replay instead of a scan;
* **native temporal operators** (:mod:`repro.systems.temporal_ops`):
  temporal aggregation in one sweep and a sweep-based temporal join —
  the two operators whose SQL rewrites the paper found *"orders of
  magnitude"* too slow (§5.6, §5.7).

System E is not part of the paper's measured systems; the benches under
``benchmarks/test_future_system_e.py`` compare it against A–D to quantify
what the paper's proposed direction would have gained.
"""

from __future__ import annotations

from typing import Dict

from ..engine.database import ArchitectureProfile, Database
from ..engine.index.timeline import TimelineIndex
from ..engine.storage.versioned import StorageOptions, VersionedTable
from .base import TemporalSystem


class TimelineDatabase(Database):
    """A Database that maintains one TimelineIndex per versioned table."""

    def __init__(self, *args, checkpoint_interval=1024, **kwargs):
        super().__init__(*args, **kwargs)
        self.checkpoint_interval = checkpoint_interval
        self.timelines: Dict[str, TimelineIndex] = {}

    def create_table(self, schema, options=None):
        table = super().create_table(schema, options)
        if table.is_versioned:
            timeline = TimelineIndex(
                checkpoint_interval=self.checkpoint_interval,
                metrics=self.metrics,
            )
            self.timelines[schema.name] = timeline
            _instrument(table, timeline)
        return table

    def timeline(self, table_name) -> TimelineIndex:
        return self.timelines[table_name.lower()]


def _instrument(table: VersionedTable, timeline: TimelineIndex):
    """Hook the table's write path so the timeline sees every event."""
    table.timeline = timeline  # the access layer looks for this attribute
    original_insert = table.insert_version
    original_invalidate = table.invalidate

    def insert_version(values, sys_begin=None, txn_meta=None):
        rid = original_insert(values, sys_begin=sys_begin, txn_meta=txn_meta)
        timeline.activate(rid, sys_begin)
        return rid

    def invalidate(rid, sys_end, txn_meta=None):
        original_invalidate(rid, sys_end, txn_meta=txn_meta)
        timeline.invalidate(rid, sys_end)

    table.insert_version = insert_version
    table.invalidate = invalidate


class SystemE(TemporalSystem):
    name = "E"
    architecture = (
        "research archetype: single-table row store + Timeline Index; "
        "native time travel, temporal aggregation and temporal join"
    )

    def __init__(self, checkpoint_interval=1024):
        self._checkpoint_interval = checkpoint_interval
        self.db = TimelineDatabase(
            options=self.storage_options(),
            profile=self.profile(),
            name="system_e",
            checkpoint_interval=checkpoint_interval,
        )

    def storage_options(self):
        return StorageOptions(
            store_kind="row",
            split_history=False,
        )

    def profile(self):
        return ArchitectureProfile(
            name="System E",
            supports_application_time=True,
            supports_system_time=True,
            uses_indexes=True,
            prunes_explicit_current=True,
            manual_system_time=False,
            index_selectivity_threshold=0.15,
            rewrite_rules=(
                "constant-folding", "predicate-pushdown", "join-reorder",
                "constraint-pruning", "temporal-fusion",
            ),
            lint_suppressions=(),
        )

    # -- native temporal operators ------------------------------------------

    def snapshot_rows(self, table_name, tick):
        """Native time travel: timeline snapshot instead of scan+filter."""
        table = self.db.table(table_name)
        timeline = self.db.timeline(table_name)
        partition = table.current_partition_name()
        rows = []
        for rid in timeline.snapshot_rids(tick):
            row = table.fetch(partition, rid)
            if row is not None:
                rows.append(tuple(row))
        return rows

    def temporal_aggregate(self, table_name, column, functions=("count",)):
        """Native temporal aggregation (the R3 operator) in one sweep."""
        table = self.db.table(table_name)
        timeline = self.db.timeline(table_name)
        partition = table.current_partition_name()
        position = table.schema.position(column)
        cache: Dict[int, object] = {}

        def value_of(rid):
            if rid not in cache:
                row = table.fetch(partition, rid)
                cache[rid] = row[position] if row is not None else None
            return cache[rid]

        return timeline.temporal_aggregate(value_of, tuple(functions))

    def temporal_join(self, left_table, right_table):
        """Native system-time overlap join: (left_row, right_row) pairs."""
        left = self.db.table(left_table)
        right = self.db.table(right_table)
        left_timeline = self.db.timeline(left_table)
        right_timeline = self.db.timeline(right_table)
        left_part = left.current_partition_name()
        right_part = right.current_partition_name()
        for left_rid, right_rid in left_timeline.temporal_join_pairs(right_timeline):
            left_row = left.fetch(left_part, left_rid)
            right_row = right.fetch(right_part, right_rid)
            if left_row is not None and right_row is not None:
                yield tuple(left_row), tuple(right_row)
