"""The paper's §5.1 tuning surface: index settings A/B/C.

Three settings are defined verbatim from the paper:

* **Time Index** — *"indexes on all time dimensions for RDBMSs, i.e., app
  time index on current table, app+system time indexes for history
  tables"*;
* **Key+Time Index** — *"efficient (primary) key-based access on the
  history tables"* on top of the time indexes;
* **Value Index** — *"for a specific query we added a value index"*.

Indexes can be realised as B-Trees or (on System D) GiST/R-Trees.  All
tuning indexes are named ``tune_*`` so they can be dropped between
experiment cells.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from ..engine.catalog import IndexDef
from ..engine.errors import CatalogError


class IndexSetting(Enum):
    NONE = "none"
    TIME = "time"
    KEY_TIME = "key+time"
    VALUE = "value"


def _index_name(table, columns, partition, kind):
    return "tune_{}_{}_{}_{}".format(table, "_".join(columns), partition, kind)


def _create(db, table_name, columns, partition, kind):
    name = _index_name(table_name, columns, partition, kind)
    index = IndexDef(
        name=name,
        table=table_name,
        columns=tuple(columns),
        kind=kind,
        partition=partition,
    )
    try:
        db.create_index(index)
    except CatalogError:
        pass  # idempotent: already present from a previous cell
    return name


def time_indexes(system, table_names: Optional[List[str]] = None, kind="btree") -> List[str]:
    """Setting A — indexes on all time dimensions."""
    db = system.db
    created = []
    for schema in db.catalog.tables():
        if table_names is not None and schema.name not in table_names:
            continue
        table = db.table(schema.name)
        sys_period = schema.system_period
        current = "current" if table.has_split else "current"
        for app in schema.application_periods:
            cols = (
                [app.begin_column, app.end_column]
                if kind == "rtree"
                else [app.begin_column]
            )
            created.append(_create(db, schema.name, cols, current, kind))
            if table.has_split:
                created.append(_create(db, schema.name, cols, "history", kind))
        if sys_period is not None:
            cols = (
                [sys_period.begin_column, sys_period.end_column]
                if kind == "rtree"
                else [sys_period.begin_column]
            )
            if table.has_split:
                created.append(_create(db, schema.name, cols, "history", kind))
            else:
                # System D: system time is an ordinary column on the one table
                created.append(_create(db, schema.name, cols, "current", kind))
    return created


def key_time_indexes(system, table_names: Optional[List[str]] = None, kind="btree") -> List[str]:
    """Setting B — Time indexes plus key access on the history tables."""
    created = time_indexes(system, table_names, kind=kind)
    db = system.db
    for schema in db.catalog.tables():
        if table_names is not None and schema.name not in table_names:
            continue
        if not schema.primary_key:
            continue
        table = db.table(schema.name)
        if kind == "rtree":
            continue  # an R-Tree cannot index scalar keys
        partition = "history" if table.has_split else "current"
        created.append(
            _create(db, schema.name, list(schema.primary_key), partition, "btree")
        )
    return created


def value_index(system, table_name: str, column: str, kind="btree", on_history=True) -> List[str]:
    """Setting C — a value index for one specific query."""
    db = system.db
    table = db.table(table_name)
    created = [_create(db, table_name, [column], "current", kind)]
    if on_history and table.has_split:
        created.append(_create(db, table_name, [column], "history", kind))
    return created


def apply_index_setting(
    system,
    setting: IndexSetting,
    table_names: Optional[List[str]] = None,
    kind="btree",
    value_column=None,
    value_table=None,
) -> List[str]:
    """Apply one of the paper's index settings to *system*."""
    if setting is IndexSetting.NONE:
        return []
    if setting is IndexSetting.TIME:
        return time_indexes(system, table_names, kind=kind)
    if setting is IndexSetting.KEY_TIME:
        return key_time_indexes(system, table_names, kind=kind)
    if setting is IndexSetting.VALUE:
        if not (value_table and value_column):
            raise ValueError("VALUE setting needs value_table and value_column")
        return value_index(system, value_table, value_column, kind=kind)
    raise ValueError(f"unknown setting {setting}")


def drop_tuning_indexes(system) -> int:
    """Remove every ``tune_*`` index (reset between experiment cells)."""
    db = system.db
    dropped = 0
    for index in list(db.catalog.indexes()):
        if index.name.startswith("tune_"):
            db.drop_index(index.name)
            dropped += 1
    return dropped
