"""Shared fixtures for the unit/integration test suite."""

import pytest

from repro.core.generator import BitemporalDataGenerator, GeneratorConfig
from repro.core.loader import Loader
from repro.engine import Database


@pytest.fixture
def db():
    """An empty generic database with a small bitemporal table."""
    database = Database()
    database.execute(
        "CREATE TABLE item ("
        " id integer NOT NULL, name varchar(32), price decimal,"
        " ab date, ae date, sb timestamp, se timestamp,"
        " PRIMARY KEY (id),"
        " PERIOD FOR business_time (ab, ae),"
        " PERIOD FOR system_time (sb, se))"
    )
    return database


@pytest.fixture(scope="session")
def tiny_workload():
    """A small generated workload shared by integration tests."""
    return BitemporalDataGenerator(GeneratorConfig(h=0.0005, m=0.0001)).generate()


@pytest.fixture(scope="session")
def loaded_system_a(tiny_workload):
    from repro.systems import make_system

    system = make_system("A")
    Loader(system, tiny_workload).load()
    return system
