"""Access-path selection: PK probes, index choice, partition pruning."""

from repro.engine import Database, IndexDef
from repro.engine.database import ArchitectureProfile
from repro.engine.storage.versioned import StorageOptions

DDL = (
    "CREATE TABLE item ("
    " id integer NOT NULL, grp integer, v decimal,"
    " ab date, ae date, sb timestamp, se timestamp,"
    " PRIMARY KEY (id),"
    " PERIOD FOR business_time (ab, ae),"
    " PERIOD FOR system_time (sb, se))"
)


def _make(profile=None, options=None, rows=300):
    db = Database(options=options, profile=profile)
    db.execute(DDL)
    with db.begin():
        for i in range(1, rows + 1):
            db.insert_row("item", {
                "id": i, "grp": i % 10, "v": float(i),
                "ab": 0, "ae": 1000,
            })
    return db


def _scan_count(db):
    return db.table("item").stats.current_scans


class TestPkProbe:
    def test_pk_equality_avoids_scan(self):
        db = _make()
        before = _scan_count(db)
        result = db.execute("SELECT v FROM item WHERE id = 17")
        assert result.rows == [(17.0,)]
        assert _scan_count(db) == before  # no table scan performed

    def test_nonkey_equality_scans_without_index(self):
        db = _make()
        before = _scan_count(db)
        db.execute("SELECT count(*) FROM item WHERE grp = 3")
        assert _scan_count(db) == before + 1


class TestSecondaryIndex:
    def test_selective_index_used(self):
        db = _make()
        db.create_index(IndexDef("ig", "item", ("grp",)))
        before = _scan_count(db)
        result = db.execute("SELECT count(*) FROM item WHERE grp = 3")
        assert result.scalar() == 30
        # 30/300 = 10% < 15% threshold: index used, no scan
        assert _scan_count(db) == before

    def test_unselective_range_falls_back_to_scan(self):
        db = _make()
        db.create_index(IndexDef("iv", "item", ("v",)))
        before = _scan_count(db)
        db.execute("SELECT count(*) FROM item WHERE v > 10.0")
        assert _scan_count(db) == before + 1

    def test_selective_range_uses_index(self):
        db = _make()
        db.create_index(IndexDef("iv", "item", ("v",)))
        before = _scan_count(db)
        result = db.execute("SELECT count(*) FROM item WHERE v <= 5.0")
        assert result.scalar() == 5
        assert _scan_count(db) == before

    def test_profile_can_disable_indexes(self):
        db = _make(profile=ArchitectureProfile(uses_indexes=False))
        db.create_index(IndexDef("ig", "item", ("grp",)))
        before = _scan_count(db)
        db.execute("SELECT count(*) FROM item WHERE grp = 3")
        assert _scan_count(db) == before + 1

    def test_index_results_match_scan_results(self):
        db = _make()
        scan_rows = sorted(db.execute("SELECT id FROM item WHERE grp = 7").rows)
        db.create_index(IndexDef("ig", "item", ("grp",)))
        index_rows = sorted(db.execute("SELECT id FROM item WHERE grp = 7").rows)
        assert scan_rows == index_rows


class TestPartitionSelection:
    def test_implicit_current_skips_history(self):
        db = _make(rows=50)
        db.execute("UPDATE item SET v = 0 WHERE id = 1")
        table = db.table("item")
        before = table.stats.history_scans
        db.execute("SELECT count(*) FROM item")
        assert table.stats.history_scans == before

    def test_explicit_as_of_unions_history(self):
        db = _make(rows=50)
        db.execute("UPDATE item SET v = 0 WHERE id = 1")
        table = db.table("item")
        before = table.stats.history_scans
        db.execute("SELECT count(*) FROM item FOR SYSTEM_TIME AS OF 1")
        assert table.stats.history_scans == before + 1

    def test_system_time_all_returns_every_version(self):
        db = _make(rows=10)
        db.execute("UPDATE item SET v = 0 WHERE id = 1")
        count = db.execute("SELECT count(*) FROM item FOR SYSTEM_TIME ALL").scalar()
        assert count == 11


class TestRtreeAccess:
    def test_rtree_serves_as_of(self):
        db = _make(
            profile=ArchitectureProfile(manual_system_time=True),
            options=StorageOptions(split_history=False),
            rows=100,
        )
        # close versions at varying ticks to give the rtree short intervals
        for i in range(1, 50):
            db.execute("UPDATE item SET v = v + 1 WHERE id = ?", [i])
        db.create_index(IndexDef(
            "irt", "item", ("sb", "se"), kind="rtree", partition="current"
        ))
        expected = db.execute(
            "SELECT count(*) FROM item FOR SYSTEM_TIME AS OF 1"
        ).scalar()
        assert expected == 100


class TestCorrelatedParameterProbes:
    def test_pk_probe_with_outer_reference(self):
        db = _make(rows=100)
        db.execute("CREATE TABLE probe (pid integer)")
        for i in (5, 10):
            db.execute("INSERT INTO probe (pid) VALUES (?)", [i])
        before = _scan_count(db)
        result = db.execute(
            "SELECT (SELECT v FROM item WHERE id = p.pid) FROM probe p ORDER BY p.pid"
        )
        assert result.rows == [(5.0,), (10.0,)]
        assert _scan_count(db) == before  # probes, not scans
