"""Golden tests for the static analyzer (repro.engine.analyze).

One positive and one negative case per rule TQ001..TQ017, span/path
anchoring, severity ordering, per-profile suppression, the EXPLAIN (LINT)
surface, and the no-false-positives sweep over the full benchmark workload
on every architecture archetype.
"""

from types import SimpleNamespace

import pytest

from repro.engine.analyze import RULES, SEVERITIES, analyze_sql
from repro.engine.errors import ProgrammingError


def codes(db, sql, profile=None):
    return [d.code for d in analyze_sql(db, sql, profile=profile)]


def only(db, sql, code):
    found = [d for d in analyze_sql(db, sql) if d.code == code]
    assert found, f"expected {code} for: {sql}"
    return found[0]


class TestRuleCatalog:
    def test_seventeen_stable_codes(self):
        assert sorted(RULES) == [f"TQ{n:03d}" for n in range(1, 18)]

    def test_every_rule_is_complete(self):
        for rule in RULES.values():
            assert rule.severity in SEVERITIES
            assert rule.summary and rule.paper and rule.hint
            assert rule.code == rule.code.upper()

    def test_analyzer_rejects_dml(self, db):
        with pytest.raises(ProgrammingError):
            analyze_sql(db, "DELETE FROM item")


class TestTQ001FullHistoryScan:
    def test_positive(self, db):
        d = only(db, "SELECT id FROM item FOR SYSTEM_TIME ALL", "TQ001")
        assert d.severity == "info"
        assert "ALL" in d.fragment

    def test_negative_bounded_range(self, db):
        assert "TQ001" not in codes(
            db, "SELECT id FROM item FOR SYSTEM_TIME FROM 1 TO 5"
        )


class TestTQ002ExplicitCurrentAsOf:
    def test_positive_literal_at_or_after_now(self, db):
        sql = f"SELECT id FROM item FOR SYSTEM_TIME AS OF {db.now() + 5}"
        assert only(db, sql, "TQ002").severity == "warning"

    def test_negative_parameter_is_prunable(self, db):
        assert "TQ002" not in codes(
            db, "SELECT id FROM item FOR SYSTEM_TIME AS OF ?"
        )


class TestTQ003NonSargableTemporal:
    def test_positive_wrapped_period_column(self, db):
        d = only(db, "SELECT id FROM item WHERE sb + 1 <= 5", "TQ003")
        assert d.severity == "warning"

    def test_negative_bare_column(self, db):
        assert "TQ003" not in codes(db, "SELECT id FROM item WHERE sb <= 5")

    def test_negative_non_period_column(self, db):
        assert "TQ003" not in codes(
            db, "SELECT id FROM item WHERE price + 1 <= 5"
        )


class TestTQ004ContradictoryRange:
    def test_positive_from_to_reversed(self, db):
        d = only(db, "SELECT id FROM item FOR SYSTEM_TIME FROM 5 TO 1", "TQ004")
        assert d.severity == "error"

    def test_positive_from_to_empty_halfopen(self, db):
        # FROM..TO is half-open: equal bounds select nothing
        assert "TQ004" in codes(
            db, "SELECT id FROM item FOR SYSTEM_TIME FROM 5 TO 5"
        )

    def test_negative_between_equal_bounds_closed(self, db):
        # BETWEEN is closed: equal bounds are a one-instant range
        assert "TQ004" not in codes(
            db, "SELECT id FROM item FOR SYSTEM_TIME BETWEEN 5 AND 5"
        )

    def test_positive_business_between_reversed(self, db):
        assert "TQ004" in codes(
            db, "SELECT id FROM item FOR business_time BETWEEN 30 AND 10"
        )

    def test_negative_ordered_range(self, db):
        assert "TQ004" not in codes(
            db, "SELECT id FROM item FOR SYSTEM_TIME FROM 1 TO 5"
        )


class TestTQ005LeftJoinFilterDegeneration:
    def test_positive_filter_on_null_extended_side(self, db):
        d = only(
            db,
            "SELECT a.id FROM item a LEFT JOIN item b ON a.id = b.id"
            " WHERE b.price > 1",
            "TQ005",
        )
        assert d.severity == "warning"

    def test_negative_filter_on_preserved_side(self, db):
        assert "TQ005" not in codes(
            db,
            "SELECT a.id FROM item a LEFT JOIN item b ON a.id = b.id"
            " WHERE a.price > 1",
        )

    def test_negative_is_null_guard(self, db):
        assert "TQ005" not in codes(
            db,
            "SELECT a.id FROM item a LEFT JOIN item b ON a.id = b.id"
            " WHERE b.price IS NULL",
        )


class TestTQ006CartesianProduct:
    def test_positive_disconnected_from(self, db):
        d = only(db, "SELECT a.id FROM item a, item b", "TQ006")
        assert d.severity == "warning"

    def test_negative_connected_by_where(self, db):
        assert "TQ006" not in codes(
            db, "SELECT a.id FROM item a, item b WHERE a.id = b.id"
        )


class TestTQ007UnindexedHistoryProbe:
    SQL = "SELECT id FROM item FOR SYSTEM_TIME AS OF 1 WHERE id = 7"

    def test_positive_no_history_index(self, db):
        assert only(db, self.SQL, "TQ007").severity == "info"

    def test_negative_with_history_index(self, db):
        db.execute("CREATE INDEX item_hist_id ON item (id) ON history")
        assert "TQ007" not in codes(db, self.SQL)

    def test_positive_current_only_index_does_not_cover(self, db):
        db.execute("CREATE INDEX item_cur_id ON item (id) ON current")
        assert "TQ007" in codes(db, self.SQL)


class TestTQ008SimulatedApplicationTime:
    CREATE = (
        "CREATE TABLE item ("
        " id integer NOT NULL, price decimal,"
        " ab date, ae date, sb timestamp, se timestamp,"
        " PRIMARY KEY (id),"
        " PERIOD FOR business_time (ab, ae),"
        " PERIOD FOR system_time (sb, se))"
    )

    def test_positive_on_system_c(self):
        from repro.systems import make_system

        system = make_system("C")
        system.db.execute(self.CREATE)
        found = [d.code for d in
                 system.lint("SELECT id FROM item FOR business_time AS OF 10")]
        assert "TQ008" in found

    def test_negative_on_system_a(self):
        from repro.systems import make_system

        system = make_system("A")
        system.db.execute(self.CREATE)
        found = [d.code for d in
                 system.lint("SELECT id FROM item FOR business_time AS OF 10")]
        assert "TQ008" not in found


class TestTQ009DuplicateTemporalClause:
    def test_positive_same_period_twice(self, db):
        d = only(
            db,
            "SELECT id FROM item"
            " FOR SYSTEM_TIME AS OF 1 FOR SYSTEM_TIME FROM 1 TO 2",
            "TQ009",
        )
        assert d.severity == "error"

    def test_positive_alias_and_name_same_period(self, db):
        # BUSINESS_TIME aliases the first application period: same columns
        assert "TQ009" in codes(
            db,
            "SELECT id FROM item"
            " FOR BUSINESS_TIME AS OF 1 FOR business_time AS OF 2",
        )

    def test_negative_distinct_periods(self, db):
        assert "TQ009" not in codes(
            db,
            "SELECT id FROM item"
            " FOR SYSTEM_TIME AS OF 1 FOR business_time AS OF 2",
        )


class TestTQ010HistoryStarProjection:
    def test_positive_star_over_history(self, db):
        d = only(db, "SELECT * FROM item FOR SYSTEM_TIME ALL", "TQ010")
        assert d.severity == "info"

    def test_negative_as_of_is_a_snapshot(self, db):
        assert "TQ010" not in codes(
            db, "SELECT * FROM item FOR SYSTEM_TIME AS OF 1"
        )

    def test_negative_explicit_projection(self, db):
        assert "TQ010" not in codes(
            db, "SELECT id, price FROM item FOR SYSTEM_TIME ALL"
        )


class TestTQ011JoinTypeMismatch:
    def test_positive_string_vs_numeric_edge(self, db):
        d = only(db, "SELECT a.id FROM item a, item b WHERE a.name = b.price", "TQ011")
        assert d.severity == "warning"
        assert "a.name" in d.message and "b.price" in d.message

    def test_negative_same_type_edge(self, db):
        assert "TQ011" not in codes(
            db, "SELECT a.id FROM item a, item b WHERE a.id = b.id"
        )

    def test_negative_numeric_category_is_compatible(self, db):
        # INTEGER vs DECIMAL both live in the numeric category.
        assert "TQ011" not in codes(
            db, "SELECT a.id FROM item a, item b WHERE a.id = b.price"
        )

    def test_negative_same_binding_is_not_a_join_edge(self, db):
        assert "TQ011" not in codes(
            db,
            "SELECT a.id FROM item a, item b WHERE a.name = a.name AND a.id = b.id",
        )


class TestTQ012CrossPeriodJoin:
    def test_positive_app_vs_system_column(self, db):
        d = only(
            db,
            "SELECT a.id FROM item a, item b WHERE a.ab = b.sb AND a.id = b.id",
            "TQ012",
        )
        assert d.severity == "error"
        assert "a.ab" in d.message and "b.sb" in d.message

    def test_positive_same_table_cross_period(self, db):
        assert "TQ012" in codes(db, "SELECT id FROM item WHERE ab = sb")

    def test_positive_suppresses_tq011(self, db):
        found = codes(
            db, "SELECT a.id FROM item a, item b WHERE a.ae = b.se AND a.id = b.id"
        )
        assert "TQ012" in found
        assert "TQ011" not in found

    def test_negative_both_application(self, db):
        assert "TQ012" not in codes(
            db, "SELECT a.id FROM item a, item b WHERE a.ab = b.ae AND a.id = b.id"
        )

    def test_negative_both_system(self, db):
        assert "TQ012" not in codes(
            db, "SELECT a.id FROM item a, item b WHERE a.sb = b.se AND a.id = b.id"
        )


class TestTQ013TemporalLiteralDomain:
    def test_positive_yyyymmdd_integer(self, db):
        d = only(db, "SELECT id FROM item WHERE ab >= 20200101", "TQ013")
        assert d.severity == "warning"
        assert "ab" in d.message and "20200101" in d.message

    def test_positive_literal_on_the_left(self, db):
        assert "TQ013" in codes(db, "SELECT id FROM item WHERE 20200101 < ae")

    def test_positive_between_bounds(self, db):
        assert "TQ013" in codes(
            db, "SELECT id FROM item WHERE ab BETWEEN 20200101 AND 20201231"
        )

    def test_negative_date_literal(self, db):
        assert "TQ013" not in codes(
            db, "SELECT id FROM item WHERE ab >= date '2020-01-01'"
        )

    def test_negative_plausible_day_number(self, db):
        # day 10000 from the 1992 epoch is a perfectly ordinary date
        assert "TQ013" not in codes(db, "SELECT id FROM item WHERE ab > 10000")

    def test_negative_system_period_ticks(self, db):
        # system time counts commit ticks; large integers are legal there
        assert "TQ013" not in codes(
            db, "SELECT id FROM item WHERE sb <= 20200101"
        )

    def test_negative_non_temporal_column(self, db):
        assert "TQ013" not in codes(
            db, "SELECT id FROM item WHERE price > 20200101"
        )

    def test_negative_parameter(self, db):
        assert "TQ013" not in codes(db, "SELECT id FROM item WHERE ab >= ?")


class TestTQ014SubsumedTemporalConstraint:
    def test_positive_wider_predicate(self, db):
        d = only(db, "SELECT id FROM item WHERE sb >= 2 AND sb >= 1", "TQ014")
        assert d.severity == "warning"
        assert "sb" in d.message

    def test_positive_clause_subsumes_predicate(self, db):
        # AS OF 5 already implies sb <= 5; the wider sb <= 9 adds nothing
        assert "TQ014" in codes(
            db, "SELECT id FROM item FOR SYSTEM_TIME AS OF 5 WHERE sb <= 9"
        )

    def test_negative_single_predicate(self, db):
        assert "TQ014" not in codes(db, "SELECT id FROM item WHERE sb >= 2")

    def test_negative_equality_never_flagged(self, db):
        # an implied equality still drives pk/hash-index probes: keep it
        assert "TQ014" not in codes(
            db, "SELECT id FROM item FOR SYSTEM_TIME AS OF 9 WHERE sb = 5"
        )

    def test_negative_clause_never_flagged(self, db):
        # a clause wider than the predicates still gates partition choice
        assert "TQ014" not in codes(
            db,
            "SELECT id FROM item FOR SYSTEM_TIME BETWEEN 1 AND 9 WHERE sb <= 2",
        )


class TestTQ015ContradictoryConstraints:
    def test_positive_contradictory_predicates(self, db):
        d = only(db, "SELECT id FROM item WHERE sb > 10 AND sb < 5", "TQ015")
        assert d.severity == "error"
        assert "sb" in d.message

    def test_positive_clause_vs_predicate(self, db):
        assert "TQ015" in codes(
            db, "SELECT id FROM item FOR SYSTEM_TIME AS OF 5 WHERE sb > 10"
        )

    def test_negative_satisfiable_range(self, db):
        assert "TQ015" not in codes(
            db, "SELECT id FROM item WHERE sb > 5 AND sb < 10"
        )

    def test_negative_empty_period_can_still_overlap(self, db):
        # FROM 5 TO 5 is an empty *period* (TQ004's business), but the
        # engine's overlap test is begin < 5 AND end > 5, which a long
        # version satisfies — the per-column intervals stay satisfiable
        assert "TQ015" not in codes(
            db, "SELECT id FROM item FOR SYSTEM_TIME FROM 5 TO 5"
        )


class TestTQ016TautologicalClause:
    def _load_and_analyze(self, db):
        db.execute(
            "INSERT INTO item (id, name, price, ab, ae) VALUES"
            " (1, 'a', 1, DATE '1995-01-01', DATE '1996-01-01')"
        )
        db.execute(
            "INSERT INTO item (id, name, price, ab, ae) VALUES"
            " (2, 'b', 2, DATE '1995-06-01', DATE '1997-01-01')"
        )
        db.execute("ANALYZE item")

    WIDE = (
        "SELECT id FROM item WHERE ab BETWEEN DATE '1900-01-01'"
        " AND DATE '2100-01-01'"
    )

    def test_positive_predicate_spanning_domain(self, db):
        self._load_and_analyze(db)
        d = only(db, self.WIDE, "TQ016")
        assert d.severity == "warning"
        assert "ab" in d.message

    def test_positive_clause_spanning_domain(self, db):
        self._load_and_analyze(db)
        assert "TQ016" in codes(
            db,
            "SELECT id FROM item FOR business_time BETWEEN"
            " DATE '1900-01-01' AND DATE '2100-01-01'",
        )

    def test_negative_without_statistics(self, db):
        # no ANALYZE snapshot: the recorded domain is unknown
        assert "TQ016" not in codes(db, self.WIDE)

    def test_negative_narrow_predicate(self, db):
        self._load_and_analyze(db)
        assert "TQ016" not in codes(
            db,
            "SELECT id FROM item WHERE ab BETWEEN DATE '1995-02-01'"
            " AND DATE '1995-03-01'",
        )

    def test_negative_as_of_keeps_snapshot_semantics(self, db):
        self._load_and_analyze(db)
        assert "TQ016" not in codes(
            db, "SELECT id FROM item FOR business_time AS OF DATE '2100-01-01'"
        )


class TestTQ017RewriteShapedTemporalOperator:
    AGG_REWRITE = (
        "SELECT b.t, count(*)"
        " FROM (SELECT sb AS t FROM item FOR SYSTEM_TIME ALL"
        "       UNION SELECT se AS t FROM item FOR SYSTEM_TIME ALL) b,"
        "      item FOR SYSTEM_TIME ALL o"
        " WHERE o.sb <= b.t AND o.se > b.t"
        " GROUP BY b.t"
    )
    JOIN_REWRITE = (
        "SELECT count(*)"
        " FROM item FOR SYSTEM_TIME ALL l, item FOR SYSTEM_TIME ALL r"
        " WHERE l.id = r.id AND l.sb < r.se AND r.sb < l.se"
    )

    def test_positive_boundary_self_join_aggregation(self, db):
        d = only(db, self.AGG_REWRITE, "TQ017")
        assert d.severity == "info"
        assert "GROUP BY TEMPORAL" in d.message

    def test_positive_inequality_pair_overlap_join(self, db):
        d = only(db, self.JOIN_REWRITE, "TQ017")
        assert "TEMPORAL JOIN" in d.message

    def test_negative_native_dialect_syntax(self, db):
        assert "TQ017" not in codes(
            db,
            "SELECT TEMPORAL(system_time) AS t, count(*)"
            " FROM item FOR SYSTEM_TIME ALL"
            " GROUP BY TEMPORAL(system_time)",
        )
        assert "TQ017" not in codes(
            db,
            "SELECT count(*)"
            " FROM item FOR SYSTEM_TIME ALL l"
            " TEMPORAL JOIN item FOR SYSTEM_TIME ALL r ON l.id = r.id",
        )

    def test_negative_silent_when_fusion_rewrites_it(self, db):
        # a profile with the temporal-fusion rule replaces the shape with
        # the native operator before the analyzer looks at the plan
        fusing = SimpleNamespace(
            rewrite_rules=(
                "constant-folding", "predicate-pushdown", "join-reorder",
                "temporal-fusion",
            ),
            lint_suppressions=(),
        )
        assert "TQ017" not in codes(db, self.AGG_REWRITE, profile=fusing)
        assert "TQ017" not in codes(db, self.JOIN_REWRITE, profile=fusing)

    def test_negative_begins_only_boundary_list(self, db):
        # the legacy begins-only DISTINCT shape is *not* equivalent to the
        # native sweep (it misses pure-deletion boundaries), so the
        # analyzer must not claim the native operator can replace it
        assert "TQ017" not in codes(
            db,
            "SELECT b.t, count(*)"
            " FROM (SELECT DISTINCT sb AS t FROM item FOR SYSTEM_TIME ALL) b,"
            "      item FOR SYSTEM_TIME ALL o"
            " WHERE o.sb <= b.t AND o.se > b.t"
            " GROUP BY b.t",
        )


class TestAnchoring:
    def test_line_and_column_on_multiline_sql(self, db):
        sql = "SELECT id\nFROM item FOR SYSTEM_TIME ALL"
        d = only(db, sql, "TQ001")
        assert d.line == 2
        assert d.column == 11  # the FOR keyword
        assert d.span is not None

    def test_plan_path_names_the_scan(self, db):
        d = only(db, "SELECT id FROM item FOR SYSTEM_TIME ALL", "TQ001")
        assert d.plan_path == "query/scan:item"

    def test_plan_path_enters_subqueries(self, db):
        d = only(
            db,
            "SELECT id FROM item WHERE id IN"
            " (SELECT id FROM item FOR SYSTEM_TIME ALL)",
            "TQ001",
        )
        assert d.plan_path.startswith("query/subquery[0]")

    def test_plan_path_enters_derived_tables(self, db):
        d = only(
            db,
            "SELECT x.id FROM"
            " (SELECT id FROM item FOR SYSTEM_TIME ALL) x",
            "TQ001",
        )
        assert d.plan_path.startswith("query/derived:x")

    def test_plan_path_enters_union_branches(self, db):
        d = only(
            db,
            "SELECT id FROM item UNION"
            " SELECT id FROM item FOR SYSTEM_TIME ALL",
            "TQ001",
        )
        assert "union[1]" in d.plan_path

    def test_errors_sort_before_info(self, db):
        diags = analyze_sql(
            db, "SELECT * FROM item FOR SYSTEM_TIME FROM 5 TO 1"
        )
        assert [d.code for d in diags][0] == "TQ004"
        assert [d.severity for d in diags] == sorted(
            (d.severity for d in diags),
            key=lambda s: -SEVERITIES.index(s),
        )

    def test_render_shape(self, db):
        d = only(db, "SELECT id FROM item FOR SYSTEM_TIME ALL", "TQ001")
        text = d.render()
        assert text.startswith("info[TQ001] ")
        assert "\n    hint: " in text


class TestSuppression:
    def test_suppressed_code_is_silent(self, db):
        profile = SimpleNamespace(lint_suppressions=("TQ001",))
        found = codes(
            db, "SELECT * FROM item FOR SYSTEM_TIME ALL", profile=profile
        )
        assert "TQ001" not in found
        assert "TQ010" in found  # other rules still fire


class TestSurfaces:
    def test_explain_lint_rows(self, db):
        result = db.execute(
            "EXPLAIN (LINT) SELECT id FROM item FOR SYSTEM_TIME ALL"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "TQ001" in text

    def test_database_lint(self, db):
        diags = db.lint("SELECT id FROM item FOR SYSTEM_TIME ALL")
        assert [d.code for d in diags] == ["TQ001"]

    def test_analyze_sql_accepts_explain_prefix(self, db):
        assert "TQ001" in codes(
            db, "EXPLAIN SELECT id FROM item FOR SYSTEM_TIME ALL"
        )


SWEEP_SYSTEMS = ("A", "B", "C", "D", "E")


@pytest.mark.parametrize("name", SWEEP_SYSTEMS)
def test_workload_sweep_no_false_positives(name):
    """The benchmark's own queries are known-good: every T/H/K/R/B statement
    must lint without warnings or errors on every archetype (deliberate
    history scans are info-level by design)."""
    from repro.core.queries import Workload
    from repro.core.queries.tpch import as_benchmark_queries
    from repro.core.schema import create_benchmark_tables
    from repro.systems import make_system

    system = make_system(name)
    create_benchmark_tables(system.db, temporal=True)
    targets = [(q.qid, q.sql) for q in Workload()]
    for mode in ("plain", "app", "sys"):
        targets.extend((q.qid, q.sql) for q in as_benchmark_queries(mode))
    assert len(targets) > 100
    offenders = []
    for qid, sql in targets:
        for d in system.lint(sql):
            if d.severity in ("warning", "error"):
                offenders.append(f"{name}/{qid}: {d.render()}")
    assert not offenders, "\n".join(offenders)
