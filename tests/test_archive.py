"""Generator archive round trips and archive-driven population."""

import pytest

from repro.core.archive import ArchiveReader, replay_archive, write_archive
from repro.core.generator import BitemporalDataGenerator, GeneratorConfig
from repro.core.loader import Loader
from repro.core.schema import create_benchmark_tables
from repro.systems import make_system


@pytest.fixture(scope="module")
def workload():
    return BitemporalDataGenerator(GeneratorConfig(h=0.0003, m=0.00005)).generate()


def test_round_trip(tmp_path, workload):
    path = tmp_path / "archive.jsonl"
    lines = write_archive(workload, path)
    assert lines > 1
    reader = ArchiveReader(path)
    assert reader.header["h"] == workload.config.h
    assert reader.header["scenario_count"] == len(workload.transactions)
    transactions = list(reader.transactions())
    assert transactions == workload.transactions
    initial = reader.initial_data()
    assert initial.counts() == workload.initial.counts()


def test_reject_non_archive(tmp_path):
    path = tmp_path / "not_archive.jsonl"
    path.write_text('{"kind": "other"}\n')
    with pytest.raises(ValueError):
        ArchiveReader(path)


def test_replay_matches_direct_load(tmp_path, workload):
    path = tmp_path / "archive.jsonl"
    write_archive(workload, path)

    direct = make_system("A")
    Loader(direct, workload).load()

    from_archive = make_system("A")
    create_benchmark_tables(from_archive.db, temporal=True)
    replay_archive(ArchiveReader(path), from_archive.db)

    for table in ("orders", "customer", "lineitem"):
        q = f"SELECT count(*) FROM {table} FOR SYSTEM_TIME ALL"
        assert direct.execute(q).scalar() == from_archive.execute(q).scalar()
    q = "SELECT sum(o_totalprice) FROM orders"
    assert abs(direct.execute(q).scalar() - from_archive.execute(q).scalar()) < 0.01


def test_batched_replay_fewer_ticks(tmp_path, workload):
    path = tmp_path / "archive.jsonl"
    write_archive(workload, path)
    system = make_system("A")
    create_benchmark_tables(system.db, temporal=True)
    replay_archive(ArchiveReader(path), system.db, batch_size=10)
    distinct = system.execute(
        "SELECT count(DISTINCT sys_begin) FROM orders FOR SYSTEM_TIME ALL"
    ).scalar()
    assert distinct <= len(workload.transactions) // 10 + 2
