"""Auto-ANALYZE: statistics refresh driven by a mutation-count threshold.

``Database.auto_analyze_threshold`` (default None = manual-only) arms a
trigger checked after every row-level DML entry point: once a table has
accumulated that many mutations since its last snapshot (or ever, when
never analyzed), the database re-runs ANALYZE on that table and bumps
the ``stats.auto_analyze_runs`` counter.
"""

import pytest

from repro.engine import Database
from repro.engine import stats as stats_mod


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (a integer NOT NULL, b integer,"
        " sb timestamp, se timestamp,"
        " PRIMARY KEY (a), PERIOD FOR system_time (sb, se))"
    )
    return database


def _insert(db, lo, hi):
    for i in range(lo, hi):
        db.execute("INSERT INTO t (a, b) VALUES (?, ?)", [i, i * 10])


class TestDisabledByDefault:
    def test_threshold_defaults_to_none(self, db):
        assert db.auto_analyze_threshold is None

    def test_no_snapshot_appears_without_opt_in(self, db):
        _insert(db, 0, 50)
        assert db.catalog.stats_of("t") is None
        assert db.metrics.counter("stats.auto_analyze_runs") == 0


class TestTrigger:
    def test_fires_once_mutations_cross_threshold(self, db):
        db.auto_analyze_threshold = 10
        _insert(db, 0, 9)
        assert db.catalog.stats_of("t") is None
        _insert(db, 9, 10)
        snap = db.catalog.stats_of("t")
        assert snap is not None
        assert snap.row_count == 10
        assert db.metrics.counter("stats.auto_analyze_runs") == 1

    def test_snapshot_is_fresh_for_the_planner(self, db):
        db.auto_analyze_threshold = 5
        _insert(db, 0, 5)
        # the auto snapshot was taken after the triggering mutation, so
        # stats_for must accept it (marker and catalog version match)
        assert db.stats_for("t") is not None

    def test_counts_mutations_since_last_snapshot(self, db):
        db.auto_analyze_threshold = 10
        _insert(db, 0, 10)
        assert db.metrics.counter("stats.auto_analyze_runs") == 1
        _insert(db, 10, 19)  # 9 mutations: below threshold
        assert db.metrics.counter("stats.auto_analyze_runs") == 1
        _insert(db, 19, 20)  # 10th since the auto snapshot
        assert db.metrics.counter("stats.auto_analyze_runs") == 2
        assert db.catalog.stats_of("t").row_count == 20

    def test_manual_analyze_resets_the_baseline(self, db):
        db.auto_analyze_threshold = 10
        _insert(db, 0, 8)
        db.analyze("t")
        _insert(db, 8, 12)  # only 4 since the manual snapshot
        assert db.metrics.counter("stats.auto_analyze_runs") == 0
        _insert(db, 12, 18)  # 10th since the manual snapshot
        assert db.metrics.counter("stats.auto_analyze_runs") == 1

    def test_updates_and_deletes_count_as_mutations(self, db):
        db.auto_analyze_threshold = 4
        _insert(db, 0, 3)
        assert db.metrics.counter("stats.auto_analyze_runs") == 0
        # a versioned UPDATE invalidates + inserts: crosses the threshold
        db.execute("UPDATE t SET b = 99 WHERE a = 1")
        assert db.metrics.counter("stats.auto_analyze_runs") == 1
        marker = stats_mod.mutation_marker(db.table("t"))
        assert marker == db.catalog.stats_of("t").mutation_marker

    def test_threshold_is_per_table(self, db):
        db.execute(
            "CREATE TABLE u (k integer NOT NULL, PRIMARY KEY (k))"
        )
        db.auto_analyze_threshold = 3
        _insert(db, 0, 3)
        assert db.catalog.stats_of("t") is not None
        assert db.catalog.stats_of("u") is None
        for k in range(3):
            db.execute("INSERT INTO u (k) VALUES (?)", [k])
        assert db.catalog.stats_of("u") is not None
        assert db.metrics.counter("stats.auto_analyze_runs") == 2
